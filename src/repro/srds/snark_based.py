"""SRDS from CRH + SNARKs in the bare-PKI + CRS model (Thm 2.8).

The recursive-counting construction: every party signs with an ordinary
signature; leaf committees count the distinct valid base signatures in
their index range and emit ``(count, min, max, chain-digest)`` together
with a succinct PCD proof that the count is honest; internal nodes verify
their children's proofs, check the children's index ranges are pairwise
disjoint (the CRH-backed anti-double-counting device of §2.2), add the
counts, and emit a new proof.  The final aggregate is constant-size and
verification is count >= majority.

Two relations are registered with the (simulated) SNARK system:

* ``leaf``: "I know ``count`` base signatures with distinct indices in
  ``[min, max]``, each valid under the verification key committed at its
  index in the vk Merkle root carried by the statement, chaining to the
  statement's digest."
* ``internal``: "I know child aggregates with verifying proofs, the same
  message and vk root, pairwise-disjoint index ranges, whose counts sum
  to ``count`` and whose digests chain to the statement's digest."

The proofs compose recursively (PCD); soundness is inherited from the
argument system, and the disjoint-range discipline makes the total count
an upper bound on the number of *distinct* base contributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashing import hash_chain, hash_domain
from repro.crypto.merkle import (
    MerkleProof,
    MerkleTree,
    root_from_proof,
    verify_inclusion,
)
from repro.crypto.snark import Proof, SnarkSystem
from repro.errors import (
    MALFORMED_INPUT_ERRORS,
    ConfigurationError,
    ProofError,
    SignatureError,
)
from repro.obs.spans import span
from repro.pki.registry import PKIMode
from repro.srds.base import (
    PublicParameters,
    SRDSScheme,
    SRDSSignature,
    ensure_same_message_space,
)
from repro.srds.base_sigs import BaseSignatureScheme, SchnorrBase
from repro.utils.serialization import (
    canonical_tuple,
    decode_bytes,
    decode_sequence,
    decode_uint,
    encode_bytes,
    encode_sequence,
    encode_uint,
)

_LEAF_RELATION = "srds/leaf-count"
_INTERNAL_RELATION = "srds/internal-sum"
_VK_LEAF_DOMAIN = "srds/vk-leaf"
_CHAIN_DOMAIN = "srds/contribution-chain"


@dataclass(frozen=True)
class SnarkBaseSignature(SRDSSignature):
    """A base signature: (virtual index, base-scheme signature bytes)."""

    index: int
    signature_bytes: bytes

    @property
    def min_index(self) -> int:
        return self.index

    @property
    def max_index(self) -> int:
        return self.index

    def _base_marker(self) -> bool:
        return True

    def encode(self) -> bytes:
        return encode_uint(self.index) + encode_bytes(self.signature_bytes)

    def contribution_digest(self) -> bytes:
        """The per-contribution digest chained into leaf aggregates."""
        return hash_domain(
            _CHAIN_DOMAIN, encode_uint(self.index), self.signature_bytes
        )


@dataclass(frozen=True)
class CertifiedBaseSignature:
    """A base signature enriched by Aggregate1 with its key material.

    The Merkle path lets the (polylog-sized) Aggregate2 circuit check the
    key against the vk-vector commitment without touching all n keys —
    this is exactly why Def. 2.2 splits aggregation in two.
    """

    base: SnarkBaseSignature
    verification_key: bytes
    inclusion_proof: MerkleProof

    def encode(self) -> bytes:
        return canonical_tuple(
            self.base.encode(),
            self.verification_key,
            _encode_merkle_proof(self.inclusion_proof),
        )


@dataclass(frozen=True)
class SnarkAggregateSignature(SRDSSignature):
    """A constant-size aggregate: statement fields plus one PCD proof."""

    count: int
    lo: int          # smallest contributing virtual index
    hi: int          # largest contributing virtual index
    digest: bytes    # CRH chain over contributions / child digests
    vk_root: bytes   # Merkle root of the verification-key vector
    message_tag: bytes
    proof: Proof

    @property
    def min_index(self) -> int:
        return self.lo

    @property
    def max_index(self) -> int:
        return self.hi

    def encode(self) -> bytes:
        return canonical_tuple(
            encode_uint(self.count),
            encode_uint(self.lo),
            encode_uint(self.hi),
            self.digest,
            self.vk_root,
            self.message_tag,
            self.proof.encode(),
        )

    def statement(self, message: bytes) -> bytes:
        """The PCD statement this aggregate's proof attests to."""
        return _statement(
            message, self.count, self.lo, self.hi, self.digest, self.vk_root
        )


def _statement(message: bytes, count: int, lo: int, hi: int,
               digest: bytes, vk_root: bytes) -> bytes:
    return canonical_tuple(
        message,
        encode_uint(count),
        encode_uint(lo),
        encode_uint(hi),
        digest,
        vk_root,
    )


def _encode_merkle_proof(proof: MerkleProof) -> bytes:
    parts = [encode_uint(proof.leaf_index), encode_uint(len(proof.siblings))]
    for digest, is_right in proof.siblings:
        parts.append(encode_bytes(digest))
        parts.append(encode_uint(1 if is_right else 0))
    return b"".join(parts)


def _decode_merkle_proof(data: bytes, offset: int = 0) -> Tuple[MerkleProof, int]:
    leaf_index, pos = decode_uint(data, offset)
    count, pos = decode_uint(data, pos)
    siblings = []
    for _ in range(count):
        digest, pos = decode_bytes(data, pos)
        flag, pos = decode_uint(data, pos)
        siblings.append((digest, bool(flag)))
    return MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings)), pos


def vk_merkle_tree(verification_keys: Dict[int, bytes],
                   num_parties: int) -> MerkleTree:
    """The commitment to the full vk vector, ordered by virtual index.

    Unregistered indices commit to an empty key, so the root is defined
    for any bulletin-board state.
    """
    leaves = [
        hash_domain(
            _VK_LEAF_DOMAIN,
            encode_uint(index),
            verification_keys.get(index, b""),
        )
        for index in range(num_parties)
    ]
    return MerkleTree(leaves)


def _cached_vk_tree(
    pp: PublicParameters, verification_keys: Dict[int, bytes]
) -> MerkleTree:
    """Per-run cache of the vk Merkle tree.

    Building the tree is Theta(n) hashing, and pi_ba calls Aggregate1 at
    every tree node; the bulletin board is fixed for the duration of a
    run, so the tree is cached keyed on the dict identity.  Passing a
    *different* key dict (e.g. after adversarial key replacement in the
    experiments) transparently rebuilds.
    """
    cache = pp.extra.setdefault("_vk_tree_cache", {})
    key = (id(verification_keys), len(verification_keys))
    tree = cache.get(key)
    if tree is None:
        tree = vk_merkle_tree(verification_keys, pp.num_parties)
        cache.clear()
        cache[key] = tree
    return tree


class SnarkSRDS(SRDSScheme):
    """The CRH + SNARK + bare-PKI SRDS construction (Thm 2.8)."""

    name = "srds-snark-pcd"
    pki_mode = PKIMode.BARE
    assumptions = "snarks*+crh"
    needs_crs = True

    def __init__(self, base_scheme: Optional[BaseSignatureScheme] = None) -> None:
        self.base_scheme = base_scheme if base_scheme is not None else SchnorrBase()

    # -- Def. 2.1 algorithms ---------------------------------------------------

    def setup(self, num_parties: int, rng) -> PublicParameters:
        """Sample the CRS and register the two PCD relations."""
        if num_parties < 2:
            raise ConfigurationError("need at least 2 parties")
        snark_system = SnarkSystem(crs_seed=rng.random_bytes(32))
        base_scheme = self.base_scheme

        def leaf_relation(statement: bytes, witness: bytes) -> bool:
            return _check_leaf_relation(statement, witness, base_scheme)

        def internal_relation(statement: bytes, witness: bytes) -> bool:
            return _check_internal_relation(statement, witness, snark_system)

        snark_system.register_relation(_LEAF_RELATION, leaf_relation)
        snark_system.register_relation(_INTERNAL_RELATION, internal_relation)
        return PublicParameters(
            num_parties=num_parties,
            security_bits=256,
            acceptance_threshold=num_parties // 2 + 1,
            extra={"snark": snark_system, "base_scheme": base_scheme},
        )

    def keygen(self, pp: PublicParameters, rng) -> Tuple[bytes, object]:
        """Local key generation (bare PKI: each party runs this itself)."""
        return self.base_scheme.keygen(rng)

    def sign(
        self,
        pp: PublicParameters,
        index: int,
        signing_key: object,
        message: bytes,
    ) -> Optional[SnarkBaseSignature]:
        """Every party can sign in this construction."""
        message = ensure_same_message_space(message)
        if signing_key is None:
            return None
        return SnarkBaseSignature(
            index=index,
            signature_bytes=self.base_scheme.sign(signing_key, message),
        )

    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[object]:
        """Deterministic filter.

        Base signatures are verified against the bulletin board, deduped
        by index, and enriched with Merkle key-inclusion proofs; child
        aggregates are checked (proof, vk root, message tag) and kept if
        their ranges can coexist disjointly (greedy by range, which is
        exactly the planar order of the tree).
        """
        with span("srds-aggregate1", scheme="snark"):
            return self._aggregate1_impl(
                pp, verification_keys, message, signatures
            )

    def _aggregate1_impl(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[object]:
        message = ensure_same_message_space(message)
        snark_system: SnarkSystem = pp.extra["snark"]
        tree = _cached_vk_tree(pp, verification_keys)
        message_tag = hash_domain("srds/message-tag", message)

        certified: Dict[int, CertifiedBaseSignature] = {}
        aggregates: List[SnarkAggregateSignature] = []
        for signature in signatures:
            if isinstance(signature, SnarkBaseSignature):
                if signature.index in certified:
                    continue
                if not 0 <= signature.index < pp.num_parties:
                    continue
                key = verification_keys.get(signature.index)
                if key is None:
                    continue
                if not self.base_scheme.verify(
                    key, message, signature.signature_bytes
                ):
                    continue
                certified[signature.index] = CertifiedBaseSignature(
                    base=signature,
                    verification_key=key,
                    inclusion_proof=tree.prove(signature.index),
                )
            elif isinstance(signature, SnarkAggregateSignature):
                if signature.vk_root != tree.root:
                    continue
                if signature.message_tag != message_tag:
                    continue
                # An aggregate may carry either relation's proof; accept
                # whichever verifies (the tag binds the relation).
                statement = signature.statement(message)
                if not (
                    snark_system.verify(_LEAF_RELATION, statement, signature.proof)
                    or snark_system.verify(
                        _INTERNAL_RELATION, statement, signature.proof
                    )
                ):
                    continue
                aggregates.append(signature)
            else:
                raise SignatureError(
                    f"foreign signature type {type(signature).__name__}"
                )

        # Greedy disjoint-range selection for aggregates, largest count
        # first (deterministic tie-break by range), so overlapping
        # adversarial duplicates are filtered here rather than failing
        # Aggregate2.
        aggregates.sort(key=lambda a: (-a.count, a.lo, a.hi))
        chosen: List[SnarkAggregateSignature] = []
        for aggregate in aggregates:
            if all(
                aggregate.hi < other.lo or other.hi < aggregate.lo
                for other in chosen
            ):
                chosen.append(aggregate)
        chosen.sort(key=lambda a: a.lo)

        # Base signatures whose index collides with a chosen aggregate's
        # range are dropped (they may already be counted inside it).
        survivors = [
            certified[index]
            for index in sorted(certified)
            if all(not (agg.lo <= index <= agg.hi) for agg in chosen)
        ]
        return survivors + chosen

    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[object],
    ) -> Optional[SnarkAggregateSignature]:
        """Succinct combiner: prove the leaf and/or internal relation.

        Never consults the verification-key vector — key validity rides
        on the Merkle paths inside the certified inputs.
        """
        with span("srds-aggregate2", scheme="snark"):
            return self._aggregate2_impl(pp, message, filtered)

    def _aggregate2_impl(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[object],
    ) -> Optional[SnarkAggregateSignature]:
        message = ensure_same_message_space(message)
        snark_system: SnarkSystem = pp.extra["snark"]
        message_tag = hash_domain("srds/message-tag", message)

        bases = [f for f in filtered if isinstance(f, CertifiedBaseSignature)]
        aggregates = [
            f for f in filtered if isinstance(f, SnarkAggregateSignature)
        ]
        if len(bases) + len(aggregates) == 0:
            return None

        parts: List[SnarkAggregateSignature] = list(aggregates)
        if bases:
            parts.append(
                _prove_leaf(snark_system, message, message_tag, bases)
            )
        if len(parts) == 1:
            return parts[0]
        return _prove_internal(snark_system, message, message_tag, parts)

    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        """Check the PCD proof, the vk-vector binding, and the threshold."""
        message = ensure_same_message_space(message)
        if not isinstance(signature, SnarkAggregateSignature):
            return False
        snark_system: SnarkSystem = pp.extra["snark"]
        tree = _cached_vk_tree(pp, verification_keys)
        if signature.vk_root != tree.root:
            return False
        if signature.message_tag != hash_domain("srds/message-tag", message):
            return False
        statement = signature.statement(message)
        proof_ok = snark_system.verify(
            _LEAF_RELATION, statement, signature.proof
        ) or snark_system.verify(_INTERNAL_RELATION, statement, signature.proof)
        return proof_ok and signature.count >= pp.acceptance_threshold


# -- relation implementations and provers -------------------------------------


def _prove_leaf(
    snark_system: SnarkSystem,
    message: bytes,
    message_tag: bytes,
    bases: Sequence[CertifiedBaseSignature],
) -> SnarkAggregateSignature:
    ordered = sorted(bases, key=lambda c: c.base.index)
    vk_root = _root_from_proof(ordered[0])
    digest = hash_chain(
        _CHAIN_DOMAIN, (c.base.contribution_digest() for c in ordered)
    )
    lo = ordered[0].base.index
    hi = ordered[-1].base.index
    statement = _statement(message, len(ordered), lo, hi, digest, vk_root)
    witness = encode_sequence([c.encode() for c in ordered])
    proof = snark_system.prove(_LEAF_RELATION, statement, witness)
    return SnarkAggregateSignature(
        count=len(ordered),
        lo=lo,
        hi=hi,
        digest=digest,
        vk_root=vk_root,
        message_tag=message_tag,
        proof=proof,
    )


def _prove_internal(
    snark_system: SnarkSystem,
    message: bytes,
    message_tag: bytes,
    parts: Sequence[SnarkAggregateSignature],
) -> SnarkAggregateSignature:
    ordered = sorted(parts, key=lambda a: a.lo)
    vk_root = ordered[0].vk_root
    digest = hash_chain(_CHAIN_DOMAIN, (part.digest for part in ordered))
    count = sum(part.count for part in ordered)
    lo = ordered[0].lo
    hi = ordered[-1].hi
    statement = _statement(message, count, lo, hi, digest, vk_root)
    witness = encode_sequence(
        [canonical_tuple(part.encode(), message) for part in ordered]
    )
    proof = snark_system.prove(_INTERNAL_RELATION, statement, witness)
    return SnarkAggregateSignature(
        count=count,
        lo=lo,
        hi=hi,
        digest=digest,
        vk_root=vk_root,
        message_tag=message_tag,
        proof=proof,
    )


def _root_from_proof(certified: CertifiedBaseSignature) -> bytes:
    """Recompute the vk root a certified base signature authenticates to."""
    leaf = hash_domain(
        _VK_LEAF_DOMAIN,
        encode_uint(certified.base.index),
        certified.verification_key,
    )
    return root_from_proof(leaf, certified.inclusion_proof)


def _decode_statement(statement: bytes):
    fields, _ = decode_sequence(statement, 0)
    if len(fields) != 6:
        raise ProofError("malformed SRDS statement")
    message = fields[0]
    count, _ = decode_uint(fields[1], 0)
    lo, _ = decode_uint(fields[2], 0)
    hi, _ = decode_uint(fields[3], 0)
    digest = fields[4]
    vk_root = fields[5]
    return message, count, lo, hi, digest, vk_root


def _check_leaf_relation(
    statement: bytes, witness: bytes, base_scheme: BaseSignatureScheme
) -> bool:
    try:
        message, count, lo, hi, digest, vk_root = _decode_statement(statement)
        encoded_certified, _ = decode_sequence(witness, 0)
    except MALFORMED_INPUT_ERRORS:
        return False
    if count != len(encoded_certified) or count == 0:
        return False
    seen_indices = set()
    contribution_digests = []
    indices = []
    for blob in encoded_certified:
        try:
            fields, _ = decode_sequence(blob, 0)
            base_blob, key, proof_blob = fields
            index, pos = decode_uint(base_blob, 0)
            sig_bytes, _ = decode_bytes(base_blob, pos)
            inclusion, _ = _decode_merkle_proof(proof_blob, 0)
        except MALFORMED_INPUT_ERRORS:
            return False
        if index in seen_indices:
            return False
        seen_indices.add(index)
        if not lo <= index <= hi:
            return False
        # Key binding: the vk must sit at `index` in the committed vector.
        leaf = hash_domain(_VK_LEAF_DOMAIN, encode_uint(index), key)
        if inclusion.leaf_index != index:
            return False
        if not verify_inclusion(vk_root, leaf, inclusion):
            return False
        if not base_scheme.verify(key, message, sig_bytes):
            return False
        indices.append(index)
        contribution_digests.append(
            hash_domain(_CHAIN_DOMAIN, encode_uint(index), sig_bytes)
        )
    if min(indices) != lo or max(indices) != hi:
        return False
    if indices != sorted(indices):
        return False
    return hash_chain(_CHAIN_DOMAIN, contribution_digests) == digest


def _check_internal_relation(
    statement: bytes, witness: bytes, snark_system: SnarkSystem
) -> bool:
    try:
        message, count, lo, hi, digest, vk_root = _decode_statement(statement)
        encoded_children, _ = decode_sequence(witness, 0)
    except MALFORMED_INPUT_ERRORS:
        return False
    if not encoded_children:
        return False
    children: List[SnarkAggregateSignature] = []
    for blob in encoded_children:
        try:
            fields, _ = decode_sequence(blob, 0)
            child_blob, child_message = fields
            child = decode_aggregate(child_blob)
        except MALFORMED_INPUT_ERRORS:
            return False
        if child_message != message:
            return False
        child_statement = child.statement(message)
        if not (
            snark_system.verify(_LEAF_RELATION, child_statement, child.proof)
            or snark_system.verify(
                _INTERNAL_RELATION, child_statement, child.proof
            )
        ):
            return False
        if child.vk_root != vk_root:
            return False
        children.append(child)
    # Pairwise-disjoint, sorted ranges — the anti-double-counting rule.
    for first, second in zip(children, children[1:]):
        if first.hi >= second.lo:
            return False
    if sum(child.count for child in children) != count:
        return False
    if children[0].lo != lo or children[-1].hi != hi:
        return False
    return hash_chain(_CHAIN_DOMAIN, (c.digest for c in children)) == digest


def decode_aggregate(data: bytes) -> SnarkAggregateSignature:
    """Decode a :class:`SnarkAggregateSignature` from its wire form."""
    fields, _ = decode_sequence(data, 0)
    if len(fields) != 7:
        raise SignatureError("malformed SNARK-SRDS aggregate encoding")
    count, _ = decode_uint(fields[0], 0)
    lo, _ = decode_uint(fields[1], 0)
    hi, _ = decode_uint(fields[2], 0)
    proof_tag = fields[6]
    # The relation name is not carried on the wire; reconstruct both
    # candidates and let verification pick (tags are relation-bound).
    return SnarkAggregateSignature(
        count=count,
        lo=lo,
        hi=hi,
        digest=fields[3],
        vk_root=fields[4],
        message_tag=fields[5],
        proof=Proof(relation_name=_LEAF_RELATION, tag=proof_tag),
    )
