"""Gateway flow ledger + trace propagation through the session manager.

Tier-1: everything runs in-process (no sockets, CI-sized n).
"""

from __future__ import annotations

import asyncio

from repro.obs.flow import FlowLedger
from repro.obs.spans import SpanLog
from repro.serve.sessions import (
    SessionManager,
    SessionSpec,
    one_shot_reference,
    run_decision,
)
from repro.serve.setup_cache import SetupCache

SMALL = dict(n=6, scheme="snark-hash", seed=11)


class TestRunDecisionFlow:
    def test_flow_does_not_change_the_decision(self):
        spec = SessionSpec(**SMALL)
        cache = SetupCache()
        lease = cache.lease(spec.scheme, spec.n, spec.seed)
        flow = FlowLedger()
        observed = run_decision(spec, lease, flow=flow)
        reference = one_shot_reference(spec)
        assert observed["value"] == reference["value"]
        assert observed["per_party_bits"] == reference["per_party_bits"]
        # The ledger saw exactly the decision's traffic, fully phased,
        # stamped with the gateway's wire kind.
        totals = flow.party_bits()
        for party, bits in reference["per_party_bits"].items():
            assert totals[int(party)]["total"] == bits
        assert flow.coverage() == 1.0
        assert set(flow.by_kind()) == {"session"}

    def test_span_log_collects_protocol_phases(self):
        spec = SessionSpec(**SMALL)
        cache = SetupCache()
        lease = cache.lease(spec.scheme, spec.n, spec.seed)
        span_log = SpanLog()
        run_decision(spec, lease, span_log=span_log)
        assert "srds-aggregate" in span_log.names
        assert all(r.closed for r in span_log.records)


class TestManagerIntegration:
    def test_trace_echo_and_flow_status(self):
        async def scenario():
            flow = FlowLedger()
            span_log = SpanLog()
            manager = SessionManager(
                max_sessions=1, flow=flow, span_log=span_log
            )
            submitted = manager.submit({**SMALL, "trace": "client-t1"})
            assert submitted["ok"]
            assert submitted["trace"] == "client-t1"
            done = await manager.await_result(submitted["session"])
            assert done["ok"] and done["state"] == "done"
            # Gateway-minted fallback is deterministic in counter + spec.
            minted = manager.submit(dict(SMALL))
            assert minted["trace"] == f"gateway-s2-pi-ba-n{SMALL['n']}"
            await manager.await_result(minted["session"])
            status = manager.status()
            assert status["flow"]["data_bits"] == flow.data_bits > 0
            assert status["flow"]["coverage"] == 1.0
            assert "srds-aggregate" in span_log.names
            manager.close()

        asyncio.run(scenario())

    def test_two_decisions_accumulate_in_one_ledger(self):
        async def scenario():
            flow = FlowLedger()
            manager = SessionManager(max_sessions=1, flow=flow)
            first = manager.submit(dict(SMALL))
            await manager.await_result(first["session"])
            once = flow.data_bits
            second = manager.submit(dict(SMALL))
            await manager.await_result(second["session"])
            assert flow.data_bits == 2 * once
            manager.close()

        asyncio.run(scenario())
