"""Canonical byte encodings shared across the library.

Every object that crosses the simulated wire is encoded with the helpers in
this module so that (a) communication accounting measures a well-defined
number of bits, and (b) hashing of structured data (transcripts, Merkle
leaves, signed messages) is canonical and injective.

The format is deliberately simple: length-prefixed byte strings combined
with unsigned varints.  It is *not* meant to interoperate with any external
system; it is the repo's single source of truth for "how big is this
message".
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import SerializationError


def encode_uint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128-style varint."""
    if value < 0:
        raise SerializationError(f"cannot encode negative integer {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63 + 7 * 8:
            raise SerializationError("varint too long")


def encode_bytes(blob: bytes) -> bytes:
    """Length-prefix a byte string."""
    return encode_uint(len(blob)) + blob


def decode_bytes(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a length-prefixed byte string; returns ``(blob, next_offset)``."""
    length, pos = decode_uint(data, offset)
    end = pos + length
    if end > len(data):
        raise SerializationError("truncated byte string")
    return data[pos:end], end


def encode_sequence(items: Sequence[bytes]) -> bytes:
    """Encode a sequence of byte strings (count-prefixed, each length-prefixed)."""
    parts = [encode_uint(len(items))]
    parts.extend(encode_bytes(item) for item in items)
    return b"".join(parts)


def decode_sequence(data: bytes, offset: int = 0) -> Tuple[List[bytes], int]:
    """Decode a sequence produced by :func:`encode_sequence`."""
    count, pos = decode_uint(data, offset)
    items: List[bytes] = []
    for _ in range(count):
        item, pos = decode_bytes(data, pos)
        items.append(item)
    return items, pos


def encode_str(text: str) -> bytes:
    """Encode a unicode string (UTF-8, length-prefixed)."""
    return encode_bytes(text.encode("utf-8"))


def decode_str(data: bytes, offset: int = 0) -> Tuple[str, int]:
    """Decode a string produced by :func:`encode_str`."""
    blob, pos = decode_bytes(data, offset)
    try:
        return blob.decode("utf-8"), pos
    except UnicodeDecodeError as exc:
        raise SerializationError("invalid UTF-8 in encoded string") from exc


def int_to_fixed_bytes(value: int, width: int) -> bytes:
    """Big-endian fixed-width encoding of a non-negative integer."""
    if value < 0:
        raise SerializationError(f"cannot encode negative integer {value}")
    try:
        return value.to_bytes(width, "big")
    except OverflowError as exc:
        raise SerializationError(
            f"integer {value} does not fit in {width} bytes"
        ) from exc


def fixed_bytes_to_int(data: bytes) -> int:
    """Inverse of :func:`int_to_fixed_bytes`."""
    return int.from_bytes(data, "big")


def canonical_tuple(*fields: bytes) -> bytes:
    """Injective encoding of a tuple of byte strings.

    Used wherever structured data is hashed or signed: the length prefixes
    make the encoding prefix-free per field, so distinct tuples never
    collide as byte strings.
    """
    return encode_sequence(list(fields))


def bit_length(blob: bytes) -> int:
    """Size of an encoded object in bits (what the network meter charges)."""
    return 8 * len(blob)


def concat_encoded(chunks: Iterable[bytes]) -> bytes:
    """Join already-encoded chunks (no extra framing)."""
    return b"".join(chunks)
