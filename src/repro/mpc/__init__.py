"""Corollary 1.2(2): scalable MPC over the pi_ba communication graph."""

from repro.mpc.fhe import Ciphertext, DecryptionShare, ThresholdFHE
from repro.mpc.scalable_mpc import MPCResult, run_scalable_mpc

__all__ = [
    "Ciphertext",
    "DecryptionShare",
    "MPCResult",
    "ThresholdFHE",
    "run_scalable_mpc",
]
