"""Dolev–Strong authenticated broadcast (t+1 rounds, any t < n).

The classic signature-chain protocol, included as (a) an alternative
realization of the broadcast channel that committee sub-protocols assume
(§3.1 realizes it via deterministic BA; Dolev–Strong trades rounds for
signatures and tolerates *any* number of corruptions), and (b) the
canonical example of a protocol whose per-party communication is
Theta(n) *per instance* — the regime the paper escapes.

Protocol (sender s, value v, rounds 0..t):

* round 0: the sender signs v and sends ``(v, sig_s)`` to everyone;
* round r: a party that newly *extracted* a value carried by a chain of
  r+1 distinct valid signatures (starting with the sender's) appends its
  own signature and forwards the chain to everyone;
* decision: a party that extracted exactly one value outputs it; zero or
  two or more extracted values output the default (sender caught
  equivocating).

Signatures are Schnorr over secp256k1 (real crypto); chains carry the
full signer path, which is what makes the instance cost Theta(n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import schnorr
from repro.errors import MALFORMED_INPUT_ERRORS, ConfigurationError
from repro.net.party import Envelope, Party
from repro.utils.randomness import Randomness
from repro.utils.serialization import (
    canonical_tuple,
    decode_sequence,
    decode_uint,
    encode_bytes,
    encode_uint,
)

DEFAULT_VALUE = 0


def _chain_message(value: int, signers: Sequence[int]) -> bytes:
    """What the next signer signs: the value and the path so far."""
    return canonical_tuple(
        encode_uint(value), *[encode_uint(s) for s in signers]
    )


@dataclass(frozen=True)
class SignatureChain:
    """A value plus an ordered path of signatures over it."""

    value: int
    signers: Tuple[int, ...]
    signatures: Tuple[bytes, ...]

    def encode(self) -> bytes:
        parts = [encode_uint(self.value), encode_uint(len(self.signers))]
        for signer, signature in zip(self.signers, self.signatures):
            parts.append(encode_uint(signer))
            parts.append(encode_bytes(signature))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "SignatureChain":
        value, pos = decode_uint(data, 0)
        count, pos = decode_uint(data, pos)
        signers: List[int] = []
        signatures: List[bytes] = []
        for _ in range(count):
            signer, pos = decode_uint(data, pos)
            signers.append(signer)
            from repro.utils.serialization import decode_bytes

            signature, pos = decode_bytes(data, pos)
            signatures.append(signature)
        return cls(
            value=value, signers=tuple(signers),
            signatures=tuple(signatures),
        )

    def is_valid(self, sender: int, round_index: int,
                 public_keys: Dict[int, bytes]) -> bool:
        """Check the Dolev–Strong chain conditions at a given round."""
        if len(self.signers) != round_index + 1:
            return False
        if not self.signers or self.signers[0] != sender:
            return False
        if len(set(self.signers)) != len(self.signers):
            return False
        from repro.srds.base_sigs import SchnorrBase

        verifier = SchnorrBase()
        for position, (signer, signature) in enumerate(
            zip(self.signers, self.signatures)
        ):
            key = public_keys.get(signer)
            if key is None:
                return False
            message = _chain_message(self.value, self.signers[:position])
            if not verifier.verify(key, message, signature):
                return False
        return True


class DolevStrongParty(Party):
    """One participant (the sender included) of a Dolev–Strong run."""

    def __init__(
        self,
        party_id: int,
        members: Sequence[int],
        max_faults: int,
        sender: int,
        keypair: schnorr.SchnorrKeyPair,
        public_keys: Dict[int, bytes],
        sender_value: Optional[int] = None,
    ) -> None:
        super().__init__(party_id)
        self.members = list(members)
        self.t = max_faults
        self.sender = sender
        self.keypair = keypair
        self.public_keys = public_keys
        self.sender_value = sender_value
        self.extracted: Set[int] = set()
        self._pending_forward: List[SignatureChain] = []

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        outgoing: List[Envelope] = []
        if round_index == 0:
            if self.party_id == self.sender:
                value = self.sender_value if self.sender_value is not None else 0
                self.extracted.add(value)
                chain = self._extend(
                    SignatureChain(value=value, signers=(), signatures=()),
                )
                for peer in self.members:
                    outgoing.append(self.send(peer, chain.encode()))
            return outgoing

        # Rounds 1..t+1: process chains from round r-1, forward new
        # extractions (a chain arriving in round r carries r signatures).
        for envelope in inbox:
            try:
                chain = SignatureChain.decode(envelope.payload)
            except MALFORMED_INPUT_ERRORS:
                continue
            if not chain.is_valid(self.sender, round_index - 1,
                                  self.public_keys):
                continue
            if chain.value in self.extracted:
                continue
            if self.party_id in chain.signers:
                continue
            self.extracted.add(chain.value)
            if round_index <= self.t:
                extended = self._extend(chain)
                for peer in self.members:
                    outgoing.append(self.send(peer, extended.encode()))

        if round_index >= self.t + 1:
            if len(self.extracted) == 1:
                return outgoing + self.halt(next(iter(self.extracted)))
            return outgoing + self.halt(DEFAULT_VALUE)
        return outgoing

    def _extend(self, chain: SignatureChain) -> SignatureChain:
        message = _chain_message(chain.value, chain.signers)
        signature = schnorr.sign(self.keypair, message).encode()
        return SignatureChain(
            value=chain.value,
            signers=chain.signers + (self.party_id,),
            signatures=chain.signatures + (signature,),
        )


class EquivocatingSender(DolevStrongParty):
    """A corrupt sender that signs different values for different peers."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index == 0 and self.party_id == self.sender:
            outgoing = []
            for position, peer in enumerate(self.members):
                value = position % 2
                chain = self._extend(
                    SignatureChain(value=value, signers=(), signatures=())
                )
                outgoing.append(self.send(peer, chain.encode()))
            return outgoing
        return super().step(round_index, inbox)


def run_dolev_strong(
    members: Sequence[int],
    sender: int,
    value: int,
    rng: Randomness,
    max_faults: Optional[int] = None,
    equivocating_sender: bool = False,
    byzantine: Sequence[int] = (),
):
    """Convenience driver; returns ``(outputs, metrics)``.

    ``byzantine`` parties simply stay silent (worst case for liveness);
    an equivocating *sender* is modeled by ``equivocating_sender``.
    """
    members = sorted(members)
    if sender not in members:
        raise ConfigurationError("sender must be a member")
    t = max_faults if max_faults is not None else (len(members) - 1) // 3
    byzantine_set = set(byzantine)

    keypairs = {
        member: schnorr.keygen(rng.fork(f"ds-key-{member}"))
        for member in members
    }
    public_keys = {
        member: keypair.public_bytes
        for member, keypair in keypairs.items()
    }

    from repro.net.metrics import CommunicationMetrics
    from repro.net.simulator import SynchronousNetwork
    from repro.net.party import SilentParty

    parties: List[Party] = []
    for member in members:
        if member in byzantine_set and member != sender:
            parties.append(SilentParty(member))
            continue
        cls = (
            EquivocatingSender
            if (equivocating_sender and member == sender)
            else DolevStrongParty
        )
        parties.append(
            cls(
                member, members, t, sender, keypairs[member], public_keys,
                sender_value=value if member == sender else None,
            )
        )
    metrics = CommunicationMetrics()
    network = SynchronousNetwork(parties, metrics=metrics)
    honest = [m for m in members if m not in byzantine_set]
    if equivocating_sender:
        honest = [m for m in honest if m != sender]
    network.run_until(honest, max_rounds=t + 4)
    outputs = {member: network.parties[member].output for member in honest}
    return outputs, metrics
