"""Tests for the registered-PKI SRDS (the §1.2 natural approach)."""

import pytest

from repro.crypto.snark import forge_random_proof
from repro.pki.registry import PKIMode, PKIRegistry
from repro.srds.registered import (
    RegisteredAggregateSignature,
    RegisteredBaseSignature,
    RegisteredSRDS,
    decode_aggregate,
    proof_of_possession,
)
from repro.utils.randomness import Randomness

N = 90


@pytest.fixture(scope="module")
def deployment():
    rng = Randomness(2024)
    scheme = RegisteredSRDS()
    pp = scheme.setup(N, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    return scheme, pp, vks, sks


def _sign_range(deployment, message, indices):
    scheme, pp, _, sks = deployment
    return [scheme.sign(pp, i, sks[i], message) for i in indices]


class TestRegisteredPKIIntegration:
    def test_pop_accepted_by_registry(self, deployment):
        scheme, pp, vks, sks = deployment
        registry = PKIRegistry(
            PKIMode.REGISTERED, knowledge_check=scheme.pop_check
        )
        pop = proof_of_possession(sks[0], vks[0])
        registry.register(0, vks[0], proof_of_possession=pop)
        assert registry.key_of(0) == vks[0]

    def test_bad_pop_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        registry = PKIRegistry(
            PKIMode.REGISTERED, knowledge_check=scheme.pop_check
        )
        from repro.errors import PKIError

        with pytest.raises(PKIError):
            registry.register(1, vks[1], proof_of_possession=b"nope")

    def test_unknown_key_fails_pop(self, deployment):
        scheme, _, _, _ = deployment
        assert not scheme.pop_check(b"foreign-key", b"whatever")


class TestAggregation:
    def test_full_flow(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"registered-flow"
        signatures = _sign_range(deployment, message, range(N))
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert aggregate.count == N
        assert scheme.verify(pp, vks, message, aggregate)

    def test_succinct(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"size"
        small = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(3))
        )
        large = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        assert small.size_bytes() == large.size_bytes()

    def test_minority_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"minority"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N // 3))
        )
        assert not scheme.verify(pp, vks, message, aggregate)

    def test_recursive_combination(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"recursive"
        left = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 40))
        )
        right = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(40, 80))
        )
        combined = scheme.aggregate(pp, vks, message, [left, right])
        assert combined.count == 80
        assert scheme.verify(pp, vks, message, combined)

    def test_replay_not_double_counted(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"replay"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 29))
        )
        doubled = scheme.aggregate(pp, vks, message, [aggregate, aggregate])
        assert doubled.count == 29

    def test_duplicate_bases_dropped(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"dupe"
        signatures = _sign_range(deployment, message, range(10))
        aggregate = scheme.aggregate(
            pp, vks, message, signatures + signatures
        )
        assert aggregate.count == 10

    def test_wrong_message_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        aggregate = scheme.aggregate(
            pp, vks, b"m1", _sign_range(deployment, b"m1", range(N))
        )
        assert not scheme.verify(pp, vks, b"m2", aggregate)


class TestSoundness:
    def test_inflated_count_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"inflate"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(10))
        )
        inflated = RegisteredAggregateSignature(
            combined_tag=aggregate.combined_tag,
            count=N,
            lo=aggregate.lo,
            hi=aggregate.hi,
            message_digest=aggregate.message_digest,
            board_digest=aggregate.board_digest,
            proof=aggregate.proof,
        )
        assert not scheme.verify(pp, vks, message, inflated)

    def test_random_proof_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"forged"
        rng = Randomness(9)
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(10))
        )
        forged = RegisteredAggregateSignature(
            combined_tag=aggregate.combined_tag,
            count=N,
            lo=0,
            hi=N - 1,
            message_digest=aggregate.message_digest,
            board_digest=aggregate.board_digest,
            proof=forge_random_proof("registered-srds/internal", rng),
        )
        assert not scheme.verify(pp, vks, message, forged)

    def test_cross_index_tag_rejected(self, deployment):
        """A corrupt party's tag cannot pose as another index's: the
        board binding inside the leaf relation blocks it."""
        scheme, pp, vks, sks = deployment
        message = b"impersonate"
        own = scheme.sign(pp, 5, sks[5], message)
        moved = RegisteredBaseSignature(index=6, tag=own.tag)
        filtered = scheme.aggregate1(pp, vks, message, [moved])
        assert filtered == []

    def test_wrong_board_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"board-swap"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        mutated = dict(vks)
        mutated[0] = b"different-key"
        assert not scheme.verify(pp, mutated, message, aggregate)

    def test_decode_roundtrip(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"roundtrip"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        decoded = decode_aggregate(aggregate.encode())
        assert scheme.verify(pp, vks, message, decoded)


class TestInBalancedBA:
    def test_pi_ba_over_registered_srds(self):
        from repro.net.adversary import random_corruption
        from repro.params import ProtocolParameters
        from repro.protocols.balanced_ba import run_balanced_ba

        params = ProtocolParameters()
        rng = Randomness(31)
        n = 48
        plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
        result = run_balanced_ba(
            {i: 1 for i in range(n)}, plan, RegisteredSRDS(), params,
            rng.fork("r"),
        )
        assert result.agreement and result.validity
        assert result.certificate_bytes < 512  # succinct, unlike multisig
