"""The marked async-model suite: n=64 scale runs and the BENCH gate.

These are the acceptance-criteria runs — ABA must decide for
n ∈ {16, 64} under at least three latency models *and* the
adversarial-order scheduler, with the observed round count inside
:data:`~repro.asynchrony.bench.MAX_EXPECTED_ROUNDS` (2x the MMR14
expected-round bound).  Excluded from tier-1 by the ``async_model``
marker (n=64 cells cost seconds each); CI runs them in the dedicated
asynchrony job via ``pytest -m async_model``.
"""

from __future__ import annotations

import json

import pytest

from repro.asynchrony.bench import MAX_EXPECTED_ROUNDS, run_aba_bench
from repro.asynchrony.driver import run_aba

pytestmark = pytest.mark.async_model

MODELS = ("uniform", "lognormal", "partition-heal")


@pytest.mark.parametrize("n", [16, 64])
@pytest.mark.parametrize("latency", MODELS)
def test_decides_under_latency_models(n, latency):
    result = run_aba(n, seed=11, latency=latency)
    assert set(result.outputs) == set(range(n))
    assert result.agreed_value in (0, 1)
    assert result.rounds <= MAX_EXPECTED_ROUNDS


@pytest.mark.parametrize("n", [16, 64])
def test_decides_under_adversarial_order(n):
    result = run_aba(n, seed=11, policy="adversarial")
    assert set(result.outputs) == set(range(n))
    assert result.agreed_value in (0, 1)
    assert result.rounds <= MAX_EXPECTED_ROUNDS


@pytest.mark.parametrize("n", [16, 64])
def test_byzantine_max_tolerance_at_scale(n):
    f = (n - 1) // 3
    result = run_aba(
        n, seed=11, corrupted=set(range(f)), byzantine="silent"
    )
    honest = set(range(n)) - set(range(f))
    assert set(result.outputs) == honest
    assert result.agreed_value in (0, 1)


def test_bench_payload_compares_aba_to_pi_ba(tmp_path):
    payload = run_aba_bench(
        party_counts=(16,), seed=7, results_dir=tmp_path
    )
    written = json.loads((tmp_path / "BENCH_aba.json").read_text())
    assert written["extra"] == payload["extra"]
    rows = payload["extra"]["comparison"]
    assert [row["n"] for row in rows] == [16]
    for row in rows:
        assert row["aba_max_bits_per_party"] > 0
        assert row["pi_ba_max_bits_per_party"] > 0
        assert row["ratio_aba_over_pi_ba"] == pytest.approx(
            row["aba_max_bits_per_party"]
            / max(1, row["pi_ba_max_bits_per_party"])
        )
    cells = payload["extra"]["aba_cells"]
    modes = {cell["mode"] for cell in cells}
    assert "adversarial" in modes and len(modes) >= 4
    for cell in cells:
        assert cell["rounds"] <= MAX_EXPECTED_ROUNDS
