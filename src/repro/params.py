"""Centralized protocol parameters.

The paper's asymptotics use committee sizes of ``log^3 n`` and leaf sizes of
``log^5 n`` — constants chosen for the proofs, not for execution (at
``n = 1024`` a single leaf would already hold 100,000 parties).  Following
the standard practice for implementations of KSSV-style protocols, this
module scales those polylogarithmic quantities down to ``c * ceil(log2 n)``
with small configurable constants, while keeping every *structural*
property of Definitions 2.3 and 3.4 intact and runtime-checked:

* the tree has height ``O(log n / log log n)`` and internal arity
  ``Theta(log n)``;
* each internal node carries a committee; the root ("supreme") committee
  must end up with a 2/3 honest majority;
* each party is assigned to ``z`` leaves (virtual identities, Def. 3.4);
* leaf committees have ``z_star`` parties each.

All protocol and benchmark entry points accept a
:class:`ProtocolParameters` so experiments can sweep them (ablations E7/E8
in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def ceil_log2(n: int) -> int:
    """``ceil(log2 n)``, with ``ceil_log2(1) == 1`` so sizes never vanish."""
    if n < 1:
        raise ConfigurationError(f"ceil_log2 needs a positive argument, got {n}")
    return max(1, math.ceil(math.log2(n)))


@dataclass(frozen=True)
class ProtocolParameters:
    """Scaled parameters for the almost-everywhere tree and committees.

    Attributes:
        security_bits: the security parameter kappa, in bits.  Signature and
            hash substrates size their outputs from this.
        committee_factor: internal-node committee size is
            ``committee_factor * ceil(log2 n)`` (the paper's ``log^3 n``).
        leaf_factor: leaf committee size ``z_star`` is
            ``leaf_factor * ceil(log2 n)`` (the paper's ``log^5 n``).
        virtual_factor: each party takes ``z = virtual_factor *
            ceil(log2 n) / something`` virtual identities; here simply
            ``virtual_factor`` copies scaled by tree shape (the paper's
            ``O(log^4 n)``).  The concrete ``z`` is derived per-tree so the
            leaf supply ``n * z`` exactly covers ``num_leaves * z_star``.
        tree_arity_factor: internal fan-in is
            ``max(2, tree_arity_factor * ceil(log2 n))`` (the paper's
            ``log n`` children per node).
        corruption_ratio: the adversary budget beta; must be < 1/3.
        fanout_factor: size of the PRF-selected recipient set in the final
            one-round boost (step 7 of Fig. 3), times ``ceil(log2 n)``.
    """

    security_bits: int = 128
    committee_factor: int = 4
    leaf_factor: int = 5
    virtual_factor: int = 2
    tree_arity_factor: int = 1
    # Default experiment corruption is 1/6: the *tolerance* is any
    # beta < 1/3 (scaling the committee factors restores the whp margin),
    # but at laptop-scale n the paper's "with high probability" events
    # need the beta-vs-1/3 gap to be real.  Benchmarks sweep this.
    corruption_ratio: float = 1 / 6
    fanout_factor: int = 3

    def __post_init__(self) -> None:
        if self.security_bits < 32:
            raise ConfigurationError("security_bits must be at least 32")
        if not 0 <= self.corruption_ratio < 1 / 3:
            raise ConfigurationError(
                f"corruption_ratio must lie in [0, 1/3), got {self.corruption_ratio}"
            )
        for name in ("committee_factor", "leaf_factor", "virtual_factor",
                     "tree_arity_factor", "fanout_factor"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be positive")

    # -- derived quantities -------------------------------------------------

    def committee_size(self, n: int) -> int:
        """Internal-node committee size (paper: log^3 n)."""
        return self.committee_factor * ceil_log2(n)

    def leaf_committee_size(self, n: int) -> int:
        """Leaf committee size z* (paper: log^5 n)."""
        return self.leaf_factor * ceil_log2(n)

    def tree_arity(self, n: int) -> int:
        """Children per internal node (paper: log n)."""
        return max(2, self.tree_arity_factor * ceil_log2(n))

    def fanout(self, n: int) -> int:
        """Recipient-set size in the one-round boost (step 7, Fig. 3)."""
        return min(n, self.fanout_factor * ceil_log2(n))

    def max_corruptions(self, n: int) -> int:
        """The adversary's budget t = floor(beta * n)."""
        return int(self.corruption_ratio * n)

    def hash_bytes(self) -> int:
        """Digest width used by hashing substrates (kappa bits, min 32B)."""
        return max(32, self.security_bits // 8)


DEFAULT_PARAMETERS = ProtocolParameters()


def small_test_parameters() -> ProtocolParameters:
    """Parameters shrunk for fast unit tests (still structurally valid)."""
    return ProtocolParameters(
        security_bits=64,
        committee_factor=2,
        leaf_factor=2,
        virtual_factor=1,
        tree_arity_factor=1,
        corruption_ratio=0.2,
        fanout_factor=2,
    )
