"""``python -m repro serve`` — the gateway operator interface.

Subcommands::

    serve run [--host H] [--port P] [--max-sessions K]
              [--retry-after S] [--drain-deadline S] [--cache-entries N]
              [--metrics-out FILE] [--port-file FILE]
              [--flow-cells N] [--flow-out FILE]
        Run the agreement-as-a-service gateway until SIGTERM/SIGINT (or
        a client ``shutdown`` op), then drain gracefully and exit 0.
        ``--port 0`` (default) binds an OS-assigned port; ``--port-file``
        publishes whatever port was bound for scripts to discover.
        ``--flow-out`` enables the wire-level flow ledger and writes its
        ``repro-flow/1`` report on shutdown; ``--metrics-out`` flushes
        atomically and carries the flow summary as a comment line.

    serve client <op> --port P [--host H] [op-specific flags]
        One-shot NDJSON client.  Ops: ping, submit (--n --scheme --seed
        --repeat --inputs, add --wait to also await the result), await
        (--session, --timeout), status [--session], cancel (--session),
        metrics, shutdown.  Prints the gateway's JSON response; exit 0
        iff the response has ``ok: true``.

    serve bench [--n N] [--scheme {snark,snark-hash,owf}] [--seed S]
                [--repeat R] [--sessions K] [--results-dir DIR]
        The ``BENCH_gateway.json`` record: boot an in-process gateway,
        drive K concurrent same-key sessions of R pipelined decisions
        each over real loopback TCP, and record pipelined repeated-BA
        throughput.  Exit 0 iff (a) every session's value and per-party
        bit tallies match a one-shot reference run of the same spec and
        (b) the steady-state per-decision wall time is strictly below
        the cold first decision (the one that paid SRDS setup+keygen) —
        the operational shape of Corollary 1.2's amortization.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import GatewayError, ReproError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="agreement-as-a-service gateway",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run = sub.add_parser("run", help="run the gateway server")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=0)
    run.add_argument("--max-sessions", type=int, default=2)
    run.add_argument("--retry-after", type=float, default=0.5)
    run.add_argument("--drain-deadline", type=float, default=30.0)
    run.add_argument("--cache-entries", type=int, default=8)
    run.add_argument("--metrics-out", type=Path, default=None)
    run.add_argument("--port-file", type=Path, default=None)
    run.add_argument(
        "--flow-cells", type=int, default=0,
        help="enable the wire-level flow ledger with this cell capacity",
    )
    run.add_argument(
        "--flow-out", type=Path, default=None,
        help="write the final repro-flow/1 report here on shutdown "
             "(implies the flow ledger)",
    )

    client = sub.add_parser("client", help="one-shot NDJSON client")
    client.add_argument(
        "op",
        choices=("ping", "submit", "await", "status", "cancel",
                 "metrics", "shutdown"),
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument("--session", default=None)
    client.add_argument("--timeout", type=float, default=None)
    client.add_argument("--n", type=int, default=16)
    client.add_argument(
        "--scheme", choices=("snark", "snark-hash", "owf"), default="owf"
    )
    client.add_argument("--seed", type=int, default=2021)
    client.add_argument("--repeat", type=int, default=1)
    client.add_argument(
        "--inputs", choices=("split", "zero", "one"), default="split"
    )
    client.add_argument(
        "--wait", action="store_true",
        help="after submit, block until the session finishes",
    )

    bench = sub.add_parser("bench", help="record BENCH_gateway.json")
    bench.add_argument("--n", type=int, default=16)
    bench.add_argument(
        "--scheme", choices=("snark", "snark-hash", "owf"), default="owf"
    )
    bench.add_argument("--seed", type=int, default=2021)
    bench.add_argument("--repeat", type=int, default=4)
    bench.add_argument("--sessions", type=int, default=2)
    bench.add_argument(
        "--results-dir", type=Path, default=Path("benchmarks/results")
    )
    return parser


# -- serve run ---------------------------------------------------------------


def _cmd_run(ns: argparse.Namespace) -> int:
    from repro.serve.server import GatewayConfig, run_gateway

    config = GatewayConfig(
        host=ns.host,
        port=ns.port,
        max_sessions=ns.max_sessions,
        retry_after=ns.retry_after,
        drain_deadline=ns.drain_deadline,
        cache_entries=ns.cache_entries,
        metrics_out=ns.metrics_out,
        port_file=ns.port_file,
        flow_cells=ns.flow_cells,
        flow_out=ns.flow_out,
    )
    return asyncio.run(run_gateway(config))


# -- serve client ------------------------------------------------------------


def _cmd_client(ns: argparse.Namespace) -> int:
    from repro.serve.client import GatewayClient

    with GatewayClient(ns.host, ns.port) as client:
        if ns.op == "ping":
            response = client.ping()
        elif ns.op == "submit":
            response = client.submit_with_retry(
                n=ns.n, scheme=ns.scheme, seed=ns.seed,
                repeat=ns.repeat, inputs=ns.inputs,
            )
            if ns.wait and response.get("ok"):
                response = client.await_result(
                    str(response["session"]), ns.timeout
                )
        elif ns.op == "await":
            if ns.session is None:
                raise GatewayError("await needs --session")
            response = client.await_result(ns.session, ns.timeout)
        elif ns.op == "status":
            response = client.status(ns.session)
        elif ns.op == "cancel":
            if ns.session is None:
                raise GatewayError("cancel needs --session")
            response = client.cancel(ns.session)
        elif ns.op == "metrics":
            print(client.metrics_text(), end="")
            return 0
        else:
            response = client.shutdown()
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


# -- serve bench -------------------------------------------------------------


def _session_fields(ns: argparse.Namespace) -> Dict[str, Any]:
    return {
        "n": ns.n, "scheme": ns.scheme, "seed": ns.seed,
        "repeat": ns.repeat, "inputs": "split",
    }


async def _drive_bench(
    ns: argparse.Namespace,
) -> Dict[str, Any]:
    """Boot an in-process gateway and run K concurrent TCP sessions."""
    from repro.serve.client import run_session
    from repro.serve.server import GatewayConfig, GatewayServer

    config = GatewayConfig(
        port=0, max_sessions=ns.sessions, drain_deadline=60.0
    )
    server = GatewayServer(config)
    port = await server.start()
    fields = _session_fields(ns)
    clients = [
        asyncio.to_thread(
            run_session, "127.0.0.1", port, await_timeout=None, **fields
        )
        for _ in range(ns.sessions)
    ]
    responses = list(await asyncio.gather(*clients))
    scrape = server.registry.render()
    cache_stats = server.manager.cache.stats()
    await server.aclose()
    return {
        "responses": responses,
        "metrics_text": scrape,
        "cache": cache_stats,
        "port": port,
    }


def _cmd_bench(ns: argparse.Namespace) -> int:
    from repro.obs.bench import bench_payload, write_bench_json
    from repro.serve.sessions import SessionSpec, one_shot_reference

    if ns.repeat < 2:
        print("bench needs --repeat >= 2 (steady state is decision 2+)")
        return 2
    print(
        f"gateway bench: n={ns.n} scheme={ns.scheme} seed={ns.seed} "
        f"sessions={ns.sessions} repeat={ns.repeat}"
    )
    driven = asyncio.run(_drive_bench(ns))
    responses: List[Dict[str, Any]] = driven["responses"]
    failures = [r for r in responses if not r.get("ok")]
    if failures:
        print(f"FAIL: {len(failures)} sessions did not complete: "
              f"{failures[0].get('error')}")
        return 1

    spec = SessionSpec(**_session_fields(ns))
    reference = one_shot_reference(spec)
    results = [r["result"] for r in responses]
    parity = all(
        r["value"] == reference["value"]
        and r["per_party_bits"] == reference["per_party_bits"]
        for r in results
    )
    within_budget = all(r["within_budget"] for r in results)

    # Cold = the first decision of the session(s) that paid keygen (a
    # lease miss); steady = every session's post-first-decision mean.
    cold_walls = [
        r["wall"]["first_decision_s"]
        for r in results if r["setup_cache"]["misses"] > 0
    ]
    steady_walls = [
        r["wall"]["steady_mean_s"]
        for r in results if r["wall"]["steady_mean_s"] is not None
    ]
    cold = max(cold_walls) if cold_walls else None
    steady = (
        sum(steady_walls) / len(steady_walls) if steady_walls else None
    )
    amortized = (
        cold is not None and steady is not None and steady < cold
    )
    throughput = [
        r["wall"]["decisions_per_sec"] for r in results
        if r["wall"]["decisions_per_sec"] is not None
    ]
    decisions = sum(r["decisions"] for r in results)

    print(f"  decisions={decisions} parity-with-one-shot={parity} "
          f"within-budget={within_budget}")
    if cold is not None and steady is not None:
        print(f"  cold={cold * 1000:.1f}ms/decision "
              f"steady={steady * 1000:.1f}ms/decision "
              f"amortized={amortized} "
              f"cache={driven['cache']['hits']}h/"
              f"{driven['cache']['misses']}m")

    payload = bench_payload(
        "gateway",
        wall_times={
            "cold_decision_s": round(cold, 6) if cold else None,
            "steady_decision_s": round(steady, 6) if steady else None,
        },
        extra={
            "spec": spec.to_wire(),
            "sessions": ns.sessions,
            "decisions": decisions,
            "decisions_per_sec": (
                round(sum(throughput) / len(throughput), 3)
                if throughput else None
            ),
            "parity_with_one_shot": parity,
            "within_budget": within_budget,
            "amortized": amortized,
            "setup_cache": driven["cache"],
            "budget_bits": reference["budget_bits"],
            "max_bits_per_party": reference["max_bits_per_party"],
            "per_party_bits": reference["per_party_bits"],
            "certificate_bytes": reference["certificate_bytes"],
        },
    )
    path = write_bench_json(ns.results_dir, payload)
    print(f"  wrote {path}")
    ok = parity and within_budget and amortized
    if not ok:
        print("FAIL: bench acceptance (parity AND amortization) not met")
    return 0 if ok else 1


def cmd_serve(argv: Optional[List[str]] = None) -> int:
    ns = _build_parser().parse_args(argv)
    try:
        if ns.subcommand == "run":
            return _cmd_run(ns)
        if ns.subcommand == "client":
            return _cmd_client(ns)
        return _cmd_bench(ns)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
