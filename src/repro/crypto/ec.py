"""The secp256k1 elliptic-curve group, implemented from scratch.

The coin-tossing substrate uses Feldman VSS, whose share commitments live
in a prime-order group with hard discrete log; Schnorr signatures (base
signatures for the SNARK-based SRDS) use the same group.  Points are
represented affinely with ``None`` for the identity; scalar multiplication
is double-and-add.  Pure Python is fast enough for committee-sized
workloads (hundreds of scalar mults per protocol run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CryptoError
from repro.utils.serialization import int_to_fixed_bytes

# secp256k1 parameters: y^2 = x^3 + 7 over GF(P), group order N.
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8


@dataclass(frozen=True)
class Point:
    """An affine point on secp256k1; ``x is None`` encodes the identity."""

    x: Optional[int]
    y: Optional[int]

    def is_identity(self) -> bool:
        """Whether this is the group identity (point at infinity)."""
        return self.x is None

    def __add__(self, other: "Point") -> "Point":
        return point_add(self, other)

    def __mul__(self, scalar: int) -> "Point":
        return scalar_mult(scalar, self)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        if self.is_identity():
            return self
        return Point(self.x, (-self.y) % P)

    def encode(self) -> bytes:
        """Compressed SEC1-style encoding (33 bytes; identity is 1 byte)."""
        if self.is_identity():
            return b"\x00"
        prefix = b"\x03" if self.y % 2 else b"\x02"
        return prefix + int_to_fixed_bytes(self.x, 32)


IDENTITY = Point(None, None)
GENERATOR = Point(GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check the curve equation (identity counts as on-curve)."""
    if point.is_identity():
        return True
    return (point.y * point.y - point.x * point.x * point.x - A * point.x - B) % P == 0


def point_add(p: Point, q: Point) -> Point:
    """Group addition."""
    if p.is_identity():
        return q
    if q.is_identity():
        return p
    if p.x == q.x and (p.y + q.y) % P == 0:
        return IDENTITY
    if p.x == q.x:
        # Doubling.
        slope = (3 * p.x * p.x + A) * pow(2 * p.y, -1, P) % P
    else:
        slope = (q.y - p.y) * pow(q.x - p.x, -1, P) % P
    x = (slope * slope - p.x - q.x) % P
    y = (slope * (p.x - x) - p.y) % P
    return Point(x, y)


def scalar_mult(scalar: int, point: Point) -> Point:
    """Double-and-add scalar multiplication; scalar reduced mod N."""
    scalar %= N
    result = IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = point_add(result, addend)
        addend = point_add(addend, addend)
        scalar >>= 1
    return result


def decode_point(data: bytes) -> Point:
    """Inverse of :meth:`Point.encode` (compressed form)."""
    if data == b"\x00":
        return IDENTITY
    if len(data) != 33 or data[0] not in (2, 3):
        raise CryptoError("malformed compressed point")
    x = int.from_bytes(data[1:], "big")
    if x >= P:
        raise CryptoError("point x-coordinate out of range")
    y_squared = (x * x * x + A * x + B) % P
    # P % 4 == 3 so a square root is a straightforward power.
    y = pow(y_squared, (P + 1) // 4, P)
    if y * y % P != y_squared:
        raise CryptoError("x-coordinate is not on the curve")
    if (y % 2 == 1) != (data[0] == 3):
        y = P - y
    point = Point(x, y)
    if not is_on_curve(point):
        raise CryptoError("decoded point fails curve equation")
    return point


def commit(scalar: int) -> Point:
    """The Pedersen-free commitment ``scalar * G`` used by Feldman VSS."""
    return scalar_mult(scalar, GENERATOR)


def multi_scalar_mult(pairs: Tuple[Tuple[int, Point], ...]) -> Point:
    """Naive multi-scalar multiplication (sum of scalar*point)."""
    result = IDENTITY
    for scalar, point in pairs:
        result = point_add(result, scalar_mult(scalar, point))
    return result
