"""Tests for the f_ae-comm reactive functionality."""

import pytest

from repro.errors import ProtocolError
from repro.functionalities.ae_comm import (
    AlmostEverywhereComm,
    committee_corruption_reaches_third,
)
from repro.net.adversary import random_corruption, targeted_corruption
from repro.net.metrics import CommunicationMetrics
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

N = 128


@pytest.fixture
def functionality(params, rng):
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    metrics = CommunicationMetrics()
    return (
        AlmostEverywhereComm(N, params, plan, metrics, rng.fork("ae")),
        plan,
        metrics,
    )


class TestEstablishment:
    def test_tree_built_and_validated(self, functionality):
        ae, plan, _ = functionality
        assert ae.tree.n == N

    def test_establishment_charged(self, functionality):
        _, _, metrics = functionality
        for party in range(N):
            assert metrics.tally_of(party).bits_total > 0

    def test_supreme_committee_two_thirds_honest(self, functionality):
        ae, plan, _ = functionality
        assert not committee_corruption_reaches_third(
            plan, ae.supreme_committee
        )

    def test_isolated_is_small(self, functionality):
        ae, _, _ = functionality
        assert len(ae.isolated) < N // 10

    def test_corrupt_majority_root_rejected(self, params, rng):
        # Force an impossible corruption level through a hand-built plan
        # hitting the model check (bypassing the tree builder's hint).
        from repro.aetree.tree import build_tree

        plan = targeted_corruption(N, list(range(N // 3)))
        tree = build_tree(N, params, rng.fork("t"))
        # Make the root committee entirely corrupt.
        tree.nodes[tree.root_id].committee = tuple(range(N // 3))[:10]
        with pytest.raises(ProtocolError):
            AlmostEverywhereComm(
                N, params, plan, CommunicationMetrics(), rng.fork("ae"),
                tree=tree,
            )


class TestSendDown:
    def test_delivery_excludes_isolated(self, functionality):
        ae, _, _ = functionality
        deliveries = ae.send_down(100, ("y", "s"))
        assert set(deliveries) == set(range(N)) - ae.isolated
        assert all(value == ("y", "s") for value in deliveries.values())

    def test_send_down_charges_all(self, functionality):
        ae, _, metrics = functionality
        before = metrics.tally_of(0).bits_total
        ae.send_down(1000, "payload")
        assert metrics.tally_of(0).bits_total > before

    def test_larger_payload_costs_more(self, params, rng):
        plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
        metrics = CommunicationMetrics()
        ae = AlmostEverywhereComm(N, params, plan, metrics, rng.fork("ae"))
        base = metrics.tally_of(0).bits_total
        ae.send_down(100, "small")
        after_small = metrics.tally_of(0).bits_total
        ae.send_down(10_000, "large")
        after_large = metrics.tally_of(0).bits_total
        assert (after_large - after_small) > (after_small - base)


def test_committee_corruption_threshold():
    plan = targeted_corruption(10, [0, 1, 2])
    assert committee_corruption_reaches_third(plan, [0, 1, 2, 3, 4, 5])
    assert not committee_corruption_reaches_third(plan, [0, 3, 4, 5, 6, 7, 8])
