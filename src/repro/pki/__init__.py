"""PKI models: trusted, bare, and registered bulletin boards, plus CRS."""

from repro.pki.registry import CRS, PKIMode, PKIRegistry

__all__ = ["CRS", "PKIMode", "PKIRegistry"]
