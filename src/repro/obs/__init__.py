"""repro.obs — observability for balanced-BA executions.

Four pieces, layered on PR 1's runtime:

* **Spans** (:mod:`repro.obs.spans`): hierarchical phase context managers
  (``with span("srds-aggregate", level=k): ...``) that the communication
  ledger consults on every charge, yielding the §3.1 per-phase cost
  decomposition (``CommunicationMetrics.bits_by_phase`` /
  ``phase_breakdown``).
* **Registry** (:mod:`repro.obs.registry`): Counter/Gauge/Histogram
  instruments with Prometheus text exposition, fed by the runtime
  (round-barrier latency, transport frame counts, injected faults).
* **Timeline** (:mod:`repro.obs.timeline`): TraceRecorder streams + span
  intervals → Chrome trace-event JSON, loadable in Perfetto, with a
  deterministic mode mirroring ``trace.py``'s ``clock=None`` contract.
* **Bench records** (:mod:`repro.obs.bench`): structured
  ``BENCH_<name>.json`` results so the perf trajectory is
  machine-readable across PRs.

CLI: ``python -m repro obs report`` (see ``docs/observability.md``).

This package imports only the standard library (plus
:mod:`repro.errors`), so any layer of the repo — including
:mod:`repro.net.metrics` — can depend on it without cycles.
"""

from repro.obs.bench import bench_payload, load_bench_json, write_bench_json
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    UNATTRIBUTED,
    SpanLog,
    SpanRecord,
    current_path,
    current_phase,
    recording,
    span,
)
from repro.obs.timeline import (
    export_chrome_trace,
    load_trace_dir,
    timeline_events,
    validate_trace_events,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanLog",
    "SpanRecord",
    "UNATTRIBUTED",
    "bench_payload",
    "current_path",
    "current_phase",
    "export_chrome_trace",
    "load_bench_json",
    "load_trace_dir",
    "recording",
    "span",
    "timeline_events",
    "validate_trace_events",
    "write_bench_json",
]
