"""The pluggable catalog of Byzantine strategies.

A :class:`Strategy` bundles (a) how the adversary *corrupts* — a plan
kind resolved against the ``t < n/3`` budget on the existing
:class:`~repro.net.adversary.CorruptionPlan` seam — and (b) how the
corrupted parties *behave* — an
:class:`~repro.protocols.balanced_ba.AdversaryBehavior` factory for
π_ba, an equivocating-sender flag for the broadcast protocols, or a
Fig. 1 / Fig. 2 adversary factory for the SRDS experiments.

``expect_violation`` marks *planted* strategies (corruption beyond the
n/3 threshold): the protocol's guarantees are void there, so an
invariant violation is the expected outcome — the campaign asserts the
failure is *loud* (a visible disagreement or a raised error), never a
silent wrong answer, and uses these cells to exercise the repro-spec /
minimizer pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.net.adversary import (
    CorruptionPlan,
    prefix_corruption,
    random_corruption,
    targeted_corruption,
)
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

# Config kinds a strategy may apply to (see repro.campaign.matrix).
KIND_PI_BA = "pi_ba"
KIND_PHASE_KING = "phase_king"
KIND_GRADECAST = "gradecast"
KIND_DOLEV_STRONG = "dolev_strong"
KIND_ABA = "aba"
KIND_SRDS_ROBUST = "srds-robust"
KIND_SRDS_FORGE = "srds-forge"


@dataclass(frozen=True)
class Strategy:
    """One named Byzantine behavior, composable with any fault schedule.

    Attributes:
        name: stable identifier (appears in repro specs).
        description: one-line attack idea.
        kinds: which protocol-config kinds the strategy applies to.
        plan_kind: how the corrupted set is chosen — ``none`` (honest
            baseline), ``random`` (uniform t-subset), ``prefix``
            (clustered: corrupts whole leaf committees / subtrees of the
            KSSV tree), ``committee`` (setup-adaptive: targets a probe
            tree's supreme committee), ``over-threshold`` (planted
            t >= n/3 violation).
        make_adversary: π_ba behavior factory ``(plan, n, rng) ->
            AdversaryBehavior`` (``None`` = silent corrupt parties).
        equivocating_sender: broadcast protocols (gradecast /
            Dolev-Strong): the sender equivocates.
        srds_adversary: factory for the Fig. 1 / Fig. 2 adversary object
            (robustness / forgery kinds only).
        adaptive: name of a :mod:`repro.asynchrony.adaptive` strategy
            (ABA kind only) — corruptions are chosen *during* the run
            from wire/coin observations, so ``plan_kind`` is ``none``
            and the budget is enforced at corruption time.
        expect_violation: planted over-threshold strategy; invariant
            violations are the expected outcome.
    """

    name: str
    description: str
    kinds: Tuple[str, ...]
    plan_kind: str = "random"
    make_adversary: Optional[
        Callable[[CorruptionPlan, int, Randomness], object]
    ] = None
    equivocating_sender: bool = False
    srds_adversary: Optional[Callable[[], object]] = None
    adaptive: Optional[str] = None
    expect_violation: bool = False

    def applies_to(self, kind: str) -> bool:
        return kind in self.kinds

    def resolve_plan(
        self,
        n: int,
        params: ProtocolParameters,
        rng: Randomness,
        explicit: Optional[Tuple[int, ...]] = None,
    ) -> CorruptionPlan:
        """Resolve the corrupted set for one run.

        ``explicit`` (from a pinned repro spec) overrides the sampling
        but keeps the strategy's budget semantics: within-threshold
        strategies still construct budget-checked plans, the planted
        over-threshold strategy deliberately does not.

        The budget is the repo's concrete tolerance
        ``params.max_corruptions(n)`` (beta * n), not the asymptotic
        ``(n-1)//3`` ceiling: at the small n a sweep runs, corruption at
        the theoretical ceiling breaks the whp committee/threshold
        arguments spuriously, which is exactly what the planted
        over-threshold strategy is *for*.
        """
        t = max(1, params.max_corruptions(n))
        budget = None if self.expect_violation else t
        if explicit is not None:
            return targeted_corruption(n, explicit, budget=budget)
        if self.plan_kind == "none":
            return targeted_corruption(n, (), budget=t)
        if self.plan_kind == "random":
            return random_corruption(n, t, rng.fork("corrupt"))
        if self.plan_kind == "prefix":
            return prefix_corruption(n, t)
        if self.plan_kind == "committee":
            return _committee_targeted_plan(n, t, params, rng)
        if self.plan_kind == "over-threshold":
            # Deliberately beyond the paper's model: corrupt half.
            return targeted_corruption(n, range(n // 2), budget=None)
        raise ConfigurationError(f"unknown plan kind {self.plan_kind!r}")


def _committee_targeted_plan(
    n: int, t: int, params: ProtocolParameters, rng: Randomness
) -> CorruptionPlan:
    """Setup-adaptive committee targeting (the bare-PKI adversary's
    power): probe a KSSV tree built with campaign randomness and aim the
    whole budget at its supreme committee.  The protocol's own tree is
    resampled until 2/3-honest (`build_tree` with ``honest_root_hint``),
    so this strategy exercises exactly that defense."""
    from repro.aetree.tree import build_tree

    probe = build_tree(n, params, rng.fork("committee-probe"))
    targets = list(probe.supreme_committee)[:t]
    # Spend any leftover budget on random parties outside the committee.
    if len(targets) < t:
        rest = [p for p in range(n) if p not in targets]
        targets += rng.fork("committee-fill").sample(rest, t - len(targets))
    return targeted_corruption(n, targets, budget=t)


# -- π_ba behavior factories -------------------------------------------------


def _equivocation_behavior(
    plan: CorruptionPlan, n: int, rng: Randomness
) -> object:
    """Corrupt parties sign a *flipped* pair message for half their
    virtual ids and the honest one for the rest — a split-brain signer
    probing SRDS message binding."""
    from repro.protocols.balanced_ba import AdversaryBehavior

    def sign_message(
        party_id: int, virtual_id: int, pair_message: bytes
    ) -> Optional[bytes]:
        if virtual_id % 2 == 0:
            return b"equivocation:" + pair_message
        return pair_message

    return AdversaryBehavior(sign_message=sign_message, ba_choice=1)


def _selective_silence_behavior(
    plan: CorruptionPlan, n: int, rng: Randomness
) -> object:
    """Corrupt parties sign honestly for a random half of their virtual
    ids and withhold the rest — starving some leaf committees of
    signatures without an obvious global pattern."""
    from repro.protocols.balanced_ba import AdversaryBehavior

    coin = rng.fork("selective-silence")

    def sign_message(
        party_id: int, virtual_id: int, pair_message: bytes
    ) -> Optional[bytes]:
        if coin.fork(f"{party_id}/{virtual_id}").bernoulli(0.5):
            return None
        return pair_message

    return AdversaryBehavior(sign_message=sign_message)


def _replay_child_behavior(
    plan: CorruptionPlan, n: int, rng: Randomness
) -> object:
    """Bad tree nodes re-emit their first child's aggregate unchanged
    instead of aggregating — a lazy man-in-the-middle that starves the
    upper tree of counts while staying syntactically valid."""
    from repro.protocols.balanced_ba import AdversaryBehavior

    def bad_node_output(node, pair_message, view):
        return view[0] if view else None

    return AdversaryBehavior(bad_node_output=bad_node_output)


def _boost_flood_behavior(
    plan: CorruptionPlan, n: int, rng: Randomness
) -> object:
    """Corrupt parties flood the final boost round with uncertified
    spam: charged on the wire (pressuring the per-party bits budget)
    but carrying no verifying certificate, so honest deciders must
    ignore it."""
    from repro.protocols.balanced_ba import AdversaryBehavior

    flood_rng = rng.fork("boost-flood")

    def boost_messages() -> List[Tuple[int, int, int, bytes, None]]:
        messages: List[Tuple[int, int, int, bytes, None]] = []
        for sender in sorted(plan.corrupted):
            coin = flood_rng.fork(f"sender/{sender}")
            for _ in range(4):
                recipient = coin.random_int_range(0, n - 1)
                seed = coin.random_bytes(32)
                messages.append((sender, recipient, 1, seed, None))
        return messages

    return AdversaryBehavior(boost_messages=boost_messages, ba_choice=1)


# -- SRDS adversary factories ------------------------------------------------


def _srds(name: str) -> Callable[[], object]:
    def factory() -> object:
        from repro.srds import adversaries

        return getattr(adversaries, name)()

    return factory


# -- the default catalog -----------------------------------------------------


_BA_KINDS = (
    KIND_PI_BA,
    KIND_PHASE_KING,
    KIND_GRADECAST,
    KIND_DOLEV_STRONG,
    KIND_ABA,
)


def _default_strategies() -> List[Strategy]:
    return [
        Strategy(
            name="honest",
            description="no corruption — the baseline every cell must pass",
            kinds=_BA_KINDS,
            plan_kind="none",
        ),
        Strategy(
            name="random-silent",
            description="uniform t-subset of corrupt parties stays silent",
            kinds=_BA_KINDS,
            plan_kind="random",
        ),
        Strategy(
            name="equivocation",
            description=(
                "corrupt signers split-brain across virtual ids; "
                "broadcast senders equivocate"
            ),
            kinds=(KIND_PI_BA, KIND_GRADECAST, KIND_DOLEV_STRONG),
            plan_kind="random",
            make_adversary=_equivocation_behavior,
            equivocating_sender=True,
        ),
        Strategy(
            name="selective-silence",
            description="corrupt parties sign for a random half of their ids",
            kinds=(KIND_PI_BA,),
            plan_kind="random",
            make_adversary=_selective_silence_behavior,
        ),
        Strategy(
            name="subtree-drop",
            description=(
                "clustered (prefix) corruption knocks out whole KSSV "
                "subtrees; bad nodes drop their aggregates"
            ),
            kinds=(KIND_PI_BA, KIND_PHASE_KING),
            plan_kind="prefix",
        ),
        Strategy(
            name="replay-child",
            description="bad tree nodes re-emit one child aggregate verbatim",
            kinds=(KIND_PI_BA,),
            plan_kind="random",
            make_adversary=_replay_child_behavior,
        ),
        Strategy(
            name="boost-flood",
            description="corrupt parties spam uncertified boost messages",
            kinds=(KIND_PI_BA,),
            plan_kind="random",
            make_adversary=_boost_flood_behavior,
        ),
        Strategy(
            name="committee-targeted",
            description=(
                "setup-adaptive: aim the whole budget at a probe tree's "
                "supreme committee"
            ),
            kinds=(KIND_PI_BA,),
            plan_kind="committee",
        ),
        Strategy(
            name="aba-equivocate",
            description=(
                "corrupt ABA parties spam both BVAL values plus "
                "per-recipient split AUX votes every round"
            ),
            kinds=(KIND_ABA,),
            plan_kind="random",
            equivocating_sender=True,
        ),
        # Adaptive adversaries (asynchronous ABA only): the corrupted
        # set is chosen mid-run from coin/wire observations, with the
        # budget enforced at corruption time by repro.asynchrony.
        Strategy(
            name="adaptive-coin",
            description=(
                "adaptively corrupt the parties whose estimate agrees "
                "with each round's coin — the about-to-decide set"
            ),
            kinds=(KIND_ABA,),
            plan_kind="none",
            adaptive="adaptive-coin",
        ),
        Strategy(
            name="adaptive-first-aux",
            description=(
                "adaptively corrupt the first parties observed "
                "reaching the AUX stage (kill the early birds)"
            ),
            kinds=(KIND_ABA,),
            plan_kind="none",
            adaptive="adaptive-first-aux",
        ),
        Strategy(
            name="over-threshold",
            description=(
                "PLANTED: corrupt n/2 parties (t >= n/3) — guarantees "
                "void, failure expected and must be loud"
            ),
            kinds=(KIND_PHASE_KING,),
            plan_kind="over-threshold",
            expect_violation=True,
        ),
        # SRDS robustness (Fig. 1) attackers.
        Strategy(
            name="srds-drop",
            description="bad nodes drop subtrees, corrupt parties silent",
            kinds=(KIND_SRDS_ROBUST,),
            plan_kind="random",
            srds_adversary=_srds("DroppingRobustnessAdversary"),
        ),
        Strategy(
            name="srds-decoy",
            description="bad-path honest parties steered onto a decoy message",
            kinds=(KIND_SRDS_ROBUST,),
            plan_kind="random",
            srds_adversary=_srds("DecoyRobustnessAdversary"),
        ),
        Strategy(
            name="srds-garbage",
            description="corrupt parties emit wrong-message signatures",
            kinds=(KIND_SRDS_ROBUST,),
            plan_kind="random",
            srds_adversary=_srds("GarbageRobustnessAdversary"),
        ),
        Strategy(
            name="srds-replay-agg",
            description="bad nodes double-count one child aggregate",
            kinds=(KIND_SRDS_ROBUST,),
            plan_kind="random",
            srds_adversary=_srds("ReplayRobustnessAdversary"),
        ),
        Strategy(
            name="srds-clustered-drop",
            description="prefix corruption clusters bad leaves; drop subtrees",
            kinds=(KIND_SRDS_ROBUST,),
            plan_kind="prefix",
            srds_adversary=_srds("DroppingRobustnessAdversary"),
        ),
        # SRDS unforgeability (Fig. 2) attackers.
        Strategy(
            name="srds-coalition",
            description="maximal sub-threshold coalition aims at m'",
            kinds=(KIND_SRDS_FORGE,),
            plan_kind="random",
            srds_adversary=_srds("CoalitionForgeryAdversary"),
        ),
        Strategy(
            name="srds-double-count",
            description="aggregate the coalition's aggregate with itself",
            kinds=(KIND_SRDS_FORGE,),
            plan_kind="random",
            srds_adversary=_srds("ReplayForgeryAdversary"),
        ),
        Strategy(
            name="srds-random-proof",
            description="random proof tag for an inflated statement",
            kinds=(KIND_SRDS_FORGE,),
            plan_kind="random",
            srds_adversary=_srds("RandomProofForgeryAdversary"),
        ),
    ]


@dataclass
class StrategyCatalog:
    """Named, ordered collection of strategies (pluggable: tests and
    experiments register extra entries via :meth:`register`)."""

    strategies: List[Strategy] = field(default_factory=_default_strategies)

    def register(self, strategy: Strategy) -> None:
        if any(s.name == strategy.name for s in self.strategies):
            raise ConfigurationError(
                f"strategy {strategy.name!r} already registered"
            )
        self.strategies.append(strategy)

    def get(self, name: str) -> Strategy:
        for strategy in self.strategies:
            if strategy.name == name:
                return strategy
        raise ConfigurationError(f"unknown strategy {name!r}")

    def for_kind(self, kind: str) -> List[Strategy]:
        return [s for s in self.strategies if s.applies_to(kind)]

    def names(self) -> List[str]:
        return [s.name for s in self.strategies]


def default_catalog() -> StrategyCatalog:
    """A fresh catalog holding the built-in strategies."""
    return StrategyCatalog()
