"""Structured benchmark records: ``benchmarks/results/BENCH_<name>.json``.

The text records under ``benchmarks/results/`` are written for humans;
these JSON records make the perf trajectory machine-readable across PRs.
Schema (version 1)::

    {
      "schema": "repro-bench/1",
      "name": "fig3_protocol",
      "snapshot": { ... MetricsSnapshot fields ... },
      "phase_breakdown": {
        "<phase>": {"total_bits": int, "max_bits_per_party": int,
                     "messages": int, "parties": int}
      },
      "wall_times": {"<label>": seconds, ...},
      "extra": { ... free-form experiment knobs ... }
    }

``snapshot`` is :func:`dataclasses.asdict` of a
:class:`~repro.net.metrics.MetricsSnapshot`; ``phase_breakdown`` comes
from :meth:`~repro.net.metrics.CommunicationMetrics.phase_breakdown`.
Keys are sorted on disk so diffs between PRs stay minimal.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

SCHEMA = "repro-bench/1"


def _as_plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    return value


def bench_payload(
    name: str,
    *,
    snapshot: Any = None,
    phase_breakdown: Optional[Dict[str, Any]] = None,
    wall_times: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-conforming record (plain dicts only)."""
    breakdown = {}
    for phase, stats in (phase_breakdown or {}).items():
        breakdown[phase] = _as_plain(stats)
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "name": name,
        "snapshot": _as_plain(snapshot) if snapshot is not None else None,
        "phase_breakdown": breakdown,
        "wall_times": dict(wall_times or {}),
        "extra": dict(extra or {}),
    }
    return payload


def write_bench_json(
    results_dir: Union[str, Path], payload: Dict[str, Any]
) -> Path:
    """Persist one record as ``BENCH_<name>.json``; returns the path."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"payload schema must be {SCHEMA!r}")
    name = payload["name"]
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_bench_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one record back, checking the schema marker."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} record "
            f"(schema={payload.get('schema')!r})"
        )
    return payload
