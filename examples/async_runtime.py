#!/usr/bin/env python3
"""The asyncio runtime: the paper's synchronous model, recovered.

The analysis in the paper (and everything under ``repro.protocols``)
assumes the *synchronous* model of §1: computation proceeds in rounds,
and a message sent in round r arrives at the start of round r+1, in a
canonical order.  Real networks offer none of that.  The
``repro.runtime`` package bridges the gap: it drives the **unchanged**
``Party`` state machines over an asynchronous transport — asyncio
queues or real loopback TCP sockets — and recovers the synchronous
abstraction with round barriers.

This example demonstrates the four claims the runtime makes:

1. **Differential equivalence** — phase-king over the runtime produces
   byte-identical outputs and an identical communication snapshot to
   ``SynchronousNetwork``, on both transports.
2. **π_ba parity** — the full Fig. 3 protocol, record-and-replayed
   over real TCP sockets, charges each party exactly the bits the
   reference accounting says it should (polylog per party).
3. **Fault injection** — seeded crash/delay/reorder/duplication
   schedules are reproducible and phase-king still agrees under them.
4. **Tracing** — every run emits per-party JSONL event streams whose
   fingerprint is identical across repeats and across transports.

Usage::

    python examples/async_runtime.py [n]
"""

import sys
import tempfile
from pathlib import Path

from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.phase_king import run_phase_king
from repro.runtime import (
    FaultPlan,
    LinkDelay,
    TraceRecorder,
    run_balanced_ba_runtime,
    run_phase_king_runtime,
)
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def demo_differential(n: int) -> None:
    banner("1. Differential equivalence (phase-king, local + TCP)")
    inputs = {i: i % 2 for i in range(n)}
    byzantine = [1, n - 2]
    sync_out, sync_metrics = run_phase_king(inputs, byzantine)
    for kind in ("local", "tcp"):
        out, metrics = run_phase_king_runtime(
            inputs, byzantine, transport=kind
        )
        same_out = out == sync_out
        same_metrics = metrics.snapshot() == sync_metrics.snapshot()
        print(f"  {kind:5s}: outputs match={same_out}  "
              f"metrics match={same_metrics}  "
              f"max_bits={metrics.snapshot().max_bits_per_party}")


def demo_balanced_ba(n: int) -> None:
    banner("2. pi_ba (Fig. 3) replayed over TCP sockets")
    rng = Randomness(33)
    params = ProtocolParameters()
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: 1 for i in range(n)}
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    result, runtime = run_balanced_ba_runtime(
        inputs, plan, scheme, params, rng.fork("run"), transport="tcp"
    )
    print(f"  n={n}, t={plan.t}: agreement={result.agreement}, "
          f"value={result.agreed_value}")
    print(f"  transport-charged max bits/party: "
          f"{result.metrics.max_bits_per_party} "
          f"(polylog target, n*polylog total = "
          f"{result.metrics.total_bits})")
    print(f"  replay rounds over the wire: {runtime.rounds}")


def demo_faults(n: int) -> None:
    banner("3. Seeded fault injection (crash + delay + reorder + dup)")
    inputs = {i: i % 2 for i in range(n)}
    byzantine = [3]
    faults = FaultPlan(
        crashes={3: 2},
        delays=[LinkDelay(0, 1, rounds=1, first_round=0, last_round=2)],
        reorder=True,
        duplicate_probability=0.1,
        rng=Randomness(21),
    )
    outputs, _ = run_phase_king_runtime(inputs, byzantine, fault_plan=faults)
    values = {v for v in outputs.values()}
    print("  crash@2, +1 round delay on 0->1, reorder, 10% dup")
    print(f"  honest outputs: {sorted(values)} "
          f"(agreement={'yes' if len(values) == 1 else 'NO'})")
    repeat, _ = run_phase_king_runtime(inputs, byzantine, fault_plan=FaultPlan(
        crashes={3: 2},
        delays=[LinkDelay(0, 1, rounds=1, first_round=0, last_round=2)],
        reorder=True,
        duplicate_probability=0.1,
        rng=Randomness(21),
    ))
    print(f"  same seed, second run identical: {repeat == outputs}")


def demo_tracing(n: int) -> None:
    banner("4. Deterministic per-party JSONL traces")
    inputs = {i: i % 2 for i in range(n)}
    fingerprints = {}
    for kind in ("local", "tcp"):
        trace = TraceRecorder()
        run_phase_king_runtime(inputs, [2], transport=kind, trace=trace)
        fingerprints[kind] = trace.fingerprint()
    print(f"  local fingerprint: {fingerprints['local'][:16]}...")
    print(f"  tcp   fingerprint: {fingerprints['tcp'][:16]}...")
    print(f"  identical across transports: "
          f"{fingerprints['local'] == fingerprints['tcp']}")
    with tempfile.TemporaryDirectory() as tmp:
        trace = TraceRecorder()
        run_phase_king_runtime(inputs, [2], trace=trace)
        paths = trace.dump_dir(Path(tmp))
        sample = paths[0].read_text().splitlines()[0]
        print(f"  wrote {len(paths)} JSONL files; first event of "
              f"{paths[0].name}:")
        print(f"    {sample}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    demo_differential(n)
    demo_balanced_ba(n)
    demo_faults(n)
    demo_tracing(n)
    print()


if __name__ == "__main__":
    main()
