"""Tests for the Thm 1.3 empirical attack (CRS model)."""

from repro.lowerbounds.crs_attack import (
    attack_success_rate,
    crs_certificate,
    run_crs_attack_trial,
    run_pki_control_trial,
)
from repro.utils.randomness import Randomness


class TestCrsAttack:
    def test_attack_succeeds_often(self, rng):
        rate = attack_success_rate(
            n=150, t=25, messages_per_party=8, trials=40, rng=rng
        )
        assert rate >= 0.5

    def test_pki_control_defeats_attack(self, rng):
        rate = attack_success_rate(
            n=150, t=25, messages_per_party=8, trials=40, rng=rng,
            with_pki=True,
        )
        assert rate <= 0.1

    def test_separation(self, rng):
        crs_rate = attack_success_rate(
            n=100, t=20, messages_per_party=6, trials=30, rng=rng.fork("a")
        )
        pki_rate = attack_success_rate(
            n=100, t=20, messages_per_party=6, trials=30, rng=rng.fork("b"),
            with_pki=True,
        )
        assert crs_rate > pki_rate + 0.4

    def test_trial_bookkeeping(self, rng):
        outcome = run_crs_attack_trial(100, 20, 6, rng)
        assert outcome.true_value in (0, 1)
        assert outcome.adversarial_messages_received >= 0

    def test_pki_trial_needs_one_honest_message(self, rng):
        outcome = run_pki_control_trial(100, 20, 6, rng)
        if outcome.honest_messages_received > 0:
            assert outcome.victim_correct

    def test_certificate_simulatable(self):
        # The crux of the theorem: anyone can compute the CRS tag.
        crs = b"public-randomness"
        assert crs_certificate(crs, 5, 1) == crs_certificate(crs, 5, 1)
