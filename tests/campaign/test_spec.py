"""Repro-spec format: canonical rendering, exact parsing, validation."""

import pytest

from repro.campaign.spec import SCHEMA, CampaignSpec, format_spec, parse_spec
from repro.errors import ConfigurationError


def _spec(**overrides):
    fields = dict(
        config="phase_king", strategy="honest", schedule="none", n=16, seed=0
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestRoundTrip:
    def test_minimal(self):
        spec = _spec()
        assert parse_spec(format_spec(spec)) == spec

    def test_with_corrupt(self):
        spec = _spec(corrupt=(3, 1, 2))
        line = format_spec(spec)
        assert "corrupt=1,2,3" in line  # canonical sorted order
        assert parse_spec(line) == spec

    def test_with_crashes(self):
        spec = _spec(crashes={5: 2, 1: 4})
        line = format_spec(spec)
        assert "crashes=1@4,5@2" in line
        assert parse_spec(line) == spec

    def test_schema_tag_leads(self):
        assert format_spec(_spec()).startswith(SCHEMA + " ")

    def test_corrupt_deduplicated(self):
        assert _spec(corrupt=(2, 2, 1)).corrupt == (1, 2)

    def test_empty_corrupt_round_trips(self):
        spec = _spec(corrupt=())
        line = format_spec(spec)
        assert "corrupt=" in line
        assert parse_spec(line).corrupt == ()

    def test_resolved_property(self):
        assert not _spec().resolved
        assert _spec(corrupt=(1,)).resolved


class TestHelpers:
    def test_with_corrupt_returns_new_spec(self):
        spec = _spec()
        pinned = spec.with_corrupt((4, 2))
        assert pinned.corrupt == (2, 4)
        assert spec.corrupt is None  # frozen original untouched

    def test_with_crashes_none_clears(self):
        spec = _spec(crashes={1: 1})
        assert spec.with_crashes(None).crashes is None


class TestValidation:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            parse_spec("campaign/999 config=x strategy=y schedule=z n=8 seed=0")

    def test_rejects_missing_keys(self):
        with pytest.raises(ConfigurationError):
            parse_spec(f"{SCHEMA} config=x strategy=y n=8 seed=0")

    def test_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError):
            parse_spec(
                f"{SCHEMA} config=x strategy=y schedule=z n=8 seed=0 wat=1"
            )

    def test_rejects_duplicate_key(self):
        with pytest.raises(ConfigurationError):
            parse_spec(
                f"{SCHEMA} config=x config=x strategy=y schedule=z n=8 seed=0"
            )

    def test_rejects_malformed_crash_entry(self):
        with pytest.raises(ConfigurationError):
            parse_spec(
                f"{SCHEMA} config=x strategy=y schedule=z n=8 seed=0 "
                f"crashes=3-1"
            )

    def test_rejects_non_integer_n(self):
        with pytest.raises(ConfigurationError):
            parse_spec(
                f"{SCHEMA} config=x strategy=y schedule=z n=many seed=0"
            )

    def test_rejects_out_of_range_corrupt(self):
        with pytest.raises(ConfigurationError):
            _spec(corrupt=(16,))

    def test_rejects_out_of_range_crash(self):
        with pytest.raises(ConfigurationError):
            _spec(crashes={16: 1})
        with pytest.raises(ConfigurationError):
            _spec(crashes={1: -1})

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            _spec(n=3)

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigurationError):
            _spec(seed=-1)
