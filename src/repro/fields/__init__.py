"""Prime-field and polynomial arithmetic for the secret-sharing substrates."""

from repro.fields.polynomial import (
    Polynomial,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at_zero,
)
from repro.fields.prime_field import (
    SECP256K1_ORDER,
    FieldElement,
    PrimeField,
    default_field,
)

__all__ = [
    "SECP256K1_ORDER",
    "FieldElement",
    "Polynomial",
    "PrimeField",
    "default_field",
    "lagrange_coefficients_at_zero",
    "lagrange_interpolate_at_zero",
]
