"""ASY002 fixture (ok): locked mutations and sanctioned single writers."""

import threading


class MeshState:
    def __init__(self):
        self._lock = threading.Lock()
        self._inbox = {}
        self._journal = []

    def start(self):
        worker = threading.Thread(target=self._pump)
        worker.start()

    def _pump(self):
        with self._lock:
            self._inbox.update(ready=True)
            self._journal.append("pumped")

    def drop(self, key):
        with self._lock:
            self._inbox.pop(key, None)

    async def drain(self):
        with self._lock:
            self._journal.append("drained")


class SingleWriter:
    """Both mutation sites live on the event loop — no lock required."""

    def __init__(self):
        self._queue = []

    async def push(self, item):
        self._queue.append(item)

    async def flush(self):
        self._queue.clear()
