"""Analytic communication costs for hybrid-model functionalities.

Fig. 3 is stated in the (f_ae-comm, f_ba, f_ct, f_aggr-sig)-hybrid model,
and §3.1 pins each functionality's realization cost:

* f_ae-comm (King et al. SODA'06) — polylog(n) rounds per invocation;
  every party sends and processes polylog(n) bits; locality polylog(n);
* f_ba (Garay–Moses / phase-king in a polylog committee) — polylog(n)
  rounds and communication;
* f_ct (Chor et al. VSS coin toss in a polylog committee) — polylog(n)
  rounds and polylog(n)·poly(kappa) communication;
* f_aggr-sig (Damgård–Ishai MPC in a polylog committee on a polylog-size
  input) — polylog(n)·poly(kappa) communication.

When the big protocol executes these functionally, the formulas below
are charged per participant through
:meth:`~repro.net.metrics.CommunicationMetrics.charge_functionality`.
The constants are *calibrated upward* from the concrete message-passing
realizations in this repo (phase-king, VSS coin toss) — a consistency
test (`tests/protocols/test_cost_model.py`) asserts the analytic charge
dominates the measured concrete cost at the committee sizes we run, so
the benchmark numbers can only over-charge the paper's protocol, never
flatter it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.params import ProtocolParameters, ceil_log2


@dataclass(frozen=True)
class FunctionalityCharge:
    """One functionality invocation's per-participant charge."""

    bits_per_party: int
    peers_per_party: int
    rounds: int


def ae_comm_establish(n: int, params: ProtocolParameters) -> FunctionalityCharge:
    """Tree establishment (first f_ae-comm invocation): KSSV'06 costs.

    KSSV build the tree with polylog(n) bits and polylog(n) peers per
    party over polylog(n) rounds; we charge committee^2 * log n bits —
    committee-size messages exchanged within each of the O(log n)
    committees a party serves in.
    """
    log_n = ceil_log2(n)
    committee = params.committee_size(n)
    return FunctionalityCharge(
        bits_per_party=committee * committee * log_n,
        peers_per_party=committee * 2,
        rounds=log_n,
    )


def ae_comm_send_down(
    n: int, params: ProtocolParameters, payload_bits: int
) -> FunctionalityCharge:
    """Subsequent f_ae-comm calls: root committee payload to everyone.

    Each party relays the payload along each tree committee it belongs
    to: payload * committee-size * height bits.
    """
    committee = params.committee_size(n)
    height = max(2, ceil_log2(n) // 2)
    return FunctionalityCharge(
        bits_per_party=payload_bits * committee * height,
        peers_per_party=committee,
        rounds=height,
    )


def committee_ba(committee_size: int, value_bits: int = 16) -> FunctionalityCharge:
    """f_ba realized by phase-king inside a committee.

    f+1 phases, 3 rounds each, all-to-all value-size messages, counted
    in both directions (sent + received) per party.
    """
    f = max(1, (committee_size - 1) // 3)
    rounds = 3 * (f + 1)
    return FunctionalityCharge(
        bits_per_party=2 * rounds * committee_size * value_bits,
        peers_per_party=committee_size,
        rounds=rounds,
    )


def committee_coin_toss(
    committee_size: int, security_bits: int = 256
) -> FunctionalityCharge:
    """f_ct realized by Feldman-VSS coin toss inside a committee.

    Dominated by the reveal round: every member forwards every qualified
    dealer's share (64B) plus the dealing round's commitments
    ((f+1) * 33B each to all members).
    """
    f = max(1, (committee_size - 1) // 3)
    # Wire sizes include framing: a revealed share is two 32-byte field
    # elements plus tags (~80B); a commitment is f+1 compressed points.
    share_bits = 8 * 80
    commitment_bits = (f + 1) * 33 * 8 + 128
    deal_bits = 2 * committee_size * (share_bits + commitment_bits)
    complaint_bits = 2 * committee_size * 128
    reveal_bits = 2 * committee_size * committee_size * share_bits
    return FunctionalityCharge(
        bits_per_party=deal_bits + complaint_bits + reveal_bits,
        peers_per_party=committee_size,
        rounds=4,
    )


def committee_aggregate_sig(
    committee_size: int, input_bits: int, security_bits: int = 256
) -> FunctionalityCharge:
    """f_aggr-sig realized by Damgård–Ishai MPC inside a node committee.

    DI'05 evaluates a circuit of size |Aggregate2| with communication
    poly(committee) * circuit size; with the Def. 2.2 decomposition the
    circuit input is the already-filtered polylog-size set.  Per member we
    charge committee * input bits (sharing its input to every member) plus
    committee^2 * kappa (the PRG-compressed per-gate traffic and the
    committee-internal broadcasts) over O(1) rounds.
    """
    per_party = (
        committee_size * input_bits
        + committee_size * committee_size * security_bits
    )
    return FunctionalityCharge(
        bits_per_party=per_party,
        peers_per_party=committee_size,
        rounds=4,
    )


def pi_ba_per_party_budget(
    n: int,
    params: ProtocolParameters,
    certificate_bytes: int,
    base_signature_bytes: int = 0,
    slack: float = 4.0,
) -> int:
    """Analytic ceiling on ``max_bits_per_party`` for one π_ba execution.

    Composes the per-party charges of every functionality Fig. 3 invokes
    — tree establishment, committee BA, committee coin toss, two
    send-downs, and one aggregate-signature evaluation per tree level —
    plus the concrete wire terms the hybrid realization pays (base
    signatures flooded to leaf committees, certificate boost fan-out),
    then multiplies by ``slack``.

    The point is the *shape*, not tightness: every term is polylog(n)
    times the scheme's signature material, so a protocol change that
    smuggles in an Ω(√n) factor blows through the ceiling at moderate n,
    while honest refactors stay far below it.  The campaign invariants
    (:mod:`repro.campaign.invariants`) check measured executions against
    this budget; tightness is separately pinned by the golden
    phase-breakdown benchmarks in ``tests/obs``.

    Args:
        n: number of real parties.
        certificate_bytes: size of one SRDS aggregate certificate (probe
            the scheme, or take it from a completed ``BAResult``).
        base_signature_bytes: size of one *base* (non-aggregated) SRDS
            signature — for hash-based schemes this dominates the wire
            traffic even when certificates are tiny.  0 if unknown; the
            certificate term then has to cover it through ``slack``.
        slack: multiplicative headroom over the composed analytic cost.
    """
    log_n = ceil_log2(n)
    committee = params.committee_size(n)
    height = max(2, log_n // 2)
    cert_bits = 8 * certificate_bytes
    base_bits = 8 * max(base_signature_bytes, certificate_bytes)
    payload_bits = cert_bits + 4096  # certificate + framing/metadata

    total = ae_comm_establish(n, params).bits_per_party
    total += committee_ba(committee).bits_per_party
    total += committee_coin_toss(committee).bits_per_party
    total += 2 * ae_comm_send_down(n, params, payload_bits).bits_per_party
    total += (height + 1) * committee_aggregate_sig(
        committee, payload_bits + base_bits
    ).bits_per_party
    # Wire terms of the concrete hybrid realization:
    # each party signs for each of its O(log n) virtual ids and floods
    # the base signature to its leaf committee (sent + received) ...
    total += 2 * committee * log_n * base_bits
    # ... every committee a party serves in exchanges aggregates at each
    # level during SRDS aggregation ...
    total += 2 * committee * (height + 1) * (cert_bits + base_bits)
    # ... and the final certificate boost fans out to committee-many
    # peers per tree level on the way down.
    total += 2 * committee * height * payload_bits
    return int(slack * total)


def aba_per_party_budget(
    n: int,
    rounds: int,
    coin_committee_size: Optional[int] = None,
    message_bits: int = 40,
    slack: float = 4.0,
) -> int:
    """Analytic ceiling on ``max_bits_per_party`` for one MMR14 ABA run.

    The asynchronous baseline costs Θ(n) bits per party per round: each
    round an honest party broadcasts at most four constant-size messages
    (its own BVAL estimate, the f+1-relay BVAL for the other bit, AUX,
    and CONF) to every peer, counted sent + received, plus one common
    coin charged at the f_ct committee realization cost.  One extra
    round covers the BVAL(r+1) burst already in flight when the decision
    lands.

    This is the counterpoint to :func:`pi_ba_per_party_budget`: linear
    in ``n`` where the paper's protocol is polylog — ``BENCH_aba.json``
    records the measured gap on identical ``(n, seed)`` cells.  The
    campaign checks asynchronous executions against this ceiling, so an
    ABA change that smuggles in an extra Ω(n) factor (say, re-relaying
    every message) blows through it at moderate n.

    Args:
        n: number of parties (and broadcast fan-out).
        rounds: the decided round observed in the run being judged.
        coin_committee_size: parties charged per coin invocation
            (default ``n`` — ABA's coin is not committee-sampled).
        message_bits: ceiling on one encoded ABA message (three LEB128
            varints plus framing slack).
        slack: multiplicative headroom over the composed analytic cost.
    """
    committee = coin_committee_size if coin_committee_size is not None else n
    wire_per_round = 2 * 4 * n * message_bits
    coin_bits = committee_coin_toss(committee).bits_per_party
    return int(slack * (max(0, rounds) + 1) * (wire_per_round + coin_bits))
