"""Tests for the seeded randomness wrapper."""

from repro.utils.randomness import Randomness, make_randomness


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = Randomness(7), Randomness(7)
        assert a.random_bytes(16) == b.random_bytes(16)
        assert a.random_int(1000) == b.random_int(1000)

    def test_different_seeds_differ(self):
        a, b = Randomness(1), Randomness(2)
        assert a.random_bytes(16) != b.random_bytes(16)

    def test_fork_is_deterministic(self):
        a = Randomness(7).fork("child")
        b = Randomness(7).fork("child")
        assert a.random_bytes(8) == b.random_bytes(8)

    def test_fork_labels_independent(self):
        parent = Randomness(7)
        assert parent.fork("x").random_bytes(8) != parent.fork("y").random_bytes(8)

    def test_fork_does_not_disturb_parent(self):
        a, b = Randomness(7), Randomness(7)
        a.fork("whatever")
        assert a.random_bytes(8) == b.random_bytes(8)


class TestHelpers:
    def test_random_bytes_length(self):
        rng = Randomness(1)
        for length in (0, 1, 31, 64):
            assert len(rng.random_bytes(length)) == length

    def test_random_int_range(self):
        rng = Randomness(2)
        values = [rng.random_int(10) for _ in range(200)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) == 10  # all residues hit

    def test_random_int_range_inclusive(self):
        rng = Randomness(3)
        values = {rng.random_int_range(5, 7) for _ in range(100)}
        assert values == {5, 6, 7}

    def test_bernoulli_extremes(self):
        rng = Randomness(4)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_sample_distinct(self):
        rng = Randomness(5)
        sample = rng.sample(range(100), 30)
        assert len(set(sample)) == 30

    def test_subset_preserves_order(self):
        rng = Randomness(6)
        subset = rng.subset(list(range(50)), 10)
        assert subset == sorted(subset)
        assert len(subset) == 10

    def test_shuffle_is_permutation(self):
        rng = Randomness(7)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))


def test_make_randomness_defaults():
    assert make_randomness().seed == make_randomness(0).seed
    labeled = make_randomness(5, "tag")
    assert labeled.random_bytes(4) == make_randomness(5, "tag").random_bytes(4)
