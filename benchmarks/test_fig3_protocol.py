"""F3 — Figure 3: pi_ba end-to-end under adversarial conditions.

Executes the full protocol at several sizes and corruption patterns,
with corrupt parties running each implemented misbehaviour, and reports
agreement/validity plus the structural metrics the theorem promises
(polylog rounds, succinct certificate, balanced communication).
"""

import time

import pytest

from benchmarks.conftest import write_result
from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.obs.spans import SpanLog, recording
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import AdversaryBehavior, run_balanced_ba
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

NS = [64, 128, 256]
PARAMS = ProtocolParameters()

BEHAVIOURS = [
    ("silent", AdversaryBehavior()),
    ("equivocate", AdversaryBehavior(
        sign_message=lambda party, virtual, honest: b"equivocation"
    )),
    ("follow", AdversaryBehavior(
        sign_message=lambda party, virtual, honest: honest
    )),
]


def _run_grid():
    rows = []
    rng = Randomness(42)
    for n in NS:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        for label, behaviour in BEHAVIOURS:
            result = run_balanced_ba(
                {i: i % 2 for i in range(n)},
                plan,
                SnarkSRDS(base_scheme=HashRegistryBase()),
                PARAMS,
                rng.fork(f"r{n}{label}"),
                adversary=behaviour,
            )
            rows.append((n, label, result))
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_protocol(benchmark, results_dir, bench_json):
    rows = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    lines = [
        "pi_ba (Fig. 3) under adversarial behaviours, split inputs:",
        f"{'n':>5} {'adversary':<12} {'agree':<6} {'cert':>7} "
        f"{'max/party':>12} {'imbalance':>10} {'isolated':>9}",
    ]
    for n, label, result in rows:
        lines.append(
            f"{n:>5} {label:<12} {str(result.agreement):<6} "
            f"{result.certificate_bytes:>6}B "
            f"{format_bits(result.metrics.max_bits_per_party):>12} "
            f"{result.metrics.imbalance:>10.2f} "
            f"{result.isolated_before_boost:>9}"
        )
    write_result(results_dir, "fig3_protocol", "\n".join(lines))

    for n, label, result in rows:
        assert result.agreement, f"agreement failed at n={n} vs {label}"
        # Succinct certificate: constant-size for the SNARK scheme.
        assert result.certificate_bytes < 512
        # Balanced: worst party within a small factor of the mean.
        assert result.metrics.imbalance < 5.0

    # Structured record: one phase-instrumented run at the smallest n,
    # so the per-phase cost trajectory is diffable across PRs.
    n = NS[0]
    rng = Randomness(42)
    plan = random_corruption(n, PARAMS.max_corruptions(n), rng.fork("bench"))
    metrics = CommunicationMetrics()
    started = time.perf_counter()
    with recording(SpanLog()):
        instrumented = run_balanced_ba(
            {i: i % 2 for i in range(n)},
            plan,
            SnarkSRDS(base_scheme=HashRegistryBase()),
            PARAMS,
            rng.fork("bench-run"),
            metrics=metrics,
        )
    elapsed = time.perf_counter() - started
    assert instrumented.agreement
    for party_id in metrics.party_ids:
        assert (
            sum(metrics.bits_by_phase(party_id).values())
            == metrics.tally_of(party_id).bits_total
        )
    bench_json(
        "fig3_protocol",
        snapshot=metrics.snapshot(),
        phase_breakdown=metrics.phase_breakdown(),
        wall_times={"pi_ba": elapsed},
        extra={"n": n, "t": plan.t, "scheme": "snark-srds"},
    )
