"""DET002 positive fixture: wall-clock reads in a protocol scope."""

import time as time_mod
from datetime import datetime
from time import perf_counter


def deadline() -> float:
    return time_mod.time() + 5.0  # aliased module still resolves


def stamp() -> str:
    return datetime.now().isoformat()


def latency_probe() -> float:
    return perf_counter()  # from-import resolves too


def make_recorder(factory):
    # A *reference* (no call) injects wall time just the same.
    return factory(clock=time_mod.perf_counter)
