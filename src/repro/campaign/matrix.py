"""The protocol matrix: which configurations a campaign sweeps.

A :class:`ProtocolConfig` names one concrete protocol instantiation —
π_ba with a specific SRDS scheme, the phase-king committee BA (split or
unanimous inputs), gradecast, the Dolev-Strong baseline, the
asynchronous MMR14 ABA, or one of the SRDS security experiments —
together with the party count and the fault schedules that are
meaningful for it (the in-process π_ba execution exposes only the
reordering seam; the runtime drivers take the full
crash/delay/partition repertoire; the SRDS experiments and Dolev-Strong
are synchronous one-shots; the ABA configs take the asynchronous
latency / adversarial-order / churn set).

:func:`enumerate_cells` produces the deterministic cell order the
sweep consumes: round-robin across configs so a bounded ``--budget``
prefix still touches the whole matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.campaign.catalog import (
    KIND_ABA,
    KIND_DOLEV_STRONG,
    KIND_GRADECAST,
    KIND_PHASE_KING,
    KIND_PI_BA,
    KIND_SRDS_FORGE,
    KIND_SRDS_ROBUST,
    StrategyCatalog,
    default_catalog,
)
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError

# Schedule sets by execution substrate.
_SYNC_ONLY = ("none",)
_IN_PROCESS = ("none", "reorder")
_RUNTIME_FULL = (
    "none",
    "reorder",
    "duplicate",
    "reorder-dup",
    "random-delay",
    "crash-corrupted",
    "partition-early",
    "crash-everyone",
)
# Asynchronous (AsyncScheduler) configs: latency models, the
# worst-case delivery-order adversary, and churn join/leave/collapse.
_ASYNC_FULL = (
    "none",
    "latency-uniform",
    "latency-lognormal",
    "adversarial-order",
    "churn-join",
    "churn-leave",
    "churn-collapse",
)


@dataclass(frozen=True)
class ProtocolConfig:
    """One protocol instantiation the campaign can drive.

    ``kind`` selects the execution path in the runner and which catalog
    strategies apply; ``scheme`` picks the SRDS construction where
    relevant; ``unanimous_inputs`` makes validity (not just agreement)
    the live guarantee; ``backend`` selects the execution substrate —
    ``"inproc"`` (the default single-process path) or ``"cluster"``
    (wire replay sharded across worker OS processes, where the
    ``kill-worker`` schedule arms the supervisor's SIGKILL plan).
    """

    name: str
    kind: str
    n: int
    scheme: Optional[str] = None  # "snark" | "owf"
    unanimous_inputs: bool = False
    schedules: Tuple[str, ...] = _SYNC_ONLY
    backend: str = "inproc"  # "inproc" | "cluster"

    def allows_schedule(self, schedule_name: str) -> bool:
        return schedule_name in self.schedules


_DEFAULT: List[ProtocolConfig] = [
    ProtocolConfig(
        name="pi_ba-snark",
        kind=KIND_PI_BA,
        n=16,
        scheme="snark",
        schedules=_IN_PROCESS,
    ),
    ProtocolConfig(
        name="phase_king",
        kind=KIND_PHASE_KING,
        n=16,
        schedules=_RUNTIME_FULL,
    ),
    ProtocolConfig(
        name="gradecast",
        kind=KIND_GRADECAST,
        n=16,
        schedules=_RUNTIME_FULL,
    ),
    ProtocolConfig(
        name="dolev_strong",
        kind=KIND_DOLEV_STRONG,
        n=8,
        schedules=_SYNC_ONLY,
    ),
    ProtocolConfig(
        name="srds-robust-snark",
        kind=KIND_SRDS_ROBUST,
        n=16,
        scheme="snark",
    ),
    ProtocolConfig(
        name="srds-forge-snark",
        kind=KIND_SRDS_FORGE,
        n=16,
        scheme="snark",
    ),
    ProtocolConfig(
        name="pi_ba-owf",
        kind=KIND_PI_BA,
        n=16,
        scheme="owf",
        schedules=_IN_PROCESS,
    ),
    ProtocolConfig(
        name="phase_king-unanimous",
        kind=KIND_PHASE_KING,
        n=16,
        unanimous_inputs=True,
        schedules=_RUNTIME_FULL,
    ),
    ProtocolConfig(
        name="srds-robust-owf",
        kind=KIND_SRDS_ROBUST,
        n=16,
        scheme="owf",
    ),
    ProtocolConfig(
        name="srds-forge-owf",
        kind=KIND_SRDS_FORGE,
        n=16,
        scheme="owf",
    ),
    ProtocolConfig(
        name="pi_ba-snark-cluster",
        kind=KIND_PI_BA,
        n=16,
        scheme="snark",
        schedules=("none", "kill-worker"),
        backend="cluster",
    ),
    ProtocolConfig(
        name="aba",
        kind=KIND_ABA,
        n=16,
        schedules=_ASYNC_FULL,
    ),
    ProtocolConfig(
        name="aba-unanimous",
        kind=KIND_ABA,
        n=16,
        unanimous_inputs=True,
        schedules=_ASYNC_FULL,
    ),
]


def default_matrix() -> List[ProtocolConfig]:
    """The built-in configs, in deterministic sweep order."""
    return list(_DEFAULT)


def config_by_name(
    name: str, matrix: Optional[List[ProtocolConfig]] = None
) -> ProtocolConfig:
    for config in matrix if matrix is not None else _DEFAULT:
        if config.name == name:
            return config
    raise ConfigurationError(f"unknown protocol config {name!r}")


@dataclass(frozen=True)
class CampaignCell:
    """One (config, strategy, schedule) point with its unresolved spec."""

    config: ProtocolConfig
    strategy_name: str
    schedule_name: str
    spec: CampaignSpec


def enumerate_cells(
    seed: int,
    matrix: Optional[List[ProtocolConfig]] = None,
    catalog: Optional[StrategyCatalog] = None,
    include_planted: bool = False,
) -> List[CampaignCell]:
    """All cells of the matrix in deterministic round-robin order.

    Per config, the cells run strategy-major over the config's schedule
    list; configs are interleaved so a ``--budget N`` prefix samples the
    whole matrix.  ``include_planted`` adds the ``expect_violation``
    strategies (the over-threshold plants) to the sweep.
    """
    matrix = matrix if matrix is not None else default_matrix()
    catalog = catalog if catalog is not None else default_catalog()
    per_config: List[List[CampaignCell]] = []
    for config in matrix:
        cells: List[CampaignCell] = []
        for strategy in catalog.for_kind(config.kind):
            if strategy.expect_violation and not include_planted:
                continue
            for schedule_name in config.schedules:
                spec = CampaignSpec(
                    config=config.name,
                    strategy=strategy.name,
                    schedule=schedule_name,
                    n=config.n,
                    seed=seed,
                )
                cells.append(
                    CampaignCell(
                        config=config,
                        strategy_name=strategy.name,
                        schedule_name=schedule_name,
                        spec=spec,
                    )
                )
        per_config.append(cells)
    # Round-robin interleave.
    interleaved: List[CampaignCell] = []
    index = 0
    while any(index < len(cells) for cells in per_config):
        for cells in per_config:
            if index < len(cells):
                interleaved.append(cells[index])
        index += 1
    return interleaved
