"""Phase spans: stack semantics, collectors, determinism."""

import asyncio

import pytest

from repro.obs.spans import (
    UNATTRIBUTED,
    SpanLog,
    current_path,
    current_phase,
    recording,
    span,
)


class TestStack:
    def test_no_active_span(self):
        assert current_phase() is None
        assert current_path() is None

    def test_innermost_wins(self):
        with span("outer"):
            assert current_phase() == "outer"
            with span("inner"):
                assert current_phase() == "inner"
                assert current_path() == "outer/inner"
            assert current_phase() == "outer"
        assert current_phase() is None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            with span(""):
                pass

    def test_stack_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        assert current_phase() is None

    def test_unattributed_label_is_not_a_valid_span_collision(self):
        # The sentinel must never equal a protocol phase name by accident.
        assert UNATTRIBUTED.startswith("(")

    def test_asyncio_tasks_see_independent_stacks(self):
        seen = {}

        async def task(name):
            with span(name):
                await asyncio.sleep(0)
                seen[name] = current_phase()

        async def main():
            await asyncio.gather(task("a"), task("b"))

        asyncio.run(main())
        assert seen == {"a": "a", "b": "b"}


class TestSpanLog:
    def test_records_intervals_with_nesting(self):
        with recording() as log:
            with span("pi-ba", n=8):
                with span("srds-aggregate", level=1):
                    pass
                with span("srds-aggregate", level=2):
                    pass
        assert log.names == ["pi-ba", "srds-aggregate"]
        (root,) = log.roots()
        assert root.name == "pi-ba" and root.attrs == {"n": 8}
        levels = [r.attrs["level"] for r in log.by_name("srds-aggregate")]
        assert levels == [1, 2]
        for record in log.records:
            assert record.closed
            assert record.end_tick > record.start_tick

    def test_deterministic_ticks_without_clock(self):
        def run():
            log = SpanLog()
            with recording(log):
                with span("a"):
                    with span("b"):
                        pass
            return [(r.name, r.start_tick, r.end_tick) for r in log.records]

        assert run() == run()

    def test_no_wall_times_without_clock(self):
        with recording() as log:
            with span("a"):
                pass
        (record,) = log.records
        assert record.start_wall is None and record.end_wall is None
        assert log.wall_of("a") is None

    def test_wall_of_with_clock(self):
        ticks = iter([1.0, 3.5])
        log = SpanLog(clock=lambda: next(ticks))
        with recording(log):
            with span("a"):
                pass
        assert log.wall_of("a") == pytest.approx(2.5)

    def test_multiple_collectors_both_record(self):
        log_a, log_b = SpanLog(), SpanLog()
        with recording(log_a), recording(log_b):
            with span("x"):
                pass
        assert log_a.names == ["x"] == log_b.names

    def test_collector_uninstalled_after_block(self):
        with recording() as log:
            pass
        with span("after"):
            pass
        assert log.records == []
