"""Wire replay: turn a metered execution into Party state machines.

The big protocol π_ba (Fig. 3) is implemented in the hybrid model: it
charges every wire message to a :class:`CommunicationMetrics` ledger but
never routes bytes through a network object.  To exercise π_ba's traffic
over a *real* transport (and to check the runtime against the
synchronous simulator on exactly the paper's headline workload), this
module records the ledger's charge stream as a **replay script** and
re-executes it as :class:`~repro.net.party.Party` state machines:

1. run π_ba (or any metered execution) with a :class:`RecordingLedger`
   — the protocol computes its outputs exactly as before, while every
   ``record_message`` / ``charge_functionality`` call is also appended
   to a script, segmented into replay rounds;
2. build one :class:`ReplayParty` per party; its round-``k`` step emits
   precisely the wire messages the original execution sent in segment
   ``k`` (as zero-filled payloads of the exact charged size);
3. run the replay parties over :class:`SynchronousNetwork` **or** the
   async runtime — every frame crosses the chosen substrate and is
   charged to a fresh ledger, which must reproduce the original
   per-party tallies bit-for-bit.

Analytic hybrid charges (``charge_functionality``) are not wire traffic;
the replay applies them verbatim to the target ledger via
:func:`apply_func_ops`, so full-ledger parity (not just wire parity)
holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics
from repro.net.party import Envelope, Party
from repro.obs.flow import flow_tags
from repro.obs.spans import current_phase


@dataclass(frozen=True)
class FuncOp:
    """One recorded ``charge_functionality`` invocation.

    ``phase`` is the obs span that was active at record time; replaying
    re-attaches it as a flow-ledger tag (span attribution itself follows
    whatever spans the replaying context has open, exactly as before).
    """

    participants: Tuple[int, ...]
    bits_per_party: int
    peers_per_party: int
    rounds: int
    peer_pool: Optional[Tuple[int, ...]]
    phase: str = ""

    def apply(self, metrics: CommunicationMetrics) -> None:
        if self.phase:
            with flow_tags(phase=self.phase):
                metrics.charge_functionality(
                    self.participants,
                    self.bits_per_party,
                    self.peers_per_party,
                    rounds=self.rounds,
                    peer_pool=self.peer_pool,
                )
            return
        metrics.charge_functionality(
            self.participants,
            self.bits_per_party,
            self.peers_per_party,
            rounds=self.rounds,
            peer_pool=self.peer_pool,
        )


@dataclass
class ReplaySegment:
    """One replay round: per-sender wire sends plus attached hybrid ops.

    ``tags`` is a parallel structure to ``sends``: ``tags[sender][i]``
    is the obs phase active when ``sends[sender][i]`` was recorded (an
    empty string when no span was open).  It is optional — scripts built
    by hand (tests) may omit it, and replay then leaves flow attribution
    to the replaying context.
    """

    sends: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    funcs: List[FuncOp] = field(default_factory=list)
    tags: Dict[int, List[str]] = field(default_factory=dict)

    @property
    def num_messages(self) -> int:
        return sum(len(v) for v in self.sends.values())


@dataclass
class ReplayScript:
    """The full recorded charge stream of one execution."""

    segments: List[ReplaySegment]

    @property
    def num_messages(self) -> int:
        return sum(segment.num_messages for segment in self.segments)

    @property
    def num_rounds(self) -> int:
        return len(self.segments)

    def party_ids(self) -> List[int]:
        """Every party that appears as sender, recipient, or participant."""
        ids = set()
        for segment in self.segments:
            for sender, sends in segment.sends.items():
                ids.add(sender)
                ids.update(recipient for recipient, _ in sends)
            for func in segment.funcs:
                ids.update(func.participants)
                if func.peer_pool is not None:
                    ids.update(func.peer_pool)
        return sorted(ids)


class RecordingLedger(CommunicationMetrics):
    """A metrics ledger that additionally records a replay script.

    Charging behaviour is *identical* to the base ledger (the recorded
    execution's snapshot is unchanged); recording is a pure side channel.
    Segmentation: wire messages accumulate into the current segment; a
    ``charge_functionality`` call (the protocols' natural phase marks)
    or an explicit ``end_round`` closes a segment that already holds
    wire traffic.
    """

    def __init__(self) -> None:
        super().__init__()
        self._segments: List[ReplaySegment] = []
        self._current = ReplaySegment()

    def record_message(self, sender: int, recipient: int, num_bits: int) -> None:
        super().record_message(sender, recipient, num_bits)
        self._current.sends.setdefault(sender, []).append(
            (recipient, num_bits)
        )
        self._current.tags.setdefault(sender, []).append(
            current_phase() or ""
        )

    def charge_functionality(
        self,
        participants,
        bits_per_party: int,
        peers_per_party: int,
        rounds: int = 1,
        peer_pool=None,
    ) -> None:
        participants = list(participants)
        pool = list(peer_pool) if peer_pool is not None else None
        super().charge_functionality(
            participants, bits_per_party, peers_per_party,
            rounds=rounds, peer_pool=pool,
        )
        if self._current.sends:
            self._segments.append(self._current)
            self._current = ReplaySegment()
        self._current.funcs.append(
            FuncOp(
                participants=tuple(participants),
                bits_per_party=bits_per_party,
                peers_per_party=peers_per_party,
                rounds=rounds,
                peer_pool=tuple(pool) if pool is not None else None,
                phase=current_phase() or "",
            )
        )

    def end_round(self) -> None:
        super().end_round()
        if self._current.sends or self._current.funcs:
            self._segments.append(self._current)
            self._current = ReplaySegment()

    def script(self) -> ReplayScript:
        """The script recorded so far (current partial segment included)."""
        segments = list(self._segments)
        if self._current.sends or self._current.funcs:
            segments.append(self._current)
        return ReplayScript(segments=segments)


@dataclass(frozen=True)
class SizedEnvelope(Envelope):
    """An envelope charged at an exact recorded bit count.

    The payload is zero-filled filler of ``ceil(bits / 8)`` bytes; the
    ledger charge is the recorded ``bits`` (which for π_ba's wire
    messages is always a byte multiple, so filler and charge agree).
    ``phase`` carries the obs span recorded at charge time so
    flow-ledger attribution survives the replay (transports read it
    with ``getattr``; plain envelopes simply have none).
    """

    bits: int = 0
    phase: str = ""

    def size_bits(self) -> int:
        return self.bits


class ReplayParty(Party):
    """Replays one party's recorded send schedule, round by round."""

    def __init__(
        self,
        party_id: int,
        per_round_sends: Sequence[Sequence[Tuple[int, int]]],
        total_rounds: int,
        per_round_tags: Optional[Sequence[Sequence[str]]] = None,
    ) -> None:
        super().__init__(party_id)
        if len(per_round_sends) > total_rounds:
            raise NetworkError("send schedule longer than the replay run")
        self._sends = [list(round_sends) for round_sends in per_round_sends]
        self._tags = (
            [list(round_tags) for round_tags in per_round_tags]
            if per_round_tags is not None else None
        )
        self._total_rounds = total_rounds
        self.received_bits = 0

    def _tag(self, round_index: int, send_index: int) -> str:
        if self._tags is None or round_index >= len(self._tags):
            return ""
        round_tags = self._tags[round_index]
        return round_tags[send_index] if send_index < len(round_tags) else ""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        self.received_bits += sum(e.size_bits() for e in inbox)
        if round_index >= self._total_rounds:
            return self.halt(self.received_bits)
        if round_index >= len(self._sends):
            return []
        return [
            SizedEnvelope(
                sender=self.party_id,
                recipient=recipient,
                payload=bytes((bits + 7) // 8),
                bits=bits,
                phase=self._tag(round_index, index),
            )
            for index, (recipient, bits) in enumerate(
                self._sends[round_index]
            )
        ]


def build_replay_parties(script: ReplayScript, n: int) -> List[ReplayParty]:
    """One :class:`ReplayParty` per party id in ``range(n)``.

    Round ``k`` of the replay corresponds to script segment ``k``; all
    parties halt at round ``num_rounds`` (after the last deliveries).
    """
    total = script.num_rounds
    per_party: Dict[int, List[List[Tuple[int, int]]]] = {
        party: [[] for _ in range(total)] for party in range(n)
    }
    per_party_tags: Dict[int, List[List[str]]] = {
        party: [[] for _ in range(total)] for party in range(n)
    }
    for index, segment in enumerate(script.segments):
        for sender, sends in segment.sends.items():
            if sender not in per_party:
                raise NetworkError(
                    f"script references party {sender} outside range({n})"
                )
            per_party[sender][index] = list(sends)
            per_party_tags[sender][index] = list(
                segment.tags.get(sender, [])
            )
    return [
        ReplayParty(party, per_party[party], total, per_party_tags[party])
        for party in range(n)
    ]


def apply_func_ops(
    script: ReplayScript, metrics: CommunicationMetrics
) -> int:
    """Apply every recorded hybrid charge to a ledger; returns the count."""
    count = 0
    for segment in script.segments:
        for func in segment.funcs:
            func.apply(metrics)
            count += 1
    return count


def replay_over_simulator(
    script: ReplayScript,
    n: int,
    metrics: Optional[CommunicationMetrics] = None,
) -> CommunicationMetrics:
    """Re-run the script's wire traffic over :class:`SynchronousNetwork`
    and apply its hybrid charges; returns the freshly charged ledger."""
    from repro.net.simulator import SynchronousNetwork

    metrics = metrics if metrics is not None else CommunicationMetrics()
    parties = build_replay_parties(script, n)
    network = SynchronousNetwork(parties, metrics=metrics)
    network.run(max_rounds=script.num_rounds + 2)
    apply_func_ops(script, metrics)
    return metrics


def tallies_equal(
    a: CommunicationMetrics,
    b: CommunicationMetrics,
    party_ids: Iterable[int],
) -> bool:
    """Whether two ledgers agree on every per-party counter.

    (Round *counts* may differ — a replay imposes its own round
    segmentation — but bits, message counts, and localities must not.)
    """
    for party in party_ids:
        ta, tb = a.tally_of(party), b.tally_of(party)
        if (
            ta.bits_sent,
            ta.bits_received,
            ta.messages_sent,
            ta.messages_received,
            ta.peers_sent_to,
            ta.peers_received_from,
        ) != (
            tb.bits_sent,
            tb.bits_received,
            tb.messages_sent,
            tb.messages_received,
            tb.peers_sent_to,
            tb.peers_received_from,
        ):
            return False
    return True
