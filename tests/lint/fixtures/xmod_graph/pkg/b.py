"""Graph fixture: the other half of the import cycle."""

import xmod_graph.pkg.a as a_mod


def helper(x):
    return x * 2


def beta(x):
    return a_mod.alpha(x)
