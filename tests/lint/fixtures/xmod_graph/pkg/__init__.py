"""Synthetic package for the call-graph golden and cache tests."""
