"""The multi-signature certificate scheme (BGT'13-style baseline).

§1.2: "while multi-signatures can succinctly combine signatures of many
parties, to verify the signature the (length-Theta(n)!) vector of
contributing-parties identities must also be communicated ... This is
precisely the culprit for the large Theta(n) per-party communication
within the low-locality protocol of [13]."

This module makes that sentence executable: :class:`MultisigScheme`
implements the *same* SRDS interface, so the identical pi_ba pipeline can
run with it — but every aggregated signature carries the n-bit signer
bitmap, so certificate size (and thus per-party communication in steps
5-7) is Theta(n).  The Table-1 rows for the Theta(n) boost protocols are
measured by running pi_ba over this scheme.

The combined tag is an XOR-homomorphic MAC over the per-party tags (a
simulated multi-signature with realistic 32-byte combined-tag size —
like BLS multisignatures — verified through the key registry, same
designated-verifier substitution as :class:`HashRegistryBase`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.prf import prf
from repro.errors import ConfigurationError, SignatureError
from repro.pki.registry import PKIMode
from repro.srds.base import (
    PublicParameters,
    SRDSScheme,
    SRDSSignature,
    ensure_same_message_space,
)
from repro.utils.serialization import encode_bytes, encode_uint


def _xor_bytes(left: bytes, right: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(left, right))


@dataclass(frozen=True)
class MultisigSignature(SRDSSignature):
    """A (multi-)signature: 32-byte combined tag + n-bit signer bitmap.

    The bitmap is the Theta(n) payload the paper's analysis targets.
    """

    tag: bytes
    signer_bits: bytes  # n-bit bitmap, one bit per virtual party
    num_parties: int

    @property
    def signers(self) -> List[int]:
        """Decoded list of contributing signer indices."""
        result = []
        for index in range(self.num_parties):
            if self.signer_bits[index // 8] & (1 << (index % 8)):
                result.append(index)
        return result

    @property
    def min_index(self) -> int:
        signers = self.signers
        if not signers:
            raise SignatureError("empty multisig has no index range")
        return signers[0]

    @property
    def max_index(self) -> int:
        signers = self.signers
        if not signers:
            raise SignatureError("empty multisig has no index range")
        return signers[-1]

    def encode(self) -> bytes:
        return (
            encode_uint(self.num_parties)
            + encode_bytes(self.tag)
            + encode_bytes(self.signer_bits)
        )


def _bitmap_for(indices: Sequence[int], num_parties: int) -> bytes:
    bitmap = bytearray((num_parties + 7) // 8)
    for index in indices:
        bitmap[index // 8] |= 1 << (index % 8)
    return bytes(bitmap)


class MultisigScheme(SRDSScheme):
    """Multi-signatures exposed through the SRDS interface.

    Satisfies robustness and unforgeability, but **not** succinctness:
    signature size is Theta(n).  pi_ba run over this scheme reproduces
    the Theta(n)-per-party baseline row of Table 1.
    """

    name = "multisig-bitmap (BGT'13 baseline)"
    pki_mode = PKIMode.TRUSTED
    assumptions = "owf (multisig)"
    needs_crs = False

    def __init__(self) -> None:
        self._registry: Dict[int, bytes] = {}

    def setup(self, num_parties: int, rng) -> PublicParameters:
        if num_parties < 2:
            raise ConfigurationError("need at least 2 parties")
        self._keygen_counter = 0
        return PublicParameters(
            num_parties=num_parties,
            security_bits=256,
            acceptance_threshold=num_parties // 2 + 1,
            extra={},
        )

    def keygen(self, pp: PublicParameters, rng) -> Tuple[bytes, object]:
        secret = rng.random_bytes(32)
        index = self._keygen_counter
        self._keygen_counter += 1
        self._registry[index] = secret
        verification_key = prf(secret, "multisig/vk")
        return verification_key, (index, secret)

    def sign(
        self,
        pp: PublicParameters,
        index: int,
        signing_key: object,
        message: bytes,
    ) -> Optional[MultisigSignature]:
        message = ensure_same_message_space(message)
        if signing_key is None:
            return None
        _, secret = signing_key
        tag = prf(secret, "multisig/tag", encode_uint(index), message)
        return MultisigSignature(
            tag=tag,
            signer_bits=_bitmap_for([index], pp.num_parties),
            num_parties=pp.num_parties,
        )

    def _tag_for(self, index: int, message: bytes) -> Optional[bytes]:
        secret = self._registry.get(index)
        if secret is None:
            return None
        return prf(secret, "multisig/tag", encode_uint(index), message)

    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[SRDSSignature]:
        """Keep signatures whose combined tag matches their bitmap."""
        message = ensure_same_message_space(message)
        valid: List[SRDSSignature] = []
        seen = set()
        for signature in signatures:
            if not isinstance(signature, MultisigSignature):
                continue
            if signature.encode() in seen:
                continue
            seen.add(signature.encode())
            if self._verify_tag(signature, message):
                valid.append(signature)
        return valid

    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[SRDSSignature],
    ) -> Optional[MultisigSignature]:
        """XOR-combine tags; OR-combine bitmaps (dedup by signer)."""
        signer_tags: Dict[int, None] = {}
        combined_signers: List[int] = []
        tag = bytes(32)
        for signature in filtered:
            if not isinstance(signature, MultisigSignature):
                continue
            for signer in signature.signers:
                if signer in signer_tags:
                    continue
                signer_tags[signer] = None
                combined_signers.append(signer)
                signer_tag = self._tag_for(signer, message)
                if signer_tag is None:
                    continue
                tag = _xor_bytes(tag, signer_tag)
        if not combined_signers:
            return None
        return MultisigSignature(
            tag=tag,
            signer_bits=_bitmap_for(combined_signers, pp.num_parties),
            num_parties=pp.num_parties,
        )

    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        message = ensure_same_message_space(message)
        if not isinstance(signature, MultisigSignature):
            return False
        if not self._verify_tag(signature, message):
            return False
        return len(signature.signers) >= pp.acceptance_threshold

    def _verify_tag(self, signature: MultisigSignature, message: bytes) -> bool:
        expected = bytes(32)
        for signer in signature.signers:
            signer_tag = self._tag_for(signer, message)
            if signer_tag is None:
                return False
            expected = _xor_bytes(expected, signer_tag)
        return expected == signature.tag
