"""Tests for XMSS-style Merkle many-time signatures."""

import pytest

from repro.crypto import merkle_sig
from repro.errors import ConfigurationError, SignatureError
from repro.srds.ots import LamportOts, WinternitzOts


@pytest.fixture(scope="module")
def signer():
    return merkle_sig.MerkleSigner(b"merkle-seed", height=3)


class TestSignVerify:
    def test_valid(self, signer):
        signature = signer.sign(b"message-a")
        assert merkle_sig.verify(signer.public_key, b"message-a", signature)

    def test_wrong_message_rejected(self, signer):
        signature = signer.sign(b"message-b")
        assert not merkle_sig.verify(signer.public_key, b"other", signature)

    def test_wrong_root_rejected(self, signer):
        signature = signer.sign(b"message-c")
        assert not merkle_sig.verify(bytes(32), b"message-c", signature)

    def test_many_messages_distinct_leaves(self):
        signer = merkle_sig.MerkleSigner(b"multi-seed", height=3)
        leaves = set()
        for index in range(signer.capacity):
            signature = signer.sign(b"msg-%d" % index)
            assert merkle_sig.verify(
                signer.public_key, b"msg-%d" % index, signature
            )
            leaves.add(signature.leaf_index)
        assert len(leaves) == signer.capacity

    def test_swapped_ots_key_rejected(self, signer):
        sig_a = signer.sign(b"swap-a")
        sig_b = signer.sign(b"swap-b")
        franken = merkle_sig.MerkleSignature(
            leaf_index=sig_a.leaf_index,
            ots_verification_key=sig_b.ots_verification_key,
            ots_signature=sig_a.ots_signature,
            proof=sig_a.proof,
        )
        assert not merkle_sig.verify(signer.public_key, b"swap-a", franken)


class TestStatefulness:
    def test_leaf_reuse_refused(self):
        signer = merkle_sig.MerkleSigner(b"reuse-seed", height=2)
        signer.sign(b"first", leaf_index=1)
        with pytest.raises(SignatureError):
            signer.sign(b"second", leaf_index=1)

    def test_capacity_exhaustion(self):
        signer = merkle_sig.MerkleSigner(b"exhaust-seed", height=1)
        signer.sign(b"one")
        signer.sign(b"two")
        assert signer.remaining == 0
        with pytest.raises(SignatureError):
            signer.sign(b"three")

    def test_out_of_range_leaf_rejected(self):
        signer = merkle_sig.MerkleSigner(b"range-seed", height=2)
        with pytest.raises(SignatureError):
            signer.sign(b"x", leaf_index=4)


class TestConfiguration:
    def test_bad_height_rejected(self):
        with pytest.raises(ConfigurationError):
            merkle_sig.MerkleSigner(b"s", height=0)
        with pytest.raises(ConfigurationError):
            merkle_sig.MerkleSigner(b"s", height=17)

    def test_public_key_is_32_bytes(self, signer):
        assert len(signer.public_key) == 32

    def test_custom_ots(self):
        ots = LamportOts(message_bits=32)
        signer = merkle_sig.MerkleSigner(b"lamport-seed", height=2, ots=ots)
        signature = signer.sign(b"custom")
        assert merkle_sig.verify(
            signer.public_key, b"custom", signature, ots=ots
        )
        # Mismatched OTS at verification fails.
        assert not merkle_sig.verify(
            signer.public_key, b"custom", signature,
            ots=WinternitzOts(message_bits=32, w=4),
        )


class TestEncoding:
    def test_roundtrip(self, signer):
        signature = signer.sign(b"encode-me")
        decoded = merkle_sig.MerkleSignature.decode(signature.encode())
        assert merkle_sig.verify(signer.public_key, b"encode-me", decoded)

    def test_trailing_bytes_rejected(self, signer):
        signature = signer.sign(b"trailing")
        with pytest.raises(SignatureError):
            merkle_sig.MerkleSignature.decode(signature.encode() + b"x")
