"""ACC001 negative fixture: the sanctioned seams."""


def broadcast(party, members, payload: bytes):
    # Party.send builds an Envelope the simulator charges.
    return [party.send(peer, payload) for peer in members]


def hybrid_charge(metrics, committee, bits: int) -> None:
    metrics.charge_functionality(committee, bits, peers_per_party=2)


def direct_charge(metrics, sender: int, recipient: int, bits: int) -> None:
    metrics.record_message(sender, recipient, bits)


def persist(report_file, text: str) -> None:
    report_file.write(text)  # receiver name is not transport-like
