"""Latency models: determinism, bounds, and the pinned random-delay parity.

The load-bearing test here is the *pin*: the campaign's ``random-delay``
schedule was promoted from ad-hoc ``random_delay_*`` knobs on
:class:`~repro.runtime.faults.FaultPlan` to a first-class
:class:`~repro.net.latency.RandomDelayLatency` model shared with the
asynchronous scheduler.  That promotion must move **no delivery**: the
model reproduces the legacy draw sequence exactly (same fork labels,
same bernoulli-then-range order), so every historical campaign repro
line replays identically.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.net.latency import (
    LATENCY_MODEL_NAMES,
    FixedLatency,
    LogNormalLatency,
    PartitionHealLatency,
    RandomDelayLatency,
    UniformLatency,
    halves_partition_heal,
    latency_model_by_name,
)
from repro.runtime.faults import FaultPlan, adversarial_schedule
from repro.utils.randomness import Randomness

coords = st.tuples(
    st.integers(min_value=0, max_value=50),  # sent_round
    st.integers(min_value=0, max_value=63),  # sender
    st.integers(min_value=0, max_value=63),  # recipient
    st.integers(min_value=0, max_value=1000),  # seq
)


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_every_listed_name_constructs(self):
        for name in LATENCY_MODEL_NAMES:
            model = latency_model_by_name(name, 16)
            assert model.name == name
            assert model.bound >= 0

    def test_unknown_name_is_loud(self):
        with pytest.raises(ConfigurationError):
            latency_model_by_name("carrier-pigeon", 16)

    def test_models_that_draw_demand_an_rng(self):
        for model in (
            UniformLatency(0, 2),
            LogNormalLatency(),
            RandomDelayLatency(probability=0.5, max_rounds=2),
        ):
            assert model.needs_rng
            with pytest.raises(ConfigurationError):
                model.extra_rounds(None, 0, 0, 1, 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FixedLatency(rounds=-1)
        with pytest.raises(ConfigurationError):
            UniformLatency(low=3, high=1)
        with pytest.raises(ConfigurationError):
            LogNormalLatency(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            RandomDelayLatency(probability=1.5, max_rounds=2)
        with pytest.raises(ConfigurationError):
            RandomDelayLatency(probability=0.5, max_rounds=0)
        with pytest.raises(ConfigurationError):
            PartitionHealLatency(
                group_a=frozenset({0, 1}),
                group_b=frozenset({1, 2}),
                heal_round=3,
            )


# -- per-model properties ----------------------------------------------------


class TestModelProperties:
    @given(coord=coords, rounds=st.integers(min_value=0, max_value=5))
    def test_fixed_is_constant_and_rng_free(self, coord, rounds):
        model = FixedLatency(rounds)
        assert model.extra_rounds(None, *coord) == rounds
        assert model.delivery_delay(None, *coord) == 1.0 + rounds
        assert model.bound == rounds

    @given(coord=coords, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_uniform_bounds_and_determinism(self, coord, seed):
        model = UniformLatency(low=0, high=2)
        first = model.extra_rounds(Randomness(seed), *coord)
        again = model.extra_rounds(Randomness(seed), *coord)
        assert first == again
        assert 0 <= first <= model.bound == 2
        delay = model.delivery_delay(Randomness(seed), *coord)
        assert delay == model.delivery_delay(Randomness(seed), *coord)
        assert 1.0 <= delay <= 3.0

    @given(coord=coords, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_lognormal_capped_and_deterministic(self, coord, seed):
        model = LogNormalLatency(cap=3)
        first = model.extra_rounds(Randomness(seed), *coord)
        assert first == model.extra_rounds(Randomness(seed), *coord)
        assert 0 <= first <= model.bound == 3
        assert 1.0 <= model.delivery_delay(Randomness(seed), *coord) <= 4.0

    def test_partition_heal_holds_cross_cut_until_heal(self):
        model = halves_partition_heal(range(8), heal_round=4)
        # Same-side traffic is never delayed.
        assert model.extra_rounds(None, 0, 0, 1, 0) == 0
        assert model.extra_rounds(None, 0, 5, 6, 0) == 0
        # Cross-cut sends before the heal land exactly at the heal round.
        for sent_round in range(4):
            extra = model.extra_rounds(None, sent_round, 0, 7, 0)
            assert sent_round + 1 + extra == 4
        # After the heal, the link behaves normally.
        assert model.extra_rounds(None, 5, 0, 7, 0) == 0
        assert model.bound == 4

    @given(coord=coords, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_delay_respects_max(self, coord, seed):
        model = RandomDelayLatency(probability=0.5, max_rounds=2)
        extra = model.extra_rounds(Randomness(seed), *coord)
        assert 0 <= extra <= model.bound == 2

    def test_random_delay_probability_zero_draws_nothing(self):
        model = RandomDelayLatency(probability=0.0, max_rounds=0)
        assert model.extra_rounds(None, 0, 0, 1, 0) == 0
        assert model.bound == 0


# -- the pin: RandomDelayLatency == the legacy knobs -------------------------


def _legacy_plan(rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng,
        reorder=True,
        duplicate_probability=0.0,
        random_delay_probability=0.15,
        random_delay_max=2,
    )


def _model_plan(rng: Randomness) -> FaultPlan:
    return FaultPlan(
        reorder=True,
        latency=RandomDelayLatency(probability=0.15, max_rounds=2),
        rng=rng,
    )


class TestRandomDelayParity:
    def test_delay_draws_are_byte_identical(self):
        legacy = _legacy_plan(Randomness(7).fork("x"))
        model = _model_plan(Randomness(7).fork("x"))
        assert legacy.max_extra_rounds == model.max_extra_rounds == 2
        delayed = 0
        for sent_round in range(6):
            for sender in range(16):
                for recipient in range(16):
                    for seq in range(3):
                        a = legacy.delay_of(sent_round, sender, recipient, seq)
                        b = model.delay_of(sent_round, sender, recipient, seq)
                        assert a == b
                        delayed += a > 0
        assert delayed > 0  # the 15% arm actually fires

    def test_inbox_orders_are_byte_identical(self):
        legacy = _legacy_plan(Randomness(7).fork("x"))
        model = _model_plan(Randomness(7).fork("x"))
        for round_index in range(6):
            for recipient in range(16):
                inbox = list(range(40))
                assert legacy.inbox_order(
                    round_index, recipient, list(inbox)
                ) == model.inbox_order(round_index, recipient, list(inbox))

    def test_campaign_schedule_is_the_model_form(self):
        """``random-delay`` builds the model-backed plan with the same
        ``sched`` fork the knob form used — the whole schedule is pinned."""
        from repro.campaign.schedules import schedule_by_name

        plan = CorruptionPlan(corrupted=frozenset(), n=16)
        built = schedule_by_name("random-delay").build(
            16, plan, Randomness(7).fork("cell")
        )
        assert built is not None
        assert isinstance(built.latency, RandomDelayLatency)
        assert built.reorder
        legacy = _legacy_plan(Randomness(7).fork("cell").fork("sched"))
        for sent_round in range(4):
            for sender in range(16):
                for recipient in range(16):
                    assert built.delay_of(
                        sent_round, sender, recipient, 0
                    ) == legacy.delay_of(sent_round, sender, recipient, 0)
