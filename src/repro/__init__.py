"""repro — a reproduction of Boyle, Cohen & Goel (PODC 2021):
"Breaking the O(sqrt(n))-Bit Barrier: Byzantine Agreement with Polylog
Bits Per Party".

Public API tour:

* :class:`repro.params.ProtocolParameters` — every tunable in one place.
* :mod:`repro.srds` — the paper's core primitive (SRDS) and its two
  constructions (:class:`~repro.srds.owf.OwfSRDS`,
  :class:`~repro.srds.snark_based.SnarkSRDS`), plus the Fig. 1/2 security
  experiments in :mod:`repro.srds.experiments`.
* :func:`repro.protocols.balanced_ba.run_balanced_ba` — the headline
  pi_ba protocol (Fig. 3) with full per-party communication accounting.
* :class:`repro.protocols.broadcast.BroadcastService` — the amortized
  broadcast corollary (Corollary 1.2(1)).
* :mod:`repro.protocols.baselines` — the Table-1 comparison protocols.
* :mod:`repro.lowerbounds` — executable companions to Thms 1.3/1.4.
* :mod:`repro.aetree`, :mod:`repro.net`, :mod:`repro.crypto`,
  :mod:`repro.fields`, :mod:`repro.pki` — the substrates, all built from
  scratch.

Quickstart::

    from repro import quick_ba

    result = quick_ba(n=64, input_bit=1, seed=7)
    assert result.agreement and result.validity

The re-exports below resolve lazily (PEP 562): ``import repro`` pulls in
no protocol or crypto modules, so worker processes — which import
``repro.cluster.worker`` through this package on every spawn — pay only
for what they touch.
"""

from typing import TYPE_CHECKING, List

__version__ = "1.0.0"

#: Lazily re-exported name -> defining module.
_EXPORTS = {
    "AdversaryBehavior": "repro.protocols.balanced_ba",
    "BAResult": "repro.protocols.balanced_ba",
    "BalancedBA": "repro.protocols.balanced_ba",
    "DEFAULT_PARAMETERS": "repro.params",
    "OwfSRDS": "repro.srds.owf",
    "ProtocolParameters": "repro.params",
    "SnarkSRDS": "repro.srds.snark_based",
    "run_balanced_ba": "repro.protocols.balanced_ba",
}

__all__ = sorted(_EXPORTS) + ["quick_ba"]

if TYPE_CHECKING:  # static importers see the eager names
    from repro.params import DEFAULT_PARAMETERS, ProtocolParameters
    from repro.protocols.balanced_ba import (
        AdversaryBehavior,
        BalancedBA,
        BAResult,
        run_balanced_ba,
    )
    from repro.srds.owf import OwfSRDS
    from repro.srds.snark_based import SnarkSRDS


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))


def quick_ba(n: int = 64, input_bit: int = 1, seed: int = 0,
             corrupt_fraction: float = None):
    """Run one pi_ba execution with sensible defaults (see README).

    Uses the SNARK-based SRDS with the fast simulated base-signature
    scheme; all honest parties hold ``input_bit``; corruption is a random
    set at the parameter default (or ``corrupt_fraction``).
    """
    from repro.net.adversary import random_corruption
    from repro.params import DEFAULT_PARAMETERS, ProtocolParameters
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.snark_based import SnarkSRDS
    from repro.utils.randomness import Randomness

    params = (
        ProtocolParameters(corruption_ratio=corrupt_fraction)
        if corrupt_fraction is not None
        else DEFAULT_PARAMETERS
    )
    rng = Randomness(seed)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("corrupt"))
    inputs = {i: input_bit for i in range(n)}
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    return run_balanced_ba(inputs, plan, scheme, params, rng.fork("run"))
