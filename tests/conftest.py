"""Shared fixtures and Hypothesis profiles for the test suite."""

import os

import pytest

from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

try:  # Hypothesis is an optional test dependency.
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "dev",
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - property tests skip themselves
    pass


@pytest.fixture
def rng():
    """A deterministic randomness source, fresh per test."""
    return Randomness(12345)


@pytest.fixture
def params():
    """Default protocol parameters."""
    return ProtocolParameters()


@pytest.fixture
def fast_params():
    """Parameters shrunk for fast protocol tests."""
    return ProtocolParameters(
        security_bits=64,
        committee_factor=3,
        leaf_factor=3,
        virtual_factor=1,
        tree_arity_factor=1,
        corruption_ratio=1 / 8,
        fanout_factor=2,
    )
