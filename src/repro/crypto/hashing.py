"""Collision-resistant hashing (CRH) substrate.

The paper's SNARK-based SRDS construction relies on a CRH to chain
transcript commitments so the same base signature cannot be aggregated
twice (§2.2).  We instantiate the CRH with SHA-256 and provide a small
domain-separation discipline: every use site tags its input with a
distinct ASCII label, so hashes from different contexts can never be
confused for one another.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.utils.serialization import canonical_tuple, encode_str

DIGEST_BYTES = 32


def hash_bytes(data: bytes) -> bytes:
    """Plain SHA-256 of a byte string."""
    return hashlib.sha256(data).digest()


def hash_domain(domain: str, *fields: bytes) -> bytes:
    """Domain-separated hash of a tuple of byte strings.

    The encoding is injective (length-prefixed fields), so two different
    tuples under the same domain never collide, and two different domains
    never produce confusable preimages.
    """
    return hash_bytes(canonical_tuple(encode_str(domain), *fields))


def hash_to_int(domain: str, *fields: bytes) -> int:
    """Domain-separated hash interpreted as a 256-bit integer."""
    return int.from_bytes(hash_domain(domain, *fields), "big")


def hash_chain(domain: str, digests: Iterable[bytes]) -> bytes:
    """Fold a sequence of digests into one running commitment.

    Used by the SNARK-based SRDS to commit to the *ordered* multiset of
    base signatures aggregated so far: the chained structure means an
    adversary cannot re-order or replay contributions without finding a
    collision.
    """
    accumulator = hash_domain(domain, b"chain-init")
    for digest in digests:
        accumulator = hash_domain(domain, accumulator, digest)
    return accumulator


def truncated_hash(domain: str, width_bytes: int, *fields: bytes) -> bytes:
    """A hash truncated to ``width_bytes`` (for sized commitments).

    Truncation below 16 bytes is refused: the library never trades
    collision resistance for space anywhere the adversary has influence.
    """
    if width_bytes < 16:
        raise ValueError("refusing to truncate a CRH below 128 bits")
    if width_bytes >= DIGEST_BYTES:
        return hash_domain(domain, *fields)
    return hash_domain(domain, *fields)[:width_bytes]
