"""Cluster flow + trace propagation: parity, determinism, merged view.

These spawn real worker OS processes, so they carry the ``cluster``
marker (CI's dedicated job runs them; tier-1 skips them).
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.drivers import make_scheme, run_balanced_ba_cluster
from repro.cluster.supervisor import ClusterConfig, worker_pseudo_id
from repro.net.adversary import random_corruption
from repro.obs.flow import INFRA, FlowLedger
from repro.obs.merge import cluster_tracks, dump_span_dir, export_merged_trace
from repro.obs.timeline import validate_trace_events
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

pytestmark = pytest.mark.cluster

N = 8
WORKERS = 2


def _run(flow=None, trace_id=""):
    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    inputs = {i: i % 2 for i in range(N)}
    config = ClusterConfig(
        num_workers=WORKERS, flow=flow, trace_id=trace_id
    )
    return run_balanced_ba_cluster(
        inputs, plan, make_scheme("snark"), params, rng.fork("run"),
        config=config,
    )


class TestFlowThroughCluster:
    def test_parity_coverage_and_control_plane(self, tmp_path):
        flow = FlowLedger(spill_path=tmp_path / "spill.jsonl")
        ba_result, cluster_result = _run(flow=flow)
        assert ba_result.agreement
        # Exact parity: flow side counters == supervisor ledger tallies.
        assert flow.verify_against(cluster_result.metrics) == []
        # Every data-plane bit carries a real phase (the workers ship
        # per-frame phases home; hybrid charges replay recorded phases).
        assert flow.coverage() == 1.0
        kinds = flow.by_kind()
        assert "frame" in kinds and "hybrid" in kinds
        # Control traffic is metered on ctl:* kinds, off the data plane.
        ctl = {k for k in kinds if k.startswith("ctl:")}
        assert {"ctl:hello", "ctl:job", "ctl:round", "ctl:done"} <= ctl
        assert flow.control_bits > 0
        # Control endpoints are pseudo ids, never real parties.
        assert INFRA not in flow.party_bits()
        assert worker_pseudo_id(0) not in flow.party_bits()
        flow.close()

    def test_srds_aggregate_dominates(self):
        flow = FlowLedger()
        _run(flow=flow)
        by_phase = flow.by_phase()
        assert max(by_phase, key=by_phase.get) == "srds-aggregate"


class TestTracePropagation:
    def test_trace_id_minted_deterministically_and_echoed(self):
        _, result = _run()
        assert result.trace_id == f"pi-ba-replay-n{N}-w{WORKERS}"
        _, pinned = _run(trace_id="custom-trace")
        assert pinned.trace_id == "custom-trace"

    def test_supervisor_and_worker_tracks(self):
        _, result = _run()
        assert result.supervisor_spans, "supervisor recorded no spans"
        assert set(result.worker_spans) == set(range(WORKERS))
        assert all(result.worker_spans.values())
        names = {r.name for r in result.supervisor_spans}
        assert "supervisor-round" in names
        for records in result.worker_spans.values():
            assert "cluster-round" in {r.name for r in records}
            # Per-track ticks stay monotone across per-round drains.
            ticks = [r.start_tick for r in records]
            assert ticks == sorted(ticks)

    def test_merged_export_byte_identical_across_seeded_runs(self, tmp_path):
        paths = []
        for index in range(2):
            _, result = _run()
            tracks = cluster_tracks(result)
            dump_span_dir(
                tmp_path / f"spans-{index}", result.trace_id, tracks
            )
            paths.append(export_merged_trace(
                tmp_path / f"merged-{index}.json", tracks, result.trace_id
            ))
        assert paths[0].read_bytes() == paths[1].read_bytes()
        document = json.loads(paths[0].read_text())
        validate_trace_events(document["traceEvents"])
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        # Supervisor and each worker land on distinct tracks (pids),
        # all labeled with the one shared trace id.
        assert {e["pid"] for e in slices} == {0, 1, 2}
        assert {e["args"]["trace_id"] for e in slices} == {
            f"pi-ba-replay-n{N}-w{WORKERS}"
        }
