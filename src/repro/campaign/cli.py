"""``python -m repro campaign`` — the campaign operator interface.

Subcommands::

    campaign run [--budget N] [--seed S] [--include-planted]
                 [--results-dir DIR] [--only CONFIG[,CONFIG...]]
        Sweep the first N cells of the strategy x schedule x protocol
        matrix; print one line per run, emit repro specs for failures,
        write BENCH_campaign.json, exit non-zero on *unexpected*
        failures.  ``--only`` restricts the sweep to the named protocol
        configs (e.g. ``--only aba,aba-unanimous`` for the asynchronous
        cells).

    campaign replay <spec...>
        Re-execute one repro-spec line exactly and print its verdict.

    campaign minimize <spec...>
        Greedily shrink a failing spec to a 1-minimal failing instance.

    campaign list
        Show the matrix, the strategy catalog, and the schedules.
"""

from __future__ import annotations

import argparse
from typing import List

from repro.campaign.matrix import default_matrix
from repro.campaign.minimize import minimize_failure
from repro.campaign.runner import RunOutcome, execute_spec, run_campaign
from repro.campaign.schedules import default_schedules
from repro.campaign.spec import format_spec, parse_spec
from repro.campaign.catalog import default_catalog
from repro.errors import ConfigurationError


def _print_outcome(outcome: RunOutcome) -> None:
    verdict = "PASS"
    if outcome.failed:
        verdict = "EXPECTED-FAIL" if outcome.expected_failure else "FAIL"
    print(f"{verdict}  {format_spec(outcome.spec)}")
    for violation in outcome.violations:
        print(f"  violation {violation.name}: {violation.detail}")
    if outcome.error is not None:
        print(f"  loud {outcome.error_type}: {outcome.error}")
    if outcome.measured_bits is not None:
        line = f"  max_bits_per_party={outcome.measured_bits:,}"
        if outcome.budget_bits is not None:
            line += (
                f" budget={outcome.budget_bits:,} "
                f"(ratio {outcome.measured_bits / outcome.budget_bits:.2f})"
            )
        print(line)
    if outcome.failed:
        print(f"  signature: {','.join(outcome.signature)}")


def _cmd_run(args: argparse.Namespace) -> int:
    only = None
    if args.only:
        only = [name for name in args.only.split(",") if name]
        if not only:
            print("error: --only given but no config names parsed")
            return 2
    summary = run_campaign(
        args.budget,
        args.seed,
        include_planted=args.include_planted,
        results_dir=args.results_dir,
        emit=print,
        only=only,
    )
    print(
        f"campaign: {len(summary.outcomes)} runs, {summary.passed} passed, "
        f"{summary.expected_failures} expected failures, "
        f"{len(summary.unexpected_failures)} unexpected failures"
    )
    if summary.bench_path is not None:
        print(f"summary -> {summary.bench_path}")
    if not summary.ok:
        print("unexpected failures (replay with "
              "`python -m repro campaign replay <spec>`):")
        for outcome in summary.unexpected_failures:
            print(f"  {format_spec(outcome.spec)}")
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    spec = parse_spec(" ".join(args.spec))
    outcome = execute_spec(spec)
    _print_outcome(outcome)
    return 1 if outcome.unexpected else 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    spec = parse_spec(" ".join(args.spec))
    result = minimize_failure(spec, emit=print)
    print(f"original : {format_spec(result.original.spec)}")
    print(f"minimized: {format_spec(result.minimized.spec)}")
    print(
        f"signature: {','.join(result.signature)}  "
        f"({result.attempts} attempts, "
        f"removed {len(result.removed_corrupt)} corrupt, "
        f"{len(result.removed_crashes)} crashes)"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    catalog = default_catalog()
    print("protocol configs:")
    for config in default_matrix():
        print(
            f"  {config.name:<22} kind={config.kind:<12} n={config.n:<4} "
            f"schedules={','.join(config.schedules)}"
        )
    print("strategies:")
    for strategy in catalog.strategies:
        planted = "  [PLANTED]" if strategy.expect_violation else ""
        print(
            f"  {strategy.name:<20} kinds={','.join(strategy.kinds)}"
            f"{planted}\n      {strategy.description}"
        )
    print("schedules:")
    for schedule in default_schedules():
        flags = []
        if schedule.needs_runtime:
            flags.append("runtime")
        if schedule.model_breaking:
            flags.append("model-breaking")
        suffix = f"  [{','.join(flags)}]" if flags else ""
        print(f"  {schedule.name:<16} {schedule.description}{suffix}")
    return 0


def cmd_campaign(argv: List[str]) -> int:
    """Entry point used by ``repro.__main__``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="adversarial conformance campaigns",
    )
    sub = parser.add_subparsers(dest="action")

    run_p = sub.add_parser("run", help="sweep the matrix")
    run_p.add_argument("--budget", type=int, default=25,
                       help="number of cells to run (default 25)")
    run_p.add_argument("--seed", type=int, default=0,
                       help="campaign seed (default 0)")
    run_p.add_argument("--include-planted", action="store_true",
                       help="include the planted over-threshold strategies")
    run_p.add_argument("--results-dir", default="benchmarks/results",
                       help="where BENCH_campaign.json lands")
    run_p.add_argument("--only", default=None, metavar="CONFIG[,CONFIG...]",
                       help="restrict the sweep to these protocol configs "
                            "(comma-separated; unknown names are loud)")
    run_p.set_defaults(func=_cmd_run)

    replay_p = sub.add_parser("replay", help="re-execute one repro spec")
    replay_p.add_argument("spec", nargs="+",
                          help="the campaign/1 spec line (may be quoted)")
    replay_p.set_defaults(func=_cmd_replay)

    minimize_p = sub.add_parser("minimize", help="shrink a failing spec")
    minimize_p.add_argument("spec", nargs="+",
                            help="the campaign/1 spec line (may be quoted)")
    minimize_p.set_defaults(func=_cmd_minimize)

    list_p = sub.add_parser("list", help="show matrix/catalog/schedules")
    list_p.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
