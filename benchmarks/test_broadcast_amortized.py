"""E4 — Corollary 1.2(1): ell broadcasts cost ell * Õ(1) per party.

Runs a BroadcastService through a sequence of executions and measures
cumulative max-bits-per-party after each: the marginal cost per
execution must be flat (the tree/PKI setup is paid once), which is the
amortization the corollary claims.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.broadcast import BroadcastService
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 96
NUM_EXECUTIONS = 10


def _run_sequence():
    params = ProtocolParameters()
    rng = Randomness(64)
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    service = BroadcastService(
        N, plan, SnarkSRDS(base_scheme=HashRegistryBase()), params,
        rng.fork("svc"),
    )
    service.setup()
    checkpoints = [service.snapshot().max_bits_per_party]
    senders = plan.honest
    outcomes = []
    for execution in range(NUM_EXECUTIONS):
        outcome = service.broadcast(
            senders[execution % len(senders)], execution % 2
        )
        outcomes.append(outcome)
        checkpoints.append(service.snapshot().max_bits_per_party)
    return checkpoints, outcomes


@pytest.mark.benchmark(group="broadcast")
def test_broadcast_amortization(benchmark, results_dir):
    checkpoints, outcomes = benchmark.pedantic(
        _run_sequence, rounds=1, iterations=1
    )

    marginals = [
        checkpoints[i + 1] - checkpoints[i]
        for i in range(len(checkpoints) - 1)
    ]
    lines = [
        f"E4 — broadcast amortization, n={N}:",
        f"setup cost: {format_bits(checkpoints[0])} max/party",
        f"{'execution':>10} {'marginal max bits/party':>24}",
    ]
    for index, marginal in enumerate(marginals):
        lines.append(f"{index:>10} {format_bits(marginal):>24}")
    mean_marginal = sum(marginals) / len(marginals)
    lines.append(f"mean marginal: {format_bits(mean_marginal)}")
    write_result(results_dir, "broadcast_amortized", "\n".join(lines))

    # Correctness of every execution.
    for outcome in outcomes:
        assert outcome.agreement and outcome.consistent_with_sender
    # Flat amortization: every marginal within 2x of the mean, and the
    # ell-execution total is ~ setup + ell * marginal (not ell * setup).
    for marginal in marginals:
        assert 0 < marginal < 2 * mean_marginal
    total = checkpoints[-1]
    assert total < checkpoints[0] + NUM_EXECUTIONS * 2 * mean_marginal
