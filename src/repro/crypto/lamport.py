"""Lamport one-time signatures with oblivious key generation.

This is the substrate of the paper's OWF-based SRDS (Thm 2.7).  Two
properties matter beyond plain one-time unforgeability:

* **Oblivious key generation** — a verification key can be sampled
  *without* any corresponding signing key, and such keys are
  indistinguishable from honestly generated ones given only the public
  material.  The sortition-based SRDS gives most parties oblivious keys so
  that only a hidden polylog-size subset can sign.
* **Determinism from seeds** — keys expand from short seeds via the PRG,
  so the trusted-PKI dealer ships 32-byte seeds rather than kilobytes of
  hash preimages.

Messages of arbitrary length are first hashed to ``message_bits`` bits;
the scheme signs that digest bit-by-bit in the classic two-row Lamport
layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashing import hash_domain
from repro.crypto.prg import PRG
from repro.errors import KeyError_, SignatureError
from repro.utils.serialization import encode_uint

_SECRET_DOMAIN = "lamport/secret"
_PUBLIC_DOMAIN = "lamport/public"
_MESSAGE_DOMAIN = "lamport/message"
_OBLIVIOUS_DOMAIN = "lamport/oblivious"

DEFAULT_MESSAGE_BITS = 128


def _message_digest_bits(message: bytes, message_bits: int) -> List[int]:
    """Hash a message down to ``message_bits`` bits (list of 0/1)."""
    needed_bytes = (message_bits + 7) // 8
    stream = b""
    counter = 0
    while len(stream) < needed_bytes:
        stream += hash_domain(_MESSAGE_DOMAIN, encode_uint(counter), message)
        counter += 1
    bits: List[int] = []
    for byte in stream[:needed_bytes]:
        for position in range(8):
            bits.append((byte >> (7 - position)) & 1)
            if len(bits) == message_bits:
                return bits
    return bits


@dataclass(frozen=True)
class LamportVerificationKey:
    """A Lamport verification key: two hash values per message bit."""

    message_bits: int
    rows: Tuple[Tuple[bytes, bytes], ...]

    def encode(self) -> bytes:
        """Flat concatenation (fixed width: 64 bytes per message bit)."""
        return b"".join(zero + one for zero, one in self.rows)

    def size_bytes(self) -> int:
        """Wire size of the key."""
        return sum(len(zero) + len(one) for zero, one in self.rows)


@dataclass(frozen=True)
class LamportSigningKey:
    """A Lamport signing key: two secret preimages per message bit."""

    message_bits: int
    rows: Tuple[Tuple[bytes, bytes], ...]


@dataclass(frozen=True)
class LamportSignature:
    """A Lamport signature: one revealed preimage per message bit."""

    preimages: Tuple[bytes, ...]

    def encode(self) -> bytes:
        """Flat concatenation (32 bytes per message bit)."""
        return b"".join(self.preimages)

    def size_bytes(self) -> int:
        """Wire size of the signature."""
        return sum(len(p) for p in self.preimages)


def keygen_from_seed(
    seed: bytes, message_bits: int = DEFAULT_MESSAGE_BITS
) -> Tuple[LamportVerificationKey, LamportSigningKey]:
    """Deterministically expand a seed into a full Lamport key pair."""
    prg = PRG(seed, domain=_SECRET_DOMAIN)
    secret_rows: List[Tuple[bytes, bytes]] = []
    public_rows: List[Tuple[bytes, bytes]] = []
    for bit_index in range(message_bits):
        zero_secret = prg.block(2 * bit_index)
        one_secret = prg.block(2 * bit_index + 1)
        secret_rows.append((zero_secret, one_secret))
        public_rows.append(
            (
                hash_domain(_PUBLIC_DOMAIN, zero_secret),
                hash_domain(_PUBLIC_DOMAIN, one_secret),
            )
        )
    verification_key = LamportVerificationKey(
        message_bits=message_bits, rows=tuple(public_rows)
    )
    signing_key = LamportSigningKey(
        message_bits=message_bits, rows=tuple(secret_rows)
    )
    return verification_key, signing_key


def oblivious_keygen(
    seed: bytes, message_bits: int = DEFAULT_MESSAGE_BITS
) -> LamportVerificationKey:
    """Sample a verification key with *no* corresponding signing key.

    The rows are PRG outputs used directly as "hash values"; since the
    honest rows are hashes of PRG outputs, both distributions are uniform
    256-bit strings to any observer without preimages.  Inverting a row
    back to a usable preimage is exactly inverting the OWF.
    """
    prg = PRG(seed, domain=_OBLIVIOUS_DOMAIN)
    rows = tuple(
        (prg.block(2 * i), prg.block(2 * i + 1)) for i in range(message_bits)
    )
    return LamportVerificationKey(message_bits=message_bits, rows=rows)


def sign(
    signing_key: LamportSigningKey, message: bytes
) -> LamportSignature:
    """Sign a message by revealing one preimage per digest bit."""
    bits = _message_digest_bits(message, signing_key.message_bits)
    preimages = tuple(
        signing_key.rows[index][bit] for index, bit in enumerate(bits)
    )
    return LamportSignature(preimages=preimages)


def verify(
    verification_key: LamportVerificationKey,
    message: bytes,
    signature: LamportSignature,
) -> bool:
    """Verify a signature; returns False on any mismatch."""
    if len(signature.preimages) != verification_key.message_bits:
        return False
    bits = _message_digest_bits(message, verification_key.message_bits)
    for index, bit in enumerate(bits):
        expected = verification_key.rows[index][bit]
        if hash_domain(_PUBLIC_DOMAIN, signature.preimages[index]) != expected:
            return False
    return True


def decode_signature(
    data: bytes, message_bits: int = DEFAULT_MESSAGE_BITS
) -> LamportSignature:
    """Decode a flat signature encoding (32 bytes per bit)."""
    if len(data) != 32 * message_bits:
        raise SignatureError("malformed Lamport signature encoding")
    preimages = tuple(
        data[32 * i: 32 * (i + 1)] for i in range(message_bits)
    )
    return LamportSignature(preimages=preimages)


def decode_verification_key(
    data: bytes, message_bits: int = DEFAULT_MESSAGE_BITS
) -> LamportVerificationKey:
    """Decode a flat verification-key encoding (64 bytes per bit)."""
    if len(data) != 64 * message_bits:
        raise KeyError_("malformed Lamport verification key encoding")
    rows = tuple(
        (data[64 * i: 64 * i + 32], data[64 * i + 32: 64 * (i + 1)])
        for i in range(message_bits)
    )
    return LamportVerificationKey(message_bits=message_bits, rows=rows)
