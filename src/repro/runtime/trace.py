"""Structured per-party execution traces (JSONL).

Every runtime execution can carry a :class:`TraceRecorder`: the
synchronizer and party loops emit one event per observable action —
``send``, ``recv``, ``round-barrier``, ``halt``, ``crash``, ``drop`` —
tagged with the party, round, logical sequence number, and (optionally)
wall-clock time and queue depth.  Events are kept *per party* so that a
concurrent execution still yields a deterministic file per party: within
one party's stream the order is fixed by that party's own program order,
which the round barriers make schedule-independent.

Determinism contract: with ``clock=None`` (the default used by the
differential tests) two executions with the same seed produce
byte-identical JSONL.  Pass ``clock=time.perf_counter`` (or use
:func:`wall_clock_recorder`) to include wall times for profiling; wall
times are obviously not reproducible and are stored under a separate
``wall`` key so consumers can ignore them.

The output is consumable by :mod:`repro.analysis` or any JSONL tool:
one JSON object per line, keys sorted, no whitespace dependence.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

# Event kinds emitted by the runtime.
SEND = "send"
RECV = "recv"
ROUND_BARRIER = "round-barrier"
HALT = "halt"
CRASH = "crash"
DROP = "drop"

KINDS = (SEND, RECV, ROUND_BARRIER, HALT, CRASH, DROP)

# Keys the recorder itself stamps on every event.  Caller-supplied
# ``fields`` must not collide with them: silently overwriting ``seq`` or
# ``round`` would corrupt the determinism fingerprint and every
# downstream consumer (timeline export, analysis) that trusts these
# coordinates.
RESERVED_KEYS = frozenset({"party", "kind", "round", "seq", "wall"})


class TraceRecorder:
    """Collects per-party event streams and serializes them as JSONL."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._events: Dict[int, List[Dict[str, Any]]] = {}
        self._counters: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self, party_id: int, kind: str, round_index: int, **fields: Any
    ) -> None:
        """Append one event to a party's stream.

        Extra ``fields`` (peer, bits, queue_depth, ...) are stored
        verbatim; values must be JSON-serializable.  Fields that collide
        with the reserved envelope keys (:data:`RESERVED_KEYS`) raise
        :class:`ValueError` — historically ``event.update(fields)`` let a
        caller silently clobber ``seq``/``round``/``wall``.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        clashes = RESERVED_KEYS.intersection(fields)
        if clashes:
            raise ValueError(
                "trace fields collide with reserved event keys: "
                + ", ".join(sorted(clashes))
            )
        seq = self._counters.get(party_id, 0)
        self._counters[party_id] = seq + 1
        event: Dict[str, Any] = {
            "party": party_id,
            "kind": kind,
            "round": round_index,
            "seq": seq,
        }
        if self._clock is not None:
            event["wall"] = self._clock()
        event.update(fields)
        self._append(party_id, event)

    def _append(self, party_id: int, event: Dict[str, Any]) -> None:
        """Storage hook: keep the event in memory.  Subclasses (e.g.
        :class:`JsonlTraceWriter`) override this to stream instead."""
        self._events.setdefault(party_id, []).append(event)

    # -- queries ---------------------------------------------------------------

    @property
    def party_ids(self) -> List[int]:
        """Parties with at least one recorded event."""
        return sorted(self._events)

    def events_of(self, party_id: int) -> List[Dict[str, Any]]:
        """One party's events, in program order."""
        return list(self._events.get(party_id, []))

    def count(self, kind: Optional[str] = None) -> int:
        """Total events (optionally of one kind) across all parties."""
        return sum(
            1
            for events in self._events.values()
            for event in events
            if kind is None or event["kind"] == kind
        )

    def max_queue_depth(self) -> int:
        """Largest observed inbox depth at any round barrier."""
        depths = [
            event.get("queue_depth", 0)
            for events in self._events.values()
            for event in events
            if event["kind"] == ROUND_BARRIER
        ]
        return max(depths, default=0)

    # -- serialization --------------------------------------------------------

    def dumps(self, party_id: int) -> str:
        """One party's stream as a JSONL string (stable key order)."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events.get(party_id, [])
        )

    def dump_dir(self, directory: Path) -> List[Path]:
        """Write ``party-<id>.jsonl`` per party; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for party_id in self.party_ids:
            path = directory / f"party-{party_id}.jsonl"
            path.write_text(self.dumps(party_id), encoding="utf-8")
            paths.append(path)
        return paths

    def fingerprint(self) -> str:
        """A digest of the full trace — equal iff the traces are equal.

        Used by determinism tests: two runs with the same seed (and
        ``clock=None``) must produce equal fingerprints.
        """
        import hashlib

        digest = hashlib.sha256()
        for party_id in self.party_ids:
            digest.update(self.dumps(party_id).encode("utf-8"))
        return digest.hexdigest()


def wall_clock_recorder() -> TraceRecorder:
    """A recorder stamping monotonic wall times (non-reproducible)."""
    # lint: allow[DET002] reason=explicit opt-in wall-clock recorder; default traces use logical ticks
    return TraceRecorder(clock=time.perf_counter)


class JsonlTraceWriter(TraceRecorder):
    """A :class:`TraceRecorder` that streams events to disk as they occur.

    The in-memory recorder holds every event until :meth:`dump_dir`; for
    large ``n`` or long executions that is O(messages) memory.  This
    writer keeps memory bounded: each event is serialized and appended to
    ``<directory>/party-<id>.jsonl`` at :meth:`record` time, and only
    O(parties) aggregate state (sequence counters, per-kind counts,
    queue-depth high-water mark) stays resident.

    Byte contract: for the same execution (same seed, ``clock=None``)
    the files written here are *byte-identical* to what the in-memory
    recorder's :meth:`~TraceRecorder.dump_dir` would produce — same JSON
    serialization (sorted keys, compact separators), same per-party
    ordering, one event per line.  The regression test pins this.

    Read-back queries (:meth:`events_of`, :meth:`dumps`,
    :meth:`fingerprint`) re-read the files, so they work after
    :meth:`close` too; prefer the cheap counters (:meth:`count`,
    :meth:`max_queue_depth`) in hot paths.  Usable as a context manager.
    """

    def __init__(
        self,
        directory: Path,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(clock=clock)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._files: Dict[int, Any] = {}
        self._kind_counts: Dict[str, int] = {}
        self._max_queue_depth = 0
        self._closed = False

    # -- storage hook ---------------------------------------------------------

    def _append(self, party_id: int, event: Dict[str, Any]) -> None:
        if self._closed:
            raise ValueError("JsonlTraceWriter is closed")
        handle = self._files.get(party_id)
        if handle is None:
            handle = (self.directory / f"party-{party_id}.jsonl").open(
                "w", encoding="utf-8"
            )
            self._files[party_id] = handle
        handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        )
        kind = event["kind"]
        self._kind_counts[kind] = self._kind_counts.get(kind, 0) + 1
        if kind == ROUND_BARRIER:
            depth = event.get("queue_depth", 0)
            if depth > self._max_queue_depth:
                self._max_queue_depth = depth

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Flush and close all per-party files (idempotent)."""
        for handle in self._files.values():
            handle.close()
        self._closed = True

    def flush(self) -> None:
        """Flush open file buffers without closing."""
        for handle in self._files.values():
            handle.flush()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- queries (streaming-aware overrides) ---------------------------------

    @property
    def party_ids(self) -> List[int]:
        return sorted(self._files)

    def path_of(self, party_id: int) -> Path:
        """The on-disk JSONL path for one party's stream."""
        return self.directory / f"party-{party_id}.jsonl"

    def events_of(self, party_id: int) -> List[Dict[str, Any]]:
        if party_id not in self._files:
            return []
        if not self._closed:
            self.flush()
        return load_jsonl(self.path_of(party_id))

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return sum(self._kind_counts.values())
        return self._kind_counts.get(kind, 0)

    def max_queue_depth(self) -> int:
        return self._max_queue_depth

    def dumps(self, party_id: int) -> str:
        if party_id not in self._files:
            return ""
        if not self._closed:
            self.flush()
        return self.path_of(party_id).read_text(encoding="utf-8")

    def dump_dir(self, directory: Path) -> List[Path]:
        """Already on disk: a no-op when the target is this writer's own
        directory, otherwise copies the files over."""
        directory = Path(directory)
        if not self._closed:
            self.flush()
        if directory.resolve() == self.directory.resolve():
            return [self.path_of(p) for p in self.party_ids]
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for party_id in self.party_ids:
            target = directory / f"party-{party_id}.jsonl"
            target.write_bytes(self.path_of(party_id).read_bytes())
            paths.append(target)
        return paths

    def fingerprint(self) -> str:
        """Digest computed by streaming file chunks (bounded memory)."""
        import hashlib

        if not self._closed:
            self.flush()
        digest = hashlib.sha256()
        for party_id in self.party_ids:
            with self.path_of(party_id).open("rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 16), b""):
                    digest.update(chunk)
        return digest.hexdigest()


def load_jsonl(path: Path) -> List[Dict[str, Any]]:
    """Parse one party's JSONL trace file back into event dicts."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events


def summarize(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Count events by kind (small helper for reports and the CLI)."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts
