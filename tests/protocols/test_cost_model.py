"""Consistency tests: analytic charges dominate measured concrete costs.

DESIGN.md commits to this invariant: the hybrid-model functionality
charges used by pi_ba must be *upper bounds* on the concrete
message-passing realizations implemented in this repo, so benchmark
numbers can only over-charge the paper's protocol.
"""

import pytest

from repro.params import ProtocolParameters
from repro.protocols import cost_model
from repro.protocols.coin_toss import run_coin_toss
from repro.protocols.phase_king import run_phase_king
from repro.utils.randomness import Randomness


class TestChargeShapes:
    def test_ae_establish_polylog(self):
        params = ProtocolParameters()
        small = cost_model.ae_comm_establish(64, params)
        large = cost_model.ae_comm_establish(4096, params)
        # Polylog growth: far less than linear scaling in n.
        assert large.bits_per_party < 64 * small.bits_per_party
        assert large.bits_per_party > small.bits_per_party

    def test_send_down_scales_with_payload(self):
        params = ProtocolParameters()
        small = cost_model.ae_comm_send_down(256, params, payload_bits=100)
        large = cost_model.ae_comm_send_down(256, params, payload_bits=1000)
        assert large.bits_per_party == 10 * small.bits_per_party

    def test_committee_ba_rounds(self):
        charge = cost_model.committee_ba(30)
        f = (30 - 1) // 3
        assert charge.rounds == 3 * (f + 1)

    def test_aggregate_sig_linear_in_input(self):
        a = cost_model.committee_aggregate_sig(20, input_bits=1000)
        b = cost_model.committee_aggregate_sig(20, input_bits=2000)
        assert b.bits_per_party > a.bits_per_party


class TestChargesDominateConcrete:
    def test_phase_king_within_charge(self):
        committee = 10
        outputs, metrics = run_phase_king({i: i % 2 for i in range(committee)})
        charge = cost_model.committee_ba(committee)
        assert metrics.max_bits_per_party <= charge.bits_per_party

    def test_coin_toss_within_charge(self):
        committee = 7
        outputs, metrics = run_coin_toss(range(committee), Randomness(5))
        charge = cost_model.committee_coin_toss(committee)
        assert metrics.max_bits_per_party <= charge.bits_per_party
