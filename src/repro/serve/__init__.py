"""repro.serve: the agreement-as-a-service gateway.

A long-running asyncio gateway (``python -m repro serve run``) that
multiplexes concurrent BA sessions behind one TCP port: admission
control with explicit backpressure, amortized SRDS setup via a
cross-session :class:`SetupCache` (Corollary 1.2 made operational),
pipelined repeated-BA throughput, and a live Prometheus metrics
surface.  See ``docs/gateway.md`` for the architecture and the wire
protocol, and :mod:`repro.serve.cli` for the operator commands.
"""

from repro.serve.client import GatewayClient, run_session
from repro.serve.server import GatewayConfig, GatewayServer, run_gateway
from repro.serve.sessions import (
    SessionManager,
    SessionRecord,
    SessionSpec,
    make_inputs,
    one_shot_reference,
    run_decision,
)
from repro.serve.setup_cache import SetupCache, SetupLease, scheme_for

__all__ = [
    "GatewayClient",
    "GatewayConfig",
    "GatewayServer",
    "SessionManager",
    "SessionRecord",
    "SessionSpec",
    "SetupCache",
    "SetupLease",
    "make_inputs",
    "one_shot_reference",
    "run_decision",
    "run_gateway",
    "run_session",
    "scheme_for",
]
