"""The gateway's newline-delimited JSON client protocol.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Requests are JSON objects with an ``op`` field; responses always carry
``ok`` (bool) and, on failure, ``code`` + ``error`` (and ``retry_after``
seconds when the correct client reaction is to back off and retry —
the gateway's explicit backpressure signal).

Operations (see ``docs/gateway.md`` for the full field tables):

=========  ==============================================================
op         meaning
=========  ==============================================================
ping       liveness probe; echoes the gateway's identity and port
submit     admit one BA session (fields of :class:`SessionSpec`)
await      block until a session finishes (``session``, ``timeout``)
status     gateway-wide summary, or one session with ``session``
cancel     request cooperative cancellation of a session
metrics    Prometheus text exposition as a JSON string field
shutdown   begin graceful shutdown (loopback operator convenience)
=========  ==============================================================

The same TCP port also answers plain ``GET /metrics`` HTTP requests
with the Prometheus text format, so standard scrapers need no JSON
shim; the server sniffs the first bytes of each connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import GatewayError

#: Protocol identifier echoed by ``ping`` and embedded in artifacts.
PROTOCOL = "repro-gateway/1"

#: Hard per-line ceiling: requests are tiny control messages; anything
#: larger is a framing error or abuse, not a legitimate session spec.
MAX_LINE_BYTES = 1 << 20

#: The closed set of request operations.
OPS = ("ping", "submit", "await", "status", "cancel", "metrics", "shutdown")

#: Reject codes a client can receive in an ``ok: false`` response.
#: ``busy`` and ``timeout`` carry ``retry_after``; the rest are terminal.
REJECT_CODES = (
    "busy", "shutting-down", "timeout", "bad-request", "unknown-session",
    "failed",
)


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline."""
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a JSON object (dict).

    Raises :class:`~repro.errors.GatewayError` on oversized, non-JSON,
    or non-object lines — the caller turns that into a ``bad-request``
    response rather than tearing the connection down.
    """
    if len(line) > MAX_LINE_BYTES:
        raise GatewayError(
            f"line exceeds {MAX_LINE_BYTES} bytes ({len(line)})"
        )
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GatewayError(f"malformed request line: {exc}") from exc
    if not isinstance(payload, dict):
        raise GatewayError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_request(line: bytes) -> Dict[str, Any]:
    """Decode and structurally validate one client request line."""
    payload = decode_line(line)
    op = payload.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise GatewayError(f"unknown op {op!r} (expected one of {OPS})")
    session = payload.get("session")
    if session is not None and not isinstance(session, str):
        raise GatewayError("'session' must be a string")
    if op in ("await", "cancel") and session is None:
        raise GatewayError(f"op {op!r} requires a 'session' field")
    timeout = payload.get("timeout")
    if timeout is not None and (
        not isinstance(timeout, (int, float)) or isinstance(timeout, bool)
        or timeout < 0
    ):
        raise GatewayError("'timeout' must be a non-negative number")
    return payload


def ok(**fields: Any) -> Dict[str, Any]:
    """A success response."""
    response: Dict[str, Any] = {"ok": True}
    response.update(fields)
    return response


def reject(
    code: str, error: str, retry_after: Optional[float] = None
) -> Dict[str, Any]:
    """A structured failure response.

    ``retry_after`` (seconds) is the backpressure hint: present exactly
    when retrying the same request later can succeed.
    """
    if code not in REJECT_CODES:
        raise GatewayError(f"unknown reject code {code!r}")
    response: Dict[str, Any] = {"ok": False, "code": code, "error": error}
    if retry_after is not None:
        response["retry_after"] = round(float(retry_after), 3)
    return response
