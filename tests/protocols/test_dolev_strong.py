"""Tests for Dolev–Strong authenticated broadcast."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.dolev_strong import SignatureChain, run_dolev_strong
from repro.utils.randomness import Randomness


class TestHonestSender:
    def test_all_agree_on_sender_value(self, rng):
        outputs, _ = run_dolev_strong(range(7), sender=2, value=1, rng=rng)
        assert set(outputs.values()) == {1}

    def test_zero_value(self, rng):
        outputs, _ = run_dolev_strong(range(7), sender=0, value=0, rng=rng)
        assert set(outputs.values()) == {0}

    def test_with_silent_byzantine(self, rng):
        outputs, _ = run_dolev_strong(
            range(10), sender=1, value=1, rng=rng, byzantine=[4, 7]
        )
        assert set(outputs.values()) == {1}

    def test_sender_must_be_member(self, rng):
        with pytest.raises(ConfigurationError):
            run_dolev_strong(range(5), sender=9, value=1, rng=rng)


class TestEquivocatingSender:
    def test_honest_agree_despite_equivocation(self, rng):
        outputs, _ = run_dolev_strong(
            range(7), sender=3, value=1, rng=rng, equivocating_sender=True
        )
        assert len(set(outputs.values())) == 1  # agreement is the contract

    def test_equivocation_detected_as_default(self, rng):
        outputs, _ = run_dolev_strong(
            range(7), sender=3, value=1, rng=rng, equivocating_sender=True,
            max_faults=2,
        )
        # Parties extracting two values output the default.
        assert set(outputs.values()) == {0}


class TestChains:
    def _chain(self, rng, value=1):
        from repro.crypto import schnorr
        from repro.protocols.dolev_strong import _chain_message

        keypairs = {i: schnorr.keygen(rng.fork(str(i))) for i in range(3)}
        public_keys = {i: kp.public_bytes for i, kp in keypairs.items()}
        signers, signatures = (), ()
        for signer in (0, 1, 2):
            message = _chain_message(value, signers)
            signatures = signatures + (
                schnorr.sign(keypairs[signer], message).encode(),
            )
            signers = signers + (signer,)
        return SignatureChain(value, signers, signatures), public_keys

    def test_valid_chain(self, rng):
        chain, keys = self._chain(rng)
        assert chain.is_valid(sender=0, round_index=2, public_keys=keys)

    def test_wrong_round_rejected(self, rng):
        chain, keys = self._chain(rng)
        assert not chain.is_valid(sender=0, round_index=1, public_keys=keys)

    def test_wrong_sender_rejected(self, rng):
        chain, keys = self._chain(rng)
        assert not chain.is_valid(sender=1, round_index=2, public_keys=keys)

    def test_duplicate_signers_rejected(self, rng):
        chain, keys = self._chain(rng)
        duped = SignatureChain(
            chain.value,
            (0, 1, 1),
            chain.signatures,
        )
        assert not duped.is_valid(sender=0, round_index=2, public_keys=keys)

    def test_tampered_value_rejected(self, rng):
        chain, keys = self._chain(rng)
        flipped = SignatureChain(
            1 - chain.value, chain.signers, chain.signatures
        )
        assert not flipped.is_valid(sender=0, round_index=2, public_keys=keys)

    def test_encode_roundtrip(self, rng):
        chain, _ = self._chain(rng)
        assert SignatureChain.decode(chain.encode()) == chain


class TestCosts:
    def test_per_party_linear_in_committee(self, rng):
        _, small = run_dolev_strong(range(5), sender=0, value=1,
                                    rng=rng.fork("s"))
        _, large = run_dolev_strong(range(10), sender=0, value=1,
                                    rng=rng.fork("l"))
        assert large.max_bits_per_party > 1.5 * small.max_bits_per_party
