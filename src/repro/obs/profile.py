"""Opt-in phase-scoped profiling: cProfile + tracemalloc per span.

The span machinery (:mod:`repro.obs.spans`) already brackets every
protocol phase; this module piggybacks on the collector seam to answer
*why is this phase slow / fat* without touching protocol code:
:class:`PhaseProfiler` implements the same ``open``/``close`` duck type
as :class:`~repro.obs.spans.SpanLog`, so installing it is one line ::

    profiler = PhaseProfiler(phases={"srds-aggregate"}, memory=True)
    with recording(profiler):
        run_balanced_ba(...)
    print(profiler.render())

Per selected phase it accumulates a :mod:`cProfile` run (function-level
CPU attribution) and — with ``memory=True`` — the :mod:`tracemalloc`
peak over the span.  Profiling is strictly observational and **off by
default** everywhere: the hooks cost nothing unless a profiler is
installed, and the deterministic span/flow artifacts never include
profile numbers (wall clocks don't reproduce).

cProfile cannot nest: when spans nest inside an already-profiled phase,
the inner spans are counted (calls) but not re-profiled — their cost is
already inside the outer profile.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

#: How many hot functions :meth:`PhaseProfiler.render` shows per phase.
TOP_FUNCTIONS = 10


@dataclass
class PhaseProfile:
    """Accumulated profile of one phase name."""

    name: str
    calls: int = 0
    profiled_calls: int = 0
    cpu_seconds: float = 0.0
    function_calls: int = 0
    peak_bytes: int = 0
    stats: Optional[pstats.Stats] = None

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "profiled_calls": self.profiled_calls,
            "cpu_seconds": round(self.cpu_seconds, 6),
            "function_calls": self.function_calls,
            "peak_bytes": self.peak_bytes,
        }


@dataclass
class _OpenSpan:
    """What :meth:`PhaseProfiler.open` hands back to ``span()``."""

    name: str
    profile: Optional[cProfile.Profile] = None
    memory_before: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)


class PhaseProfiler:
    """A span collector that profiles the phases it watches.

    ``phases=None`` profiles every span name; pass a set to narrow to
    the suspects (profiling is not free — narrow when measuring).
    ``memory=True`` additionally starts :mod:`tracemalloc` for the
    profiler's lifetime and records each phase's allocation peak.
    """

    def __init__(
        self,
        phases: Optional[Set[str]] = None,
        memory: bool = False,
    ) -> None:
        self.phases = set(phases) if phases is not None else None
        self.memory = memory
        self.profiles: Dict[str, PhaseProfile] = {}
        self._active_profile: Optional[cProfile.Profile] = None
        self._started_tracemalloc = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # -- the SpanLog collector duck type -------------------------------------

    def open(self, name: str, path: str, depth: int,
             attrs: Dict[str, Any]) -> _OpenSpan:
        del path, depth
        record = _OpenSpan(name=name, attrs=dict(attrs))
        entry = self.profiles.setdefault(name, PhaseProfile(name=name))
        entry.calls += 1
        if self._watching(name) and self._active_profile is None:
            profile = cProfile.Profile()
            try:
                profile.enable()
            except ValueError:
                # Another profiler (pytest-cov, an outer PhaseProfiler)
                # owns the hook: count the span, skip the profile.
                return record
            record.profile = profile
            self._active_profile = profile
            if self.memory and tracemalloc.is_tracing():
                tracemalloc.reset_peak()
                record.memory_before = tracemalloc.get_traced_memory()[0]
        return record

    def close(self, record: _OpenSpan) -> None:
        if record.profile is None:
            return
        record.profile.disable()
        self._active_profile = None
        entry = self.profiles[record.name]
        entry.profiled_calls += 1
        stats = pstats.Stats(record.profile)
        entry.cpu_seconds += stats.total_tt  # type: ignore[attr-defined]
        entry.function_calls += stats.total_calls  # type: ignore[attr-defined]
        if entry.stats is None:
            entry.stats = stats
        else:
            entry.stats.add(record.profile)
        if self.memory and tracemalloc.is_tracing():
            entry.peak_bytes = max(
                entry.peak_bytes, tracemalloc.get_traced_memory()[1]
            )

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Release tracemalloc if this profiler started it (idempotent)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    # -- queries -------------------------------------------------------------

    def _watching(self, name: str) -> bool:
        return self.phases is None or name in self.phases

    def summary(self) -> List[Dict[str, Any]]:
        """Per-phase rollups, heaviest CPU first (deterministic ties)."""
        return [
            entry.to_wire()
            for entry in sorted(
                self.profiles.values(),
                key=lambda item: (-item.cpu_seconds, item.name),
            )
        ]

    def render(self, top: int = TOP_FUNCTIONS) -> str:
        """Human-readable report: rollup + hottest functions per phase."""
        lines: List[str] = []
        for entry in sorted(
            self.profiles.values(),
            key=lambda item: (-item.cpu_seconds, item.name),
        ):
            lines.append(
                f"{entry.name}: calls={entry.calls} "
                f"profiled={entry.profiled_calls} "
                f"cpu={entry.cpu_seconds:.4f}s "
                f"funcs={entry.function_calls}"
                + (
                    f" peak={entry.peak_bytes / 1024:.1f}KiB"
                    if self.memory
                    else ""
                )
            )
            if entry.stats is not None and entry.profiled_calls:
                buffer = io.StringIO()
                entry.stats.stream = buffer  # type: ignore[attr-defined]
                entry.stats.sort_stats("cumulative").print_stats(top)
                body = buffer.getvalue().splitlines()
                # Drop the pstats banner; keep the table.
                table = [
                    line for line in body
                    if line.strip()
                    and not line.lstrip().startswith("Ordered by")
                    and not line.lstrip().startswith("List reduced")
                    and "function calls" not in line
                ]
                lines.extend("  " + line for line in table[:top + 1])
        if not lines:
            lines.append("no phases profiled")
        return "\n".join(lines)
