"""Event-driven asyncio execution layer with fault injection and tracing.

The runtime runs the repo's existing :class:`~repro.net.party.Party`
state machines — unchanged — over an asyncio event loop:

* :mod:`repro.runtime.transport` — the :class:`Transport` abstraction:
  in-process :class:`AsyncLocalTransport` and loopback-socket
  :class:`TcpTransport`, both charging the shared metrics ledger;
* :mod:`repro.runtime.synchronizer` — :class:`RoundSynchronizer`, the
  round barrier that recovers the paper's synchronous model (§1) and the
  :func:`run_parties` facade;
* :mod:`repro.runtime.faults` — seeded, reproducible crash / delay /
  reorder / duplication / partition injection (:class:`FaultPlan`);
* :mod:`repro.runtime.trace` — per-party JSONL execution traces;
* :mod:`repro.runtime.replay` — wire replay of metered (hybrid-model)
  executions such as π_ba;
* :mod:`repro.runtime.drivers` — event-driven twins of the synchronous
  protocol drivers.

See ``docs/runtime.md`` for the architecture and the differential
guarantees tying the runtime to :class:`SynchronousNetwork`.
"""

from repro.runtime.drivers import (
    run_balanced_ba_runtime,
    run_gradecast_runtime,
    run_phase_king_runtime,
)
from repro.runtime.faults import (
    FaultPlan,
    LinkDelay,
    Partition,
    adversarial_schedule,
    crash_corrupted,
    crash_everyone,
    partition_halves,
)
from repro.runtime.replay import (
    RecordingLedger,
    ReplayParty,
    ReplayScript,
    replay_over_simulator,
    tallies_equal,
)
from repro.runtime.synchronizer import (
    RoundSynchronizer,
    RuntimeResult,
    run_parties,
    run_parties_async,
)
from repro.runtime.trace import TraceRecorder, load_jsonl, wall_clock_recorder
from repro.runtime.transport import (
    AsyncLocalTransport,
    Frame,
    TcpTransport,
    Transport,
    make_transport,
)

__all__ = [
    "AsyncLocalTransport",
    "FaultPlan",
    "Frame",
    "LinkDelay",
    "Partition",
    "RecordingLedger",
    "ReplayParty",
    "ReplayScript",
    "RoundSynchronizer",
    "RuntimeResult",
    "TcpTransport",
    "TraceRecorder",
    "Transport",
    "adversarial_schedule",
    "crash_corrupted",
    "crash_everyone",
    "load_jsonl",
    "make_transport",
    "partition_halves",
    "replay_over_simulator",
    "run_balanced_ba_runtime",
    "run_gradecast_runtime",
    "run_parties",
    "run_parties_async",
    "run_phase_king_runtime",
    "tallies_equal",
    "wall_clock_recorder",
]
