"""Scaling fits and Table-1-style rendering for benchmark output."""

from repro.analysis.scaling import (
    PolylogFit,
    PowerLawFit,
    classify_growth,
    crossover_point,
    fit_polylog,
    fit_power_law,
)
from repro.analysis.tables import Table1Row, format_bits, render_series, render_table

__all__ = [
    "PolylogFit",
    "PowerLawFit",
    "Table1Row",
    "classify_growth",
    "crossover_point",
    "fit_polylog",
    "fit_power_law",
    "format_bits",
    "render_series",
    "render_table",
]
