"""Metered baselines: classic almost-everywhere → everywhere boosts.

Each function simulates one of the comparison rows in Table 1, over the
same synchronous model and the same metrics ledger as pi_ba, so the
"max communication per party" column can be measured apples-to-apples:

* :func:`all_to_all_ba` — textbook full-network BA (phase-king over all
  n parties): Theta(n) bits per party, no setup, the pre-scalable
  reference point.
* :func:`ks09_boost` — King–Saia DISC'09 style: no setup, O(1) rounds,
  max per-party Õ(n * sqrt(n)) — the parties servicing the quorum relay
  handle sqrt(n) quorums' worth of n-party traffic.
* :func:`sqrt_boost` — KS'11 / KLST'11 style: no setup, polling-based;
  every party polls Õ(sqrt(n)) random peers and takes the majority —
  Õ(sqrt(n)) bits per party.
* :func:`central_party_boost` — CM'19 / ACD+'19 / BGH'13 style:
  amortized Õ(1) per party, but a polylog set of "central" parties each
  talk to all n parties — per-party max Theta(n), the unbalanced regime
  the paper's title targets.

All boost baselines receive the same starting condition as pi_ba's boost:
an almost-everywhere agreed value ``y`` held by all honest parties except
an isolated o(n)-size set.  Outcomes are computed faithfully to each
protocol's decision logic against the given corruption plan;
communication is charged per party from each protocol's exact message
pattern (bulk-charged so large-n sweeps stay fast; the per-party totals
equal what message-by-message recording would produce).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics, MetricsSnapshot
from repro.params import ceil_log2
from repro.utils.randomness import Randomness

# Realistic payload sizes (bytes) shared by the baselines.
VALUE_BYTES = 33        # one bit + a kappa-bit authenticator/session id
POLL_REQUEST_BYTES = 16


@dataclass(frozen=True)
class BoostResult:
    """Outcome of one baseline boost execution."""

    outputs: Dict[int, Optional[int]]
    agreement: bool
    metrics: MetricsSnapshot
    protocol: str


def _evaluate(
    outputs: Dict[int, Optional[int]],
    plan: CorruptionPlan,
    metrics: CommunicationMetrics,
    protocol: str,
) -> BoostResult:
    honest_values = [outputs[party] for party in plan.honest]
    agreement = (
        all(value is not None for value in honest_values)
        and len(set(honest_values)) == 1
    )
    return BoostResult(
        outputs=outputs,
        agreement=agreement,
        metrics=metrics.snapshot(),
        protocol=protocol,
    )


def all_to_all_ba(
    inputs: Dict[int, int],
    plan: CorruptionPlan,
    rng: Randomness,
) -> BoostResult:
    """Full-network deterministic BA (phase-king shape): Theta(n)/party.

    Communication is charged per the phase-king message pattern over all
    n parties — 3(f+1) all-to-all rounds of value-size messages — and the
    outcome is the honest majority value (which phase-king guarantees for
    t < n/3).
    """
    n = len(inputs)
    metrics = CommunicationMetrics()
    rounds = 3 * (max(1, plan.t) + 1)
    bits = 8 * VALUE_BYTES
    metrics.charge_functionality(
        range(n),
        bits_per_party=rounds * 2 * (n - 1) * bits,
        peers_per_party=n - 1,
        rounds=rounds,
    )
    honest_inputs = [inputs[party] for party in plan.honest]
    majority = 1 if sum(honest_inputs) * 2 > len(honest_inputs) else 0
    outputs = {party: majority for party in range(n)}
    return _evaluate(outputs, plan, metrics, "all-to-all phase-king")


def ks09_boost(
    agreed_value: int,
    isolated: Set[int],
    plan: CorruptionPlan,
    rng: Randomness,
) -> BoostResult:
    """King–Saia DISC'09-style boost: max per party Õ(n * sqrt(n)).

    Communication skeleton: sqrt(n) quorums of sqrt(n) parties each act
    as relays; every party pushes its value to each quorum and pulls the
    quorum's tally back.  Each relay therefore services Theta(n) parties
    times sqrt(n)-size quorum gossip — Õ(n * sqrt(n)) bits at the relays,
    Õ(sqrt(n)) at everyone else (the table's max column is set by the
    relays).
    """
    n = plan.n
    metrics = CommunicationMetrics()
    sqrt_n = max(1, int(math.isqrt(n)))
    bits = 8 * VALUE_BYTES
    relays = rng.sample(range(n), min(n, sqrt_n))
    # Light parties: one value push + pull per quorum.
    metrics.charge_functionality(
        range(n),
        bits_per_party=2 * sqrt_n * bits,
        peers_per_party=sqrt_n,
        rounds=2,
    )
    # Relays: service all n parties once per quorum round — sqrt(n)
    # quorum exchanges of n-party traffic each, i.e. the Õ(n * sqrt(n))
    # max-per-party cost of the Table 1 row.
    metrics.charge_functionality(
        relays,
        bits_per_party=2 * n * sqrt_n * bits,
        peers_per_party=n - 1,
        rounds=2,
        peer_pool=range(n),
    )
    outputs = _poll_outcome(
        agreed_value, isolated, plan, rng,
        responses_per_party=sqrt_n * ceil_log2(n),
    )
    return _evaluate(outputs, plan, metrics, "KS'09 quorum boost")


def sqrt_boost(
    agreed_value: int,
    isolated: Set[int],
    plan: CorruptionPlan,
    rng: Randomness,
) -> BoostResult:
    """KS'11 / KLST'11-style boost: Õ(sqrt(n)) bits per party.

    Every party polls c * sqrt(n) * log(n) random peers for the agreed
    value and outputs the majority response.  Honest responders answer
    truthfully (isolated honest parties decline); corrupt responders
    answer with the flipped value.  With a (1 - beta - o(1)) honest
    non-isolated fraction the majority is correct with high probability —
    and each party's traffic is Theta(sqrt(n) log n) both as poller and
    (in expectation) as responder.
    """
    n = plan.n
    metrics = CommunicationMetrics()
    sample_size = min(n - 1, int(math.isqrt(n)) * ceil_log2(n))
    pair_bits = 8 * (POLL_REQUEST_BYTES + VALUE_BYTES)
    metrics.charge_functionality(
        range(n),
        bits_per_party=2 * sample_size * pair_bits,
        peers_per_party=sample_size,
        rounds=2,
    )
    outputs: Dict[int, Optional[int]] = {}
    for party in range(n):
        votes_for_agreed = 0
        responders = 0
        targets = rng.sample(
            [p for p in range(n) if p != party], sample_size
        )
        for target in targets:
            if plan.is_corrupt(target):
                responders += 1
            elif target not in isolated:
                votes_for_agreed += 1
                responders += 1
        if responders == 0:
            outputs[party] = None
        elif 2 * votes_for_agreed > responders:
            outputs[party] = agreed_value
        else:
            outputs[party] = 1 - agreed_value
    return _evaluate(outputs, plan, metrics, "KS'11 sqrt-n polling boost")


def central_party_boost(
    agreed_value: int,
    isolated: Set[int],
    plan: CorruptionPlan,
    rng: Randomness,
) -> BoostResult:
    """CM'19/ACD+'19-style: amortized Õ(1)/party, Theta(n) at the center.

    A polylog committee of central parties (e.g. sortition winners)
    collects votes from everyone and pushes back the certified value.
    Mean per-party cost is Õ(1); max per-party cost is Theta(n) — the
    imbalance the paper's title is about.
    """
    n = plan.n
    metrics = CommunicationMetrics()
    committee_size = min(n, 3 * ceil_log2(n))
    committee = rng.sample(range(n), committee_size)
    bits = 8 * VALUE_BYTES
    # Every party exchanges one value with every central party.
    metrics.charge_functionality(
        range(n),
        bits_per_party=2 * committee_size * bits,
        peers_per_party=committee_size,
        rounds=2,
    )
    metrics.charge_functionality(
        committee,
        bits_per_party=2 * n * bits,
        peers_per_party=n - 1,
        rounds=0,
        peer_pool=range(n),
    )
    honest_centers = [c for c in committee if not plan.is_corrupt(c)]
    value = agreed_value if 2 * len(honest_centers) > committee_size else None
    outputs = {party: value for party in range(n)}
    return _evaluate(outputs, plan, metrics, "central-committee boost")


def _poll_outcome(
    agreed_value: int,
    isolated: Set[int],
    plan: CorruptionPlan,
    rng: Randomness,
    responses_per_party: int,
) -> Dict[int, Optional[int]]:
    """Common majority-of-responses outcome model for polling boosts."""
    n = plan.n
    outputs: Dict[int, Optional[int]] = {}
    for party in range(n):
        sample = rng.sample(range(n), min(n, responses_per_party))
        good = sum(
            1
            for responder in sample
            if not plan.is_corrupt(responder) and responder not in isolated
        )
        bad = sum(1 for responder in sample if plan.is_corrupt(responder))
        outputs[party] = agreed_value if good > bad else 1 - agreed_value
    return outputs
