"""OBS001 negative fixture: lexical spans + transitively covered helpers."""

from repro.obs.spans import span  # noqa: F401 - mirrors the real module


def _charge_leaf(metrics) -> None:
    metrics.record_message(0, 1, 64)  # covered: every caller is spanned


def _aggregate(metrics) -> None:
    _charge_leaf(metrics)  # covered transitively via _spanned_run
    metrics.charge_functionality([0, 1], 32, 1)


def _spanned_run(metrics) -> None:
    with span("srds-aggregate"):
        _aggregate(metrics)


def run(metrics) -> None:
    with span("pi-ba"):
        _spanned_run(metrics)
        _charge_leaf(metrics)
