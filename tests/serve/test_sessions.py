"""Sessions: spec validation, admission/backpressure, cache observability.

Everything here is tier-1: the manager tests drive admission control
with a stubbed decision runner (threading.Event-gated, no protocol
work), and the real-protocol tests use CI-sized n with the simulated
base-signature scheme so they run in tens of milliseconds.
"""

import asyncio
import threading

import pytest

from repro.errors import GatewayError
from repro.obs.registry import MetricsRegistry
from repro.serve.sessions import (
    SessionManager,
    SessionSpec,
    make_inputs,
    one_shot_reference,
    run_decision,
)
from repro.serve.setup_cache import SetupCache


class TestSessionSpec:
    def test_defaults_round_trip(self):
        spec = SessionSpec()
        assert SessionSpec.from_wire(spec.to_wire()) == spec

    def test_from_wire_ignores_request_plumbing_fields(self):
        spec = SessionSpec.from_wire(
            {"op": "submit", "n": 8, "scheme": "owf", "seed": 3}
        )
        assert (spec.n, spec.scheme, spec.seed) == (8, "owf", 3)

    @pytest.mark.parametrize("bad", [
        {"workload": "phase-king"},
        {"scheme": "rsa"},
        {"n": 2},
        {"n": 2 ** 20},
        {"repeat": 0},
        {"inputs": "random"},
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(GatewayError):
            SessionSpec(**bad)

    @pytest.mark.parametrize("field,value", [
        ("n", "16"), ("n", True), ("seed", 1.5), ("repeat", "4"),
    ])
    def test_from_wire_type_checks(self, field, value):
        with pytest.raises(GatewayError, match=field):
            SessionSpec.from_wire({field: value})

    def test_input_patterns(self):
        assert make_inputs(SessionSpec(n=4, inputs="split")) == {
            0: 0, 1: 1, 2: 0, 3: 1,
        }
        assert set(make_inputs(SessionSpec(n=4, inputs="zero")).values()) \
            == {0}
        assert set(make_inputs(SessionSpec(n=4, inputs="one")).values()) \
            == {1}


SMALL = dict(n=6, scheme="snark-hash", seed=11)


class TestDecisions:
    def test_cached_decision_matches_one_shot_reference(self):
        # The acceptance-critical parity: per-party tallies through the
        # gateway's cached path equal the uncached single invocation.
        spec = SessionSpec(**SMALL)
        reference = one_shot_reference(spec)
        cache = SetupCache()
        lease = cache.lease(spec.scheme, spec.n, spec.seed)
        first = run_decision(spec, lease)
        second = run_decision(spec, lease)  # pure cache hit
        for decision in (first, second):
            assert decision["value"] == reference["value"]
            assert decision["per_party_bits"] == reference["per_party_bits"]
            assert decision["agreement"] and decision["validity"]
            assert decision["within_budget"]
        assert lease.misses == 1 and lease.hits == 1

    def test_budget_fields_populated(self):
        result = one_shot_reference(SessionSpec(**SMALL))
        assert result["budget_bits"] >= result["max_bits_per_party"] > 0
        assert result["certificate_bytes"] > 0


def _stub_runner(release: threading.Event, started: threading.Event):
    """A decision runner the test controls: blocks until released."""

    def run(spec, lease):
        started.set()
        assert release.wait(timeout=10), "test never released the stub"
        return {
            "value": 0, "agreement": True, "validity": True,
            "certificate_bytes": 1, "per_party_bits": {"0": 1},
            "max_bits_per_party": 1, "total_bits": 1, "budget_bits": 2,
            "within_budget": True, "num_virtual": 1,
        }

    return run


def _manager(release, started, **kwargs):
    kwargs.setdefault("max_sessions", 1)
    kwargs.setdefault("retry_after", 0.05)
    kwargs.setdefault("cache", SetupCache(scheme_factory=lambda label: None))
    return SessionManager(
        decision_runner=_stub_runner(release, started), **kwargs
    )


class TestAdmissionControl:
    def test_over_capacity_submit_rejected_with_retry_after(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started)
            first = manager.submit({"n": 8})
            assert first["ok"]
            await asyncio.to_thread(started.wait, 5)
            rejected = manager.submit({"n": 8})
            assert not rejected["ok"]
            assert rejected["code"] == "busy"
            assert rejected["retry_after"] > 0
            release.set()
            done = await manager.await_result(first["session"])
            assert done["ok"] and done["state"] == "done"
            # The lane drained: the retry the backpressure promised works.
            retried = manager.submit({"n": 8})
            assert retried["ok"]
            await manager.await_result(retried["session"])
            manager.close()

        asyncio.run(scenario())

    def test_bad_spec_rejected_without_burning_a_lane(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started)
            response = manager.submit({"n": 2})
            assert response["code"] == "bad-request"
            assert manager.active == 0
            manager.close()

        asyncio.run(scenario())

    def test_stop_admitting_rejects_as_shutting_down(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started)
            manager.stop_admitting()
            response = manager.submit({"n": 8})
            assert response["code"] == "shutting-down"
            assert "retry_after" not in response
            manager.close()

        asyncio.run(scenario())

    def test_rejections_and_admissions_counted(self):
        async def scenario():
            registry = MetricsRegistry()
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started, registry=registry)
            first = manager.submit({"n": 8})
            await asyncio.to_thread(started.wait, 5)
            manager.submit({"n": 8})  # busy
            release.set()
            await manager.await_result(first["session"])
            manager.close()
            text = registry.render()
            assert "repro_gateway_sessions_admitted_total 1" in text
            assert ('repro_gateway_sessions_rejected_total'
                    '{code="busy"} 1') in text
            assert "repro_gateway_decisions_total 1" in text

        asyncio.run(scenario())


class TestLifecycle:
    def test_await_unknown_session(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started)
            response = await manager.await_result("s-404")
            assert response["code"] == "unknown-session"
            manager.close()

        asyncio.run(scenario())

    def test_await_timeout_is_a_backpressure_reject(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            manager = _manager(release, started)
            submitted = manager.submit({"n": 8})
            response = await manager.await_result(
                submitted["session"], timeout=0.05
            )
            assert response["code"] == "timeout"
            assert response["retry_after"] > 0
            release.set()
            final = await manager.await_result(submitted["session"])
            assert final["ok"]
            manager.close()

        asyncio.run(scenario())

    def test_cancel_stops_between_decisions(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            release.set()  # decisions complete instantly
            manager = _manager(release, started)
            submitted = manager.submit({"n": 8, "repeat": 10_000})
            cancelled = manager.cancel(submitted["session"])
            assert cancelled["ok"]
            done = await manager.await_result(submitted["session"])
            assert done["state"] == "cancelled"
            assert done["decisions_completed"] < 10_000
            manager.close()

        asyncio.run(scenario())

    def test_failed_session_reported_not_fatal(self):
        async def scenario():
            def boom(spec, lease):
                raise RuntimeError("keygen exploded")

            manager = SessionManager(
                max_sessions=1, decision_runner=boom,
                cache=SetupCache(scheme_factory=lambda label: None),
            )
            submitted = manager.submit({"n": 8})
            response = await manager.await_result(submitted["session"])
            assert response["code"] == "failed"
            assert "keygen exploded" in response["error"]
            # The lane was released: the manager still admits.
            assert manager.active == 0
            manager.close()

        asyncio.run(scenario())

    def test_drain_waits_then_escalates_to_cancel(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            release.set()
            manager = _manager(release, started)
            submitted = manager.submit({"n": 8, "repeat": 10_000})
            manager.stop_admitting()
            drained = await manager.drain(deadline=0.2)
            assert drained  # escalation flagged the cancel event
            record_state = manager.status(submitted["session"])
            assert record_state["state"] in ("cancelled", "done")
            manager.close()

        asyncio.run(scenario())

    def test_status_summary_shape(self):
        async def scenario():
            release, started = threading.Event(), threading.Event()
            release.set()
            manager = _manager(release, started)
            submitted = manager.submit({"n": 8})
            await manager.await_result(submitted["session"])
            status = manager.status()
            assert status["ok"]
            assert status["max_sessions"] == 1
            assert status["sessions"] == {"done": 1}
            assert "setup_cache" in status
            manager.close()

        asyncio.run(scenario())


class TestRealProtocolThroughManager:
    def test_second_session_on_same_key_skips_keygen(self):
        # The amortization observable end to end: session 2's lease
        # records only hits, and both match the one-shot reference.
        async def scenario():
            manager = SessionManager(max_sessions=2)
            results = []
            for _ in range(2):
                submitted = manager.submit({**SMALL, "repeat": 2})
                assert submitted["ok"], submitted
                response = await manager.await_result(submitted["session"])
                assert response["ok"], response
                results.append(response["result"])
            manager.close()
            return results

        first, second = asyncio.run(scenario())
        assert first["setup_cache"] == {"hits": 1, "misses": 1}
        assert second["setup_cache"] == {"hits": 2, "misses": 0}
        reference = one_shot_reference(SessionSpec(**SMALL))
        for result in (first, second):
            assert result["value"] == reference["value"]
            assert result["per_party_bits"] == reference["per_party_bits"]
            assert result["decisions"] == 2
            assert result["within_budget"]
