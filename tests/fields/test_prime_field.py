"""Tests for GF(p) arithmetic, including hypothesis field-axiom checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.fields.prime_field import (
    SECP256K1_ORDER,
    FieldElement,
    PrimeField,
    default_field,
)

SMALL_PRIME = 10007


@pytest.fixture
def field():
    return PrimeField(SMALL_PRIME)


elements = st.integers(min_value=0, max_value=SMALL_PRIME - 1)


class TestConstruction:
    def test_rejects_composite(self):
        with pytest.raises(ConfigurationError):
            PrimeField(10006)

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            PrimeField(1)

    def test_default_field_is_secp_order(self):
        assert default_field().modulus == SECP256K1_ORDER

    def test_element_reduces_mod_p(self, field):
        assert field.element(SMALL_PRIME + 3).value == 3

    def test_cross_field_coercion_rejected(self, field):
        other = PrimeField(10009)
        with pytest.raises(ConfigurationError):
            field.element(other.element(1))


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_addition_associative(self, a, b, c):
        f = PrimeField(SMALL_PRIME)
        x, y, z = f.element(a), f.element(b), f.element(c)
        assert (x + y) + z == x + (y + z)

    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        f = PrimeField(SMALL_PRIME)
        assert f.element(a) + f.element(b) == f.element(b) + f.element(a)

    @given(elements, elements, elements)
    def test_multiplication_distributes(self, a, b, c):
        f = PrimeField(SMALL_PRIME)
        x, y, z = f.element(a), f.element(b), f.element(c)
        assert x * (y + z) == x * y + x * z

    @given(elements)
    def test_additive_inverse(self, a):
        f = PrimeField(SMALL_PRIME)
        x = f.element(a)
        assert x + (-x) == f.zero()

    @given(elements.filter(lambda v: v != 0))
    def test_multiplicative_inverse(self, a):
        f = PrimeField(SMALL_PRIME)
        x = f.element(a)
        assert x * x.inverse() == f.one()

    @given(elements, st.integers(min_value=0, max_value=50))
    def test_pow_matches_repeated_multiplication(self, a, e):
        f = PrimeField(SMALL_PRIME)
        x = f.element(a)
        expected = f.one()
        for _ in range(e):
            expected = expected * x
        assert x ** e == expected

    @given(elements.filter(lambda v: v != 0))
    def test_negative_pow(self, a):
        f = PrimeField(SMALL_PRIME)
        x = f.element(a)
        assert x ** (-1) == x.inverse()


class TestOperatorSugar:
    def test_int_mixing(self, field):
        x = field.element(5)
        assert x + 3 == field.element(8)
        assert 3 + x == field.element(8)
        assert x - 7 == field.element(SMALL_PRIME - 2)
        assert 10 - x == field.element(5)
        assert 2 * x == field.element(10)
        assert x / 5 == field.one()
        assert 5 / x == field.one()

    def test_division_by_zero(self, field):
        with pytest.raises(ZeroDivisionError):
            field.one() / field.zero()

    def test_immutability(self, field):
        x = field.element(1)
        with pytest.raises(AttributeError):
            x.value = 2

    def test_equality_with_int(self, field):
        assert field.element(5) == 5
        assert field.element(5) == 5 + SMALL_PRIME

    def test_hashable(self, field):
        assert len({field.element(1), field.element(1), field.element(2)}) == 2

    def test_int_conversion(self, field):
        assert int(field.element(42)) == 42


class TestHelpers:
    def test_random_element_in_range(self, field, rng):
        for _ in range(20):
            assert 0 <= field.random_element(rng).value < SMALL_PRIME

    def test_elements_range(self, field):
        points = list(field.elements_range(5))
        assert [p.value for p in points] == [1, 2, 3, 4, 5]

    def test_elements_range_overflow(self):
        tiny = PrimeField(5)
        with pytest.raises(ConfigurationError):
            list(tiny.elements_range(5))
