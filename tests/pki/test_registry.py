"""Tests for the PKI bulletin-board models."""

import pytest

from repro.errors import PKIError
from repro.pki.registry import CRS, PKIMode, PKIRegistry


class TestRegistration:
    def test_register_and_query(self):
        registry = PKIRegistry(PKIMode.TRUSTED)
        registry.register(0, b"key0")
        assert registry.key_of(0) == b"key0"
        assert registry.has_key(0)
        assert not registry.has_key(1)

    def test_duplicate_registration_rejected(self):
        registry = PKIRegistry(PKIMode.BARE)
        registry.register(0, b"key0")
        with pytest.raises(PKIError):
            registry.register(0, b"key1")

    def test_unknown_party_query_rejected(self):
        registry = PKIRegistry(PKIMode.BARE)
        with pytest.raises(PKIError):
            registry.key_of(5)

    def test_party_ids_sorted(self):
        registry = PKIRegistry(PKIMode.BARE)
        for party in (3, 1, 2):
            registry.register(party, bytes([party]))
        assert list(registry.party_ids()) == [1, 2, 3]

    def test_len_and_sizes(self):
        registry = PKIRegistry(PKIMode.BARE)
        registry.register(0, b"aaaa")
        registry.register(1, b"bb")
        assert len(registry) == 2
        assert registry.total_size_bytes() == 6

    def test_all_keys_snapshot_isolated(self):
        registry = PKIRegistry(PKIMode.BARE)
        registry.register(0, b"key")
        snapshot = registry.all_keys()
        snapshot[0] = b"mutated"
        assert registry.key_of(0) == b"key"


class TestKeyReplacement:
    def test_bare_pki_allows_replacement(self):
        registry = PKIRegistry(PKIMode.BARE)
        registry.register(0, b"honest")
        registry.replace_key(0, b"adversarial")
        assert registry.key_of(0) == b"adversarial"
        assert registry.was_replaced(0)

    def test_trusted_pki_forbids_replacement(self):
        registry = PKIRegistry(PKIMode.TRUSTED)
        registry.register(0, b"honest")
        with pytest.raises(PKIError):
            registry.replace_key(0, b"adversarial")
        assert not registry.was_replaced(0)

    def test_replacing_unregistered_rejected(self):
        registry = PKIRegistry(PKIMode.BARE)
        with pytest.raises(PKIError):
            registry.replace_key(0, b"key")


class TestRegisteredPKI:
    def _registry(self):
        # Proof of possession: pop must equal the key reversed.
        return PKIRegistry(
            PKIMode.REGISTERED,
            knowledge_check=lambda vk, pop: pop == vk[::-1],
        )

    def test_requires_knowledge_check(self):
        with pytest.raises(PKIError):
            PKIRegistry(PKIMode.REGISTERED)

    def test_valid_pop_accepted(self):
        registry = self._registry()
        registry.register(0, b"abc", proof_of_possession=b"cba")
        assert registry.key_of(0) == b"abc"

    def test_invalid_pop_rejected(self):
        registry = self._registry()
        with pytest.raises(PKIError):
            registry.register(0, b"abc", proof_of_possession=b"wrong")

    def test_replacement_also_checked(self):
        registry = self._registry()
        registry.register(0, b"abc", proof_of_possession=b"cba")
        with pytest.raises(PKIError):
            registry.replace_key(0, b"xyz", proof_of_possession=b"bad")
        registry.replace_key(0, b"xyz", proof_of_possession=b"zyx")
        assert registry.key_of(0) == b"xyz"


def test_crs_size():
    assert CRS(seed=b"x" * 32).size_bytes() == 32
