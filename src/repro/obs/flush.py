"""Atomic metrics flushing — the one ``--metrics-out`` implementation.

Three CLI surfaces flush a Prometheus text snapshot on exit (``serve
run``, ``cluster run``/``bench``, ``runtime``).  They historically each
did a bare ``write_text``, which can leave a half-written file when the
process dies mid-flush — exactly the moment a post-mortem needs the
file.  This module is the single shared path: render the registry,
append the flow-ledger summary (when one is attached) as Prometheus
comment lines, and publish the file atomically (tmp + fsync +
``os.replace``), so a scraper or CI artifact collector never observes a
torn snapshot.

The flow summary rides along as ``# repro-flow {...}`` comment lines —
legal in the text exposition format (scrapers ignore comments), and
greppable by humans and the CI artifact checks without a second file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional

#: Prefix of the flow-summary comment line appended to flushed snapshots.
FLOW_COMMENT_PREFIX = "# repro-flow "


def write_atomic_text(path: Path, text: str) -> Path:
    """Durably publish ``text`` at ``path`` (tmp + fsync + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    with temp.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return path


def render_snapshot(registry: Any, flow: Optional[Any] = None) -> str:
    """The flushable snapshot body: exposition text + flow comment."""
    body: str = registry.render()
    if flow is not None:
        summary = json.dumps(
            flow.summary(), sort_keys=True, separators=(",", ":")
        )
        if body and not body.endswith("\n"):
            body += "\n"
        body += FLOW_COMMENT_PREFIX + summary + "\n"
    return body


def flush_metrics_file(
    path: Path, registry: Any, flow: Optional[Any] = None
) -> Path:
    """Atomically write one metrics snapshot (plus flow summary)."""
    return write_atomic_text(path, render_snapshot(registry, flow))


def read_flow_summary(path: Path) -> Optional[Any]:
    """Parse the flow summary back out of a flushed snapshot file."""
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.startswith(FLOW_COMMENT_PREFIX):
            return json.loads(line[len(FLOW_COMMENT_PREFIX):])
    return None
