"""Tests for the almost-everywhere communication tree."""

import pytest

from repro.aetree.tree import build_tree
from repro.errors import TreeError
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters


@pytest.fixture
def tree(params, rng):
    return build_tree(128, params, rng)


class TestStructure:
    def test_leaf_ranges_tile_virtual_ids(self, tree):
        covered = 0
        for leaf in tree.leaves:
            lo, hi = leaf.virtual_range
            assert lo == covered
            covered = hi
        assert covered == tree.num_virtual

    def test_num_virtual(self, tree):
        assert tree.num_virtual == tree.n * tree.z

    def test_each_party_owns_z_virtuals(self, tree):
        for party in range(tree.n):
            assert len(tree.virtuals_of_party(party)) == tree.z

    def test_owner_inverse_mapping(self, tree):
        for party in range(0, tree.n, 17):
            for virtual_id in tree.virtuals_of_party(party):
                assert tree.owner_of_virtual(virtual_id) == party

    def test_leaf_of_virtual(self, tree):
        for virtual_id in range(0, tree.num_virtual, 97):
            leaf = tree.leaf_of_virtual(virtual_id)
            lo, hi = leaf.virtual_range
            assert lo <= virtual_id < hi

    def test_leaf_of_virtual_out_of_range(self, tree):
        with pytest.raises(TreeError):
            tree.leaf_of_virtual(tree.num_virtual)

    def test_root_is_top(self, tree):
        assert tree.root.parent_id is None
        assert tree.root.level == tree.height

    def test_paths_reach_root(self, tree):
        for leaf in tree.leaves:
            path = tree.path_to_root(leaf.node_id)
            assert path[0] is leaf
            assert path[-1].node_id == tree.root_id
            levels = [node.level for node in path]
            assert levels == sorted(levels)

    def test_parent_child_links(self, tree):
        for node in tree.nodes.values():
            for child_id in node.children:
                assert tree.nodes[child_id].parent_id == node.node_id

    def test_leaves_of_party(self, tree):
        leaves = tree.leaves_of_party(0)
        assert len(leaves) == tree.z
        for leaf in leaves:
            assert 0 in leaf.committee

    def test_supreme_committee_size(self, tree, params):
        assert len(tree.supreme_committee) == params.committee_size(tree.n)

    def test_committees_of_party(self, tree):
        member = tree.supreme_committee[0]
        committees = tree.committees_of_party(member)
        assert any(node.node_id == tree.root_id for node in committees)

    def test_level_nodes_ordered(self, tree):
        for level in range(1, tree.height + 1):
            nodes = tree.level_nodes(level)
            ranges = [node.virtual_range for node in nodes]
            assert ranges == sorted(ranges)


class TestConstruction:
    def test_too_few_parties_rejected(self, params, rng):
        with pytest.raises(TreeError):
            build_tree(3, params, rng)

    def test_deterministic_given_seed(self, params):
        from repro.utils.randomness import Randomness

        a = build_tree(64, params, Randomness(9))
        b = build_tree(64, params, Randomness(9))
        assert a.virtual_owner == b.virtual_owner
        assert a.root.committee == b.root.committee

    def test_honest_root_hint_produces_good_root(self, params):
        from repro.utils.randomness import Randomness

        rng = Randomness(5)
        n = 128
        plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
        tree = build_tree(n, params, rng.fork("t"), honest_root_hint=plan.honest)
        corrupt = sum(
            1 for member in tree.supreme_committee if plan.is_corrupt(member)
        )
        assert 3 * corrupt < len(tree.supreme_committee)

    def test_impossible_root_hint_raises(self, params, rng):
        # Honest set too small to ever form a 2/3-honest committee.
        with pytest.raises(TreeError):
            build_tree(64, params, rng, honest_root_hint=[0])

    @pytest.mark.parametrize("n", [16, 64, 200, 512])
    def test_various_sizes(self, n, params, rng):
        tree = build_tree(n, params, rng.fork(f"n{n}"))
        assert tree.n == n
        assert tree.height >= 2
        assert len(tree.leaves) >= 2
