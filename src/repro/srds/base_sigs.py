"""Pluggable base-signature schemes for the SNARK-based SRDS.

Thm 2.8 only needs an EUF-CMA signature scheme for the per-party "base"
signatures; the construction is black-box in it.  Two implementations:

* :class:`SchnorrBase` — real Schnorr over secp256k1 (the default; used
  by tests, examples, and moderate-n benchmarks).
* :class:`HashRegistryBase` — a *simulated* designated-verifier scheme
  (HMAC tags checked via a registry held by the scheme object).  It is
  sound against the modeled adversaries, runs three orders of magnitude
  faster, and is offered **only** so large-n benchmark sweeps stay
  tractable; DESIGN.md records the substitution.  Communication sizes are
  realistic (32-byte keys/signatures, like BLS).
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

from repro.crypto import schnorr
from repro.crypto.prf import prf
from repro.errors import MALFORMED_INPUT_ERRORS, KeyError_


class BaseSignatureScheme(abc.ABC):
    """An ordinary signature scheme: keygen / sign / verify over bytes."""

    name: str = "abstract"

    @abc.abstractmethod
    def keygen(self, rng) -> Tuple[bytes, object]:
        """Generate ``(verification_key_bytes, signing_handle)``."""

    @abc.abstractmethod
    def sign(self, signing_key: object, message: bytes) -> bytes:
        """Sign; returns signature bytes."""

    @abc.abstractmethod
    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        """Verify; False on any failure, never raises for bad inputs."""


class SchnorrBase(BaseSignatureScheme):
    """Schnorr over secp256k1 (real public-key cryptography).

    Verification results are memoized: pi_ba re-checks each base
    signature once per committee member on its aggregation path, and
    Schnorr verification (two scalar multiplications in pure Python) is
    by far the most expensive operation in a run.
    """

    name = "schnorr-secp256k1"

    def __init__(self) -> None:
        self._verify_cache: Dict[Tuple[bytes, bytes, bytes], bool] = {}

    def keygen(self, rng) -> Tuple[bytes, object]:
        keypair = schnorr.keygen(rng)
        return keypair.public_bytes, keypair

    def sign(self, signing_key: object, message: bytes) -> bytes:
        if not isinstance(signing_key, schnorr.SchnorrKeyPair):
            raise KeyError_("wrong signing-key type for SchnorrBase")
        return schnorr.sign(signing_key, message).encode()

    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        cache_key = (verification_key, message, signature)
        cached = self._verify_cache.get(cache_key)
        if cached is not None:
            return cached
        result = self._verify_uncached(verification_key, message, signature)
        self._verify_cache[cache_key] = result
        return result

    def _verify_uncached(self, verification_key: bytes, message: bytes,
                         signature: bytes) -> bool:
        try:
            from repro.crypto import ec

            public = ec.decode_point(verification_key)
            decoded = schnorr.SchnorrSignature.decode(signature)
        except MALFORMED_INPUT_ERRORS:
            return False
        return schnorr.verify(public, message, decoded)


class HashRegistryBase(BaseSignatureScheme):
    """Simulated designated-verifier signatures (benchmark accelerator).

    ``keygen`` returns ``vk = PRF(sk, "vk")`` and records ``vk -> sk`` in
    a registry held by this object; ``verify`` recomputes the HMAC tag
    using the registered secret.  A modeled adversary without a party's
    ``sk`` cannot produce a valid tag (HMAC unforgeability), and key
    replacement in the bare-PKI game works naturally — the adversary
    registers its own (vk, sk).
    """

    name = "hash-registry (simulated)"

    def __init__(self) -> None:
        self._registry: Dict[bytes, bytes] = {}

    def keygen(self, rng) -> Tuple[bytes, object]:
        secret = rng.random_bytes(32)
        verification_key = prf(secret, "hash-registry/vk")
        self._registry[verification_key] = secret
        return verification_key, secret

    def sign(self, signing_key: object, message: bytes) -> bytes:
        if not isinstance(signing_key, bytes):
            raise KeyError_("wrong signing-key type for HashRegistryBase")
        return prf(signing_key, "hash-registry/sig", message)

    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        secret = self._registry.get(verification_key)
        if secret is None:
            return False
        return prf(secret, "hash-registry/sig", message) == signature
