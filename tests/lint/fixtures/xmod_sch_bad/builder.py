"""SCH001 fixture (bad): constructor keyword not declared on the schema."""

from xmod_sch_bad.codec import Ticket


def build_ticket():
    return Ticket(kind=1, charge_bits=2, stamp=3)
