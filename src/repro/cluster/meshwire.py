"""The mesh data-plane wire format: compact binary frame trains.

The hub-and-spoke cluster shipped party frames *inside* pickled control
messages — every data-plane byte crossed the supervisor twice and paid
``Frame.encode``/``pickle`` on both hops.  The mesh replaces that hot
path with a purpose-built binary format spoken directly between worker
processes (:mod:`repro.cluster.mesh`):

* a **train** is one worker's batch of frames for one peer in one round
  — the unit of dedup, resend, and the per-round barrier (an *empty*
  train is still sent: "I emitted nothing for you this round");
* a train body is a struct-packed frame table behind a small string
  table for obs phases (``round``/``src``/``dst``/``seq``/``phase-id``
  headers + length-prefixed payloads — no pickle anywhere);
* oversized bodies are **chunked**: each chunk record carries the full
  train coordinates (``src``, ``dst``, ``round``, ``train_seq``,
  ``chunk_index``/``num_chunks``) so a receiver can reassemble out of
  order, drop duplicates, and discard a torn half-train superseded by a
  redial's resend (``train_seq`` is the per-link send-attempt counter).

Decoders are strict: truncated or corrupted headers raise
:class:`~repro.errors.SerializationError` (a member of
:data:`~repro.errors.MALFORMED_INPUT_ERRORS`) — never hang, never
silently mis-frame.  ``charge_bits`` survives exactly (signed: ``-1``
means "charge the payload size"), so the supervisor's digest replay and
a relay run charge identical bits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SerializationError
from repro.runtime.transport import Frame

#: Chunk record magic + format version (bump on layout changes).
MESH_MAGIC = b"RPMW"
MESH_VERSION = 1

#: Record kinds.
KIND_TRAIN = 1
KIND_HELLO = 2

#: magic, version, kind, src_worker, dst_worker, round, train_seq,
#: chunk_index, num_chunks, payload_len
_CHUNK = struct.Struct(">4sBBHHIIIII")
#: sender, recipient, sent_round, deliver_round, charge_bits (signed),
#: seq, phase_id, payload_len
_FRAME = struct.Struct(">IIIIqIHI")
_U32 = struct.Struct(">I")
_HAVE = struct.Struct(">q")

#: Train bodies above this are split across multiple chunk records, so
#: a heavy round never materializes as one unbounded wire record.  The
#: same 32 MiB threshold as the control channel's ``part`` trains.
MESH_CHUNK_BYTES = 32 << 20
#: Sanity bound on one reassembled train body.
_MAX_TRAIN = 1 << 33
#: Sanity bound on one frame payload inside a train.
_MAX_PAYLOAD = 1 << 31


@dataclass(frozen=True)
class MeshChunk:
    """One decoded chunk record (a slice of a train, or a hello)."""

    kind: int
    src_worker: int
    dst_worker: int
    round_index: int
    train_seq: int
    chunk_index: int
    num_chunks: int
    payload: bytes

    def hello_have(self) -> int:
        """The peer's consumed-round watermark carried by a hello."""
        if self.kind != KIND_HELLO:
            raise SerializationError("hello_have on a non-hello chunk")
        return _HAVE.unpack(self.payload)[0]


# -- train body ---------------------------------------------------------------


def encode_train_body(frames: List[Frame]) -> bytes:
    """Encode one round's frames for one peer (no chunking, no prefix).

    Layout: ``u32 num_phases | (u16 len, utf8)* | u32 num_frames |
    (frame_header, payload)*`` — the phase string table keeps repeated
    obs phases to two bytes per frame.
    """
    phase_ids: Dict[str, int] = {}
    for frame in frames:
        if frame.phase not in phase_ids:
            phase_ids[frame.phase] = len(phase_ids)
    if len(phase_ids) > 0xFFFF:
        raise SerializationError("train carries more than 65535 phases")
    parts = [_U32.pack(len(phase_ids))]
    for phase in phase_ids:  # insertion order == id order
        blob = phase.encode("utf-8")
        if len(blob) > 0xFFFF:
            raise SerializationError("phase label exceeds 65535 bytes")
        parts.append(struct.pack(">H", len(blob)))
        parts.append(blob)
    parts.append(_U32.pack(len(frames)))
    for frame in frames:
        if len(frame.payload) > _MAX_PAYLOAD:
            raise SerializationError(
                f"frame payload exceeds {_MAX_PAYLOAD} bytes"
            )
        parts.append(
            _FRAME.pack(
                frame.sender,
                frame.recipient,
                frame.sent_round,
                frame.deliver_round,
                frame.charge_bits,
                frame.seq,
                phase_ids[frame.phase],
                len(frame.payload),
            )
        )
        parts.append(frame.payload)
    return b"".join(parts)


def decode_train_body(body: bytes) -> List[Frame]:
    """Inverse of :func:`encode_train_body` (strict, no trailing bytes)."""
    view = memoryview(body)
    offset = 0

    def need(count: int) -> int:
        nonlocal offset
        if offset + count > len(body):
            raise SerializationError(
                f"truncated train body at offset {offset} "
                f"({count} bytes wanted, {len(body) - offset} left)"
            )
        start = offset
        offset += count
        return start

    (num_phases,) = _U32.unpack_from(view, need(_U32.size))
    phases: List[str] = []
    for _ in range(num_phases):
        (length,) = struct.unpack_from(">H", view, need(2))
        start = need(length)
        try:
            phases.append(bytes(view[start:start + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise SerializationError(
                f"train phase table is not UTF-8: {exc}"
            ) from exc
    (num_frames,) = _U32.unpack_from(view, need(_U32.size))
    frames: List[Frame] = []
    for _ in range(num_frames):
        header = _FRAME.unpack_from(view, need(_FRAME.size))
        (sender, recipient, sent_round, deliver_round,
         charge_bits, seq, phase_id, payload_len) = header
        if deliver_round <= sent_round:
            raise SerializationError(
                f"frame claims delivery round {deliver_round} on or "
                f"before its send round {sent_round}"
            )
        if charge_bits < -1:
            raise SerializationError(
                f"frame charge {charge_bits} below the -1 "
                "charge-by-payload sentinel"
            )
        if phase_id >= num_phases and not (phase_id == 0 and num_phases == 0):
            raise SerializationError(
                f"frame names phase id {phase_id}, table holds {num_phases}"
            )
        if payload_len > _MAX_PAYLOAD:
            raise SerializationError(
                f"frame payload length {payload_len} exceeds {_MAX_PAYLOAD}"
            )
        start = need(payload_len)
        frames.append(
            Frame(
                # lint: allow[TRU001] reason=party ids are checked against the staged routing table by the router/supervisor before any delivery or ledger charge
                sender=sender,
                recipient=recipient,  # lint: allow[TRU001] reason=recipient is checked against the staged routing table before any delivery or ledger charge
                payload=bytes(view[start:start + payload_len]),
                sent_round=sent_round,
                deliver_round=deliver_round,
                charge_bits=charge_bits,
                seq=seq,  # lint: allow[TRU001] reason=seq is an opaque dedup tag; the reconnect replay consumer tolerates arbitrary values
                phase=phases[phase_id] if phase_id < num_phases else "",
            )
        )
    if offset != len(body):
        raise SerializationError(
            f"{len(body) - offset} trailing bytes after train body"
        )
    return frames


# -- chunk records ------------------------------------------------------------


def split_train(
    src_worker: int,
    dst_worker: int,
    round_index: int,
    train_seq: int,
    body: bytes,
    chunk_bytes: int = MESH_CHUNK_BYTES,
) -> List[bytes]:
    """Split one encoded train body into self-describing chunk records.

    An empty body still yields one (empty-payload) chunk — the empty
    train is the mesh's round barrier.  Every record repeats the train
    coordinates, so chunks tolerate reordering and duplication.
    """
    if chunk_bytes <= 0:
        raise SerializationError("chunk size must be positive")
    pieces = [
        body[offset:offset + chunk_bytes]
        for offset in range(0, len(body), chunk_bytes)
    ] or [b""]
    return [
        _CHUNK.pack(
            MESH_MAGIC, MESH_VERSION, KIND_TRAIN, src_worker, dst_worker,
            round_index, train_seq, index, len(pieces), len(piece),
        ) + piece
        for index, piece in enumerate(pieces)
    ]


def encode_hello(src_worker: int, dst_worker: int, have_round: int) -> bytes:
    """The link handshake record: ``have_round`` is the sender's
    consumed-round watermark for this peer (``-1`` = nothing yet); the
    receiver resends every retained train above it."""
    payload = _HAVE.pack(have_round)
    return _CHUNK.pack(
        MESH_MAGIC, MESH_VERSION, KIND_HELLO, src_worker, dst_worker,
        0, 0, 0, 1, len(payload),
    ) + payload


def decode_chunk(record: bytes) -> MeshChunk:
    """Decode one chunk record (strict header validation).

    Raises :class:`~repro.errors.SerializationError` — a member of
    ``MALFORMED_INPUT_ERRORS`` — on any truncation or corruption.
    """
    if len(record) < _CHUNK.size:
        raise SerializationError(
            f"short mesh record ({len(record)} bytes, "
            f"header is {_CHUNK.size})"
        )
    (magic, version, kind, src_worker, dst_worker, round_index,
     train_seq, chunk_index, num_chunks, payload_len) = _CHUNK.unpack_from(
        record
    )
    if magic != MESH_MAGIC:
        raise SerializationError(
            f"bad mesh magic {magic!r} (want {MESH_MAGIC!r})"
        )
    if version != MESH_VERSION:
        raise SerializationError(
            f"mesh format version {version}, this build speaks "
            f"{MESH_VERSION}"
        )
    if kind not in (KIND_TRAIN, KIND_HELLO):
        raise SerializationError(f"unknown mesh record kind {kind}")
    if src_worker == dst_worker:
        raise SerializationError(
            f"mesh record addressed from worker {src_worker} to itself"
        )
    if num_chunks < 1:
        raise SerializationError("mesh record claims zero chunks")
    if chunk_index >= num_chunks:
        raise SerializationError(
            f"chunk index {chunk_index} out of range "
            f"(num_chunks={num_chunks})"
        )
    if payload_len != len(record) - _CHUNK.size:
        raise SerializationError(
            f"mesh record payload length {payload_len} does not match "
            f"record size {len(record) - _CHUNK.size}"
        )
    if kind == KIND_HELLO and (
        payload_len != _HAVE.size or num_chunks != 1
    ):
        raise SerializationError("malformed mesh hello record")
    return MeshChunk(
        kind=kind,
        src_worker=src_worker,
        dst_worker=dst_worker,
        chunk_index=chunk_index,
        num_chunks=num_chunks,
        payload=record[_CHUNK.size:],
        round_index=round_index,  # lint: allow[TRU001] reason=round is validated contextually by the consumed-round watermark in MeshRouter
        train_seq=train_seq,  # lint: allow[TRU001] reason=train_seq supersede/stale logic in TrainAssembler tolerates arbitrary values by design
    )


class TrainAssembler:
    """Reassembles chunk records into train bodies, per link.

    Tolerates duplicated and reordered chunks *within* a train; a chunk
    carrying a **newer** ``train_seq`` for the same round supersedes any
    partial state (a torn half-train from before a redial never mixes
    with its resend); an older ``train_seq`` is discarded.  Chunks that
    contradict an in-flight train's geometry raise
    :class:`~repro.errors.SerializationError`.
    """

    def __init__(self, max_bytes: int = _MAX_TRAIN) -> None:
        self._max_bytes = max_bytes
        #: round -> (train_seq, num_chunks, {chunk_index: payload})
        self._partial: Dict[int, Tuple[int, int, Dict[int, bytes]]] = {}
        #: round -> highest train_seq already emitted, so a fully
        #: duplicated chunk set (e.g. a resend racing its original over
        #: a healed link) cannot re-complete the same train.
        self._completed: Dict[int, int] = {}

    def pending_rounds(self) -> List[int]:
        """Rounds with an incomplete train (diagnostics)."""
        return sorted(self._partial)

    def add(self, chunk: MeshChunk) -> Optional[Tuple[int, bytes]]:
        """Absorb one train chunk; returns ``(round, body)`` when the
        train completes, else ``None``."""
        if chunk.kind != KIND_TRAIN:
            raise SerializationError(
                "assembler fed a non-train mesh record"
            )
        done_seq = self._completed.get(chunk.round_index)
        if done_seq is not None and chunk.train_seq <= done_seq:
            return None  # duplicate of an already-delivered train
        state = self._partial.get(chunk.round_index)
        if state is not None:
            seq, num_chunks, pieces = state
            if chunk.train_seq < seq:
                return None  # stale resend attempt
            if chunk.train_seq > seq:
                state = None  # newer attempt supersedes the torn train
        if state is None:
            state = (chunk.train_seq, chunk.num_chunks, {})
            self._partial[chunk.round_index] = state
        seq, num_chunks, pieces = state
        if chunk.num_chunks != num_chunks:
            raise SerializationError(
                f"train round {chunk.round_index} seq {seq}: chunk claims "
                f"{chunk.num_chunks} chunks, train started with {num_chunks}"
            )
        if chunk.chunk_index in pieces:
            return None  # duplicate chunk
        pieces[chunk.chunk_index] = chunk.payload
        if sum(len(piece) for piece in pieces.values()) > self._max_bytes:
            del self._partial[chunk.round_index]
            raise SerializationError(
                f"train exceeds {self._max_bytes} bytes"
            )
        if len(pieces) < num_chunks:
            return None
        del self._partial[chunk.round_index]
        self._completed[chunk.round_index] = seq
        body = b"".join(pieces[index] for index in range(num_chunks))
        return chunk.round_index, body

    def trim_below(self, below: int) -> None:
        """Forget completion watermarks for rounds below a durable
        barrier (mirrors the router's retained-train trim)."""
        for round_index in [r for r in self._completed if r < below]:
            del self._completed[round_index]


__all__ = [
    "KIND_HELLO",
    "KIND_TRAIN",
    "MESH_CHUNK_BYTES",
    "MESH_MAGIC",
    "MESH_VERSION",
    "MeshChunk",
    "TrainAssembler",
    "decode_chunk",
    "decode_train_body",
    "encode_hello",
    "encode_train_body",
    "split_train",
]
