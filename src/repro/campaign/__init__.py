"""Adversarial conformance campaigns.

A *campaign* sweeps the cross-product of Byzantine strategies
(:mod:`repro.campaign.catalog`), network fault schedules
(:mod:`repro.campaign.schedules`), and protocol configurations
(:mod:`repro.campaign.matrix`), executing every cell with seeded
randomness and asserting the paper's guarantees after each run
(:mod:`repro.campaign.invariants`): agreement and validity among honest
outputs (Thm 3.1), ``max_bits_per_party`` within the analytic polylog
budget (:func:`repro.protocols.cost_model.pi_ba_per_party_budget`), the
gradecast properties, and the SRDS robustness / unforgeability verdicts
(Fig. 1 / Fig. 2).

Every failing run emits a single-line *repro spec* —
``campaign/1 config=... strategy=... schedule=... n=... seed=...
corrupt=...`` — that :mod:`repro.campaign.runner` re-executes exactly,
and :mod:`repro.campaign.minimize` shrinks to a minimal failing
instance by greedy delta-debugging over the corrupted set and the crash
schedule.  ``python -m repro campaign {run,replay,minimize,list}`` is
the operator entry point; sweep summaries land in
``results/BENCH_campaign.json`` via :mod:`repro.obs.bench`.
"""

from repro.campaign.catalog import (
    Strategy,
    StrategyCatalog,
    default_catalog,
)
from repro.campaign.invariants import Violation, check_ba_invariants
from repro.campaign.matrix import (
    CampaignCell,
    ProtocolConfig,
    default_matrix,
    enumerate_cells,
)
from repro.campaign.minimize import minimize_failure
from repro.campaign.runner import (
    CampaignSummary,
    RunOutcome,
    execute_spec,
    run_campaign,
)
from repro.campaign.schedules import Schedule, default_schedules
from repro.campaign.spec import CampaignSpec, format_spec, parse_spec

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignSummary",
    "ProtocolConfig",
    "RunOutcome",
    "Schedule",
    "Strategy",
    "StrategyCatalog",
    "Violation",
    "check_ba_invariants",
    "default_catalog",
    "default_matrix",
    "default_schedules",
    "enumerate_cells",
    "execute_spec",
    "format_spec",
    "minimize_failure",
    "parse_spec",
    "run_campaign",
]
