"""Rendering measured results in the shape of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Table1Row:
    """One protocol row: metadata plus the measured scaling series."""

    protocol: str
    paper_claim: str          # the paper's max-com-per-party column
    setup: str
    assumptions: str
    ns: Sequence[int]
    max_bits_per_party: Sequence[int]
    fitted_exponent: Optional[float] = None
    growth_class: Optional[str] = None


def format_bits(bits: float) -> str:
    """Human-readable bit counts."""
    units = ["b", "Kb", "Mb", "Gb", "Tb"]
    value = float(bits)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}Tb"


def render_table(rows: Sequence[Table1Row]) -> str:
    """Render measured rows alongside the paper's claims (Table 1 shape)."""
    header = (
        f"{'protocol':<34} {'paper claim':<14} {'setup':<14} "
        f"{'assumptions':<18} {'fit n^e':>8} {'class':<10} "
        + " ".join(f"{f'n={n}':>12}" for n in (rows[0].ns if rows else []))
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        exponent = (
            f"{row.fitted_exponent:+.2f}" if row.fitted_exponent is not None
            else "n/a"
        )
        cells = " ".join(
            f"{format_bits(bits):>12}" for bits in row.max_bits_per_party
        )
        lines.append(
            f"{row.protocol:<34} {row.paper_claim:<14} {row.setup:<14} "
            f"{row.assumptions:<18} {exponent:>8} "
            f"{(row.growth_class or ''):<10} {cells}"
        )
    return "\n".join(lines)


def render_series(title: str, ns: Sequence[int],
                  series: Sequence[float], unit: str = "") -> str:
    """A one-line measurement series for benchmark stdout."""
    points = ", ".join(
        f"n={n}: {value:,.0f}{unit}" for n, value in zip(ns, series)
    )
    return f"{title}: {points}"
