"""Control-channel codec and socket behavior."""

from __future__ import annotations

import socket
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.wire import (
    DONE,
    HEARTBEAT,
    KINDS,
    ROUND,
    ChannelClosed,
    Message,
    MessageChannel,
    accept_channel,
    open_listener,
)
from repro.errors import ClusterError
from repro.runtime.transport import Frame, _LENGTH

frames = st.builds(
    Frame,
    sender=st.integers(min_value=0, max_value=255),
    recipient=st.integers(min_value=0, max_value=255),
    payload=st.binary(max_size=48),
    sent_round=st.integers(min_value=0, max_value=500),
    deliver_round=st.integers(min_value=0, max_value=501),
    charge_bits=st.integers(min_value=-1, max_value=1 << 20),
    seq=st.integers(min_value=0, max_value=1 << 16),
)

json_fields = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ).filter(lambda k: k != "kind"),
    st.one_of(
        st.integers(min_value=-(1 << 31), max_value=1 << 31),
        st.booleans(),
        st.text(max_size=16),
    ),
    max_size=4,
)

messages = st.builds(
    Message,
    kind=st.sampled_from(KINDS),
    fields=json_fields,
    frames=st.lists(frames, max_size=6),
    blob=st.binary(max_size=128),
)


@given(messages)
def test_message_round_trip(message):
    decoded = Message.decode(message.encode()[_LENGTH.size:])
    assert decoded.kind == message.kind
    assert decoded.fields == message.fields
    assert decoded.frames == message.frames
    assert decoded.blob == message.blob


def test_unknown_kind_rejected_on_encode():
    with pytest.raises(ClusterError, match="kind"):
        Message("gremlin").encode()


def test_corrupt_body_rejected():
    with pytest.raises(ClusterError):
        Message.decode(b"\x07garbage-that-is-not-a-message")


def test_payload_round_trip():
    payload = {"outputs": {0: 1}, "trace": {0: [{"seq": 0}]}}
    message = Message(DONE, blob=Message.pack_payload(payload))
    assert message.payload() == payload
    assert Message(DONE).payload() is None


def _channel_pair():
    a, b = socket.socketpair()
    return MessageChannel(a), MessageChannel(b)


class TestMessageChannel:
    def test_send_recv(self):
        left, right = _channel_pair()
        try:
            left.send(Message(ROUND, {"round": 3},
                              frames=[Frame(0, 1, b"x")]))
            got = right.recv(timeout=5.0)
            assert got.kind == ROUND
            assert got.fields == {"round": 3}
            assert got.frames[0].payload == b"x"
        finally:
            left.close()
            right.close()

    def test_timeout_preserves_framing(self):
        """A deadline mid-message must not lose partial bytes."""
        left, right = _channel_pair()
        try:
            data = Message(HEARTBEAT).encode()
            # Dribble the first half, let the recv time out, then finish.
            left._sock.sendall(data[:3])
            with pytest.raises(TimeoutError):
                right.recv(timeout=0.05)
            left._sock.sendall(data[3:])
            assert right.recv(timeout=5.0).kind == HEARTBEAT
        finally:
            left.close()
            right.close()

    def test_clean_eof_raises_channel_closed(self):
        left, right = _channel_pair()
        left.close()
        with pytest.raises(ChannelClosed):
            right.recv(timeout=5.0)
        right.close()

    def test_eof_mid_message_is_a_torn_stream(self):
        left, right = _channel_pair()
        data = Message(HEARTBEAT).encode()
        left._sock.sendall(data[:-2])
        left.close()
        with pytest.raises(ClusterError, match="mid-message"):
            right.recv(timeout=5.0)
        right.close()

    def test_oversized_message_is_chunked_transparently(self, monkeypatch):
        """Bodies past the chunk threshold ride as ``part`` trains and
        reassemble on recv — the n=64 OWF gossip rounds depend on it."""
        import repro.cluster.wire as wire

        monkeypatch.setattr(wire, "_CHUNK_BYTES", 64)
        left, right = _channel_pair()
        try:
            big = Message(
                DONE,
                {"round": 9},
                frames=[Frame(0, 1, bytes([i]) * 40) for i in range(8)],
                blob=b"\xab" * 500,
            )
            left.send(Message(HEARTBEAT))
            left.send(big)
            left.send(Message(HEARTBEAT))
            assert right.recv(timeout=5.0).kind == HEARTBEAT
            got = right.recv(timeout=5.0)
            assert got.kind == DONE
            assert got.fields == {"round": 9}
            assert got.blob == big.blob
            assert [f.payload for f in got.frames] == [
                f.payload for f in big.frames
            ]
            assert right.recv(timeout=5.0).kind == HEARTBEAT
        finally:
            left.close()
            right.close()

    def test_chunked_transfer_survives_recv_timeout(self, monkeypatch):
        import repro.cluster.wire as wire

        monkeypatch.setattr(wire, "_CHUNK_BYTES", 64)
        left, right = _channel_pair()
        try:
            big = Message(DONE, blob=b"y" * 300)
            body = big.encode_body()
            pieces = [body[o:o + 64] for o in range(0, len(body), 64)]
            records = [
                Message(
                    wire.PART, {"last": i == len(pieces) - 1}, blob=p
                ).encode()
                for i, p in enumerate(pieces)
            ]
            left._sock.sendall(records[0])
            with pytest.raises(TimeoutError):
                right.recv(timeout=0.05)
            for record in records[1:]:
                left._sock.sendall(record)
            got = right.recv(timeout=5.0)
            assert got.kind == DONE and got.blob == big.blob
        finally:
            left.close()
            right.close()

    def test_concurrent_sends_stay_framed(self):
        """Heartbeat-thread + main-loop interleaving never tears frames."""
        left, right = _channel_pair()
        per_thread = 50

        def blast(kind):
            for _ in range(per_thread):
                left.send(Message(kind))

        threads = [
            threading.Thread(target=blast, args=(HEARTBEAT,)),
            threading.Thread(target=blast, args=(DONE,)),
        ]
        try:
            for t in threads:
                t.start()
            got = [right.recv(timeout=5.0).kind for _ in range(2 * per_thread)]
            assert sorted(got).count(HEARTBEAT) == per_thread
            assert sorted(got).count(DONE) == per_thread
        finally:
            for t in threads:
                t.join()
            left.close()
            right.close()


class TestListener:
    def test_accept_timeout(self):
        listener, _port = open_listener()
        try:
            with pytest.raises(TimeoutError):
                accept_channel(listener, timeout=0.05)
        finally:
            listener.close()

    def test_preferred_port_falls_back_when_busy(self):
        first, port = open_listener(port=0)
        try:
            second, actual = open_listener(
                port=port, retries=1, retry_delay=0.01
            )
            try:
                assert actual != port
            finally:
                second.close()
        finally:
            first.close()
