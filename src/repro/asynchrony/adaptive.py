"""The adaptive adversary: corrupt *after* observing the execution.

Every corruption strategy in :mod:`repro.campaign.catalog` is *static*:
the corrupted set is fixed before the first message flows, which is
exactly the model the paper's proofs assume.  King–Saia-style adaptive
adversaries are strictly stronger — they watch the protocol (committee
draws, coin outcomes, who speaks first) and only then choose whom to
corrupt.  This module is the seam for probing that gap empirically.

:class:`AdaptiveCorruption` is the *budget ledger*: the single place a
corruption is spent, enforced at corruption time (never at plan-build
time, because by construction there is no plan until the run ends).
Strategies receive the ledger plus the run's observation hooks —
the scheduler's ``wire_observer`` (every send, before delivery) and the
ABA coin's ``subscribe`` (every round's coin bit, at first query) — and
call :meth:`AdaptiveCorruption.try_corrupt`; a successful spend also
flips the party at the scheduler (:meth:`~repro.asynchrony.scheduler.
AsyncScheduler.corrupt`, worst-case silence).

The final :meth:`AdaptiveCorruption.plan` snapshot is an ordinary
:class:`~repro.net.adversary.CorruptionPlan`, so the campaign invariant
layer judges an adaptive run with the same machinery as a static one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.net.party import Envelope
from repro.protocols.aba import MSG_AUX, MSG_BVAL, decode_aba_message
from repro.errors import SerializationError


class AdaptiveCorruption:
    """Mutable corruption ledger with the budget enforced at spend time."""

    def __init__(self, n: int, budget: int) -> None:
        if budget < 0:
            raise ConfigurationError("corruption budget cannot be negative")
        self.n = n
        self.budget = budget
        self._corrupted: List[int] = []
        self._on_corrupt: List[Callable[[int], None]] = []

    def on_corrupt(self, callback: Callable[[int], None]) -> None:
        """Run ``callback(party_id)`` on every successful corruption
        (the driver wires the scheduler's silencing switch here)."""
        self._on_corrupt.append(callback)

    @property
    def corrupted(self) -> List[int]:
        """Corrupted ids in corruption order (a copy)."""
        return list(self._corrupted)

    @property
    def remaining(self) -> int:
        """Corruptions the budget still allows."""
        return self.budget - len(self._corrupted)

    def corrupt(self, party_id: int) -> None:
        """Spend one corruption; loud failure beyond the budget."""
        if not 0 <= party_id < self.n:
            raise ConfigurationError(f"party id {party_id} out of range")
        if party_id in self._corrupted:
            return
        if self.remaining <= 0:
            raise ConfigurationError(
                f"adaptive adversary exceeded its corruption budget "
                f"of {self.budget}"
            )
        self._corrupted.append(party_id)
        for callback in self._on_corrupt:
            callback(party_id)

    def try_corrupt(self, party_id: int) -> bool:
        """Spend one corruption if the budget allows; ``False`` if not
        (or if the party is already corrupted)."""
        if party_id in self._corrupted or self.remaining <= 0:
            return False
        self.corrupt(party_id)
        return True

    def plan(self) -> CorruptionPlan:
        """The run's final corruption set as a static plan snapshot."""
        return CorruptionPlan(
            corrupted=frozenset(self._corrupted),
            n=self.n,
            budget=self.budget,
        )


class AdaptiveStrategy:
    """Base class: observation hooks an adaptive strategy may implement.

    The ABA driver calls :meth:`observe_wire` for every charged send
    and :meth:`observe_coin` for every round's coin bit.  Strategies
    spend corruptions through the ledger handed to :meth:`bind`.
    """

    name = "adaptive"

    def __init__(self) -> None:
        self.ledger: Optional[AdaptiveCorruption] = None

    def bind(self, ledger: AdaptiveCorruption) -> None:
        self.ledger = ledger

    def observe_wire(self, now: float, envelope: Envelope) -> None:
        """Called at send time for every (charged) envelope."""

    def observe_coin(self, round_index: int, bit: int) -> None:
        """Called once per ABA round at the first coin query."""


class CoinChaserStrategy(AdaptiveStrategy):
    """Corrupt the parties whose estimate agrees with the coin.

    Watches BVAL traffic to learn each party's latest estimate; when
    round ``r``'s coin lands, it corrupts (up to the budget) the honest
    parties observed voting the coin's value in round ``r`` — the
    parties about to decide.  A static adversary cannot express this:
    the target set *is* the coin outcome.
    """

    name = "adaptive-coin"

    def __init__(self) -> None:
        super().__init__()
        # party → latest (round, bval value) observed on the wire.
        self._last_vote: Dict[int, tuple] = {}

    def observe_wire(self, now: float, envelope: Envelope) -> None:
        try:
            tag, round_index, value = decode_aba_message(envelope.payload)
        except SerializationError:
            return
        if tag == MSG_BVAL and value in (0, 1):
            seen = self._last_vote.get(envelope.sender)
            if seen is None or round_index >= seen[0]:
                self._last_vote[envelope.sender] = (round_index, value)

    def observe_coin(self, round_index: int, bit: int) -> None:
        assert self.ledger is not None
        for party_id in sorted(self._last_vote):
            seen_round, value = self._last_vote[party_id]
            if seen_round == round_index and value == bit:
                if not self.ledger.try_corrupt(party_id):
                    return

    def describe(self) -> str:
        return "corrupts coin-agreeing voters after each coin flip"


class FirstResponderStrategy(AdaptiveStrategy):
    """Corrupt the first parties to reach the AUX stage.

    The fastest parties are the ones driving the round toward its
    threshold; silencing them as they speak is the classic "kill the
    early birds" adaptive attack on committee-speed protocols.
    """

    name = "adaptive-first-aux"

    def observe_wire(self, now: float, envelope: Envelope) -> None:
        assert self.ledger is not None
        try:
            tag, _round_index, _value = decode_aba_message(envelope.payload)
        except SerializationError:
            return
        if tag == MSG_AUX and self.ledger.remaining > 0:
            self.ledger.try_corrupt(envelope.sender)

    def describe(self) -> str:
        return "corrupts the first parties to broadcast AUX"


#: Strategy registry keyed by name (used by campaign and CLI).
ADAPTIVE_STRATEGIES: Dict[str, Callable[[], AdaptiveStrategy]] = {
    CoinChaserStrategy.name: CoinChaserStrategy,
    FirstResponderStrategy.name: FirstResponderStrategy,
}


def adaptive_strategy_by_name(name: str) -> AdaptiveStrategy:
    """Construct a registered adaptive strategy."""
    factory = ADAPTIVE_STRATEGIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown adaptive strategy {name!r}; "
            f"known: {sorted(ADAPTIVE_STRATEGIES)}"
        )
    return factory()
