"""Round synchronization: the paper's synchronous model over async transports.

The paper (§1) assumes a synchronous network: messages sent in round
``r`` arrive by the start of round ``r + 1``.  The runtime recovers
exactly that model on top of an event-driven transport with a *round
barrier*: every non-halted, non-crashed party runs its
:meth:`~repro.net.party.Party.step` as its own coroutine; the barrier is
the point where all step coroutines of the round have completed **and**
the transport has flushed every in-flight frame.  Only then does the
next round's inbox become visible.

Determinism contract.  With no :class:`~repro.runtime.faults.FaultPlan`
(or a fault-free one), an execution over any transport is
*message-for-message identical* to :class:`~repro.net.simulator.
SynchronousNetwork`: inboxes are presented in the canonical
``(sent_round, sender, seq)`` order, which coincides with the
simulator's sorted-sender dispatch order; metrics are charged once per
frame at the same sizes; ``end_round`` fires once per barrier.  The
differential tests in ``tests/runtime/`` pin this equivalence.

A fault plan perturbs delivery *inside* the model's remaining freedom
(plus explicitly modeled crash/partition/delay faults); all its choices
are seeded, so a faulty schedule is as reproducible as a clean one.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics
from repro.net.party import Envelope, Party
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import current_phase
from repro.runtime import trace as trace_mod
from repro.runtime.faults import FaultPlan
from repro.runtime.trace import TraceRecorder
from repro.runtime.transport import Frame, Transport, make_transport


class RoundSynchronizer:
    """Drives :class:`Party` state machines over a :class:`Transport`
    in lockstep rounds, applying an optional fault plan at delivery."""

    def __init__(
        self,
        parties: Sequence[Party],
        transport: Transport,
        fault_plan: Optional[FaultPlan] = None,
        trace: Optional[TraceRecorder] = None,
        message_budget_per_party: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.parties: Dict[int, Party] = {}
        for party in parties:
            if party.party_id in self.parties:
                raise NetworkError(f"duplicate party id {party.party_id}")
            self.parties[party.party_id] = party
        if set(self.parties) != set(transport.party_ids):
            raise NetworkError(
                "transport party registry does not match the party set"
            )
        self.transport = transport
        self.metrics: CommunicationMetrics = transport.metrics
        self.faults = fault_plan if fault_plan is not None else FaultPlan()
        self.trace = trace
        self._budget = message_budget_per_party
        self._messages_sent: Dict[int, int] = {p: 0 for p in self.parties}
        self._seq: Dict[int, int] = {p: 0 for p in self.parties}
        # Frames accepted by the transport but not yet due for delivery
        # (fault-plan delays push deliver_round past the next barrier).
        self._staged: Dict[int, List[Frame]] = {p: [] for p in self.parties}
        self._crash_traced: set = set()
        self.round_index = 0
        # Observability: optional obs registry fed with round-barrier
        # latency, inbox depths, and injected-fault counters; the
        # transport feeds its own frame counters into the same registry.
        self.registry = registry
        if registry is not None:
            self._round_latency = registry.histogram(
                "repro_runtime_round_latency_seconds",
                "Wall time from round start to barrier completion",
            )
            self._rounds_total = registry.counter(
                "repro_runtime_rounds_total",
                "Synchronous rounds completed",
            )
            self._inbox_depth = registry.gauge(
                "repro_runtime_inbox_depth_max",
                "High-water per-party inbox depth at the round barrier",
            )
            self._faults_injected = registry.counter(
                "repro_runtime_faults_injected_total",
                "Faults the plan actually injected, by kind",
                ("kind",),
            )
            self._parties_gauge = registry.gauge(
                "repro_runtime_parties", "Parties driven by the synchronizer"
            )
            self._parties_gauge.set(len(self.parties))
            transport.bind_registry(registry)

    def _count_fault(self, kind: str) -> None:
        if self.registry is not None:
            self._faults_injected.inc(kind=kind)

    # -- public drivers ------------------------------------------------------

    async def run(self, max_rounds: int = 10_000) -> None:
        """Run until every party has halted (or crashed permanently)."""

        def finished() -> bool:
            return all(
                party.halted or self.faults.is_crashed(pid, self.round_index)
                for pid, party in self.parties.items()
            )

        await self._run_rounds(finished, max_rounds)

    async def run_until(
        self, party_ids: Iterable[int], max_rounds: int = 10_000
    ) -> None:
        """Run until the listed parties have all halted."""
        targets = list(party_ids)
        unknown = [p for p in targets if p not in self.parties]
        if unknown:
            raise NetworkError(
                f"unknown target party id(s) {sorted(unknown)}; "
                f"known ids are {sorted(self.parties)}"
            )

        def finished() -> bool:
            return all(self.parties[p].halted for p in targets)

        await self._run_rounds(finished, max_rounds)

    async def _run_rounds(self, finished, max_rounds: int) -> None:
        for _ in range(max_rounds):
            if finished():
                return
            await self.step_round()
        raise NetworkError(
            f"protocol did not terminate in {max_rounds} rounds"
        )

    # -- one round ------------------------------------------------------------

    async def step_round(self) -> None:
        """Execute one synchronous round: deliver, step all, barrier."""
        # lint: allow[DET002] reason=round-latency histogram feed; protocol state never reads it
        started = time.perf_counter() if self.registry is not None else 0.0
        round_index = self.round_index
        inboxes = self._take_due_inboxes(round_index)
        runnable: List[int] = []
        for party_id in sorted(self.parties):
            party = self.parties[party_id]
            if self.faults.is_crashed(party_id, round_index):
                if party_id not in self._crash_traced:
                    self._crash_traced.add(party_id)
                    self._trace(party_id, trace_mod.CRASH, round_index)
                    self._count_fault("crash")
                continue
            if self.faults.is_absent(party_id, round_index):
                self._count_fault("churn-absent")
                continue
            if party.halted:
                continue
            runnable.append(party_id)
        if self.registry is not None:
            for inbox in inboxes.values():
                self._inbox_depth.set_max(len(inbox))
        await asyncio.gather(
            *(
                self._party_round(
                    party_id, round_index, inboxes.get(party_id, [])
                )
                for party_id in runnable
            )
        )
        # The barrier: nothing sent this round is visible until every
        # in-flight frame has reached its destination buffer.
        await self.transport.flush()
        for party_id in self.parties:
            self._staged[party_id].extend(self.transport.collect(party_id))
        self.metrics.end_round()
        self.round_index += 1
        if self.registry is not None:
            self._rounds_total.inc()
            # lint: allow[DET002] reason=round-latency histogram feed; protocol state never reads it
            self._round_latency.observe(time.perf_counter() - started)

    async def _party_round(
        self, party_id: int, round_index: int, inbox: List[Envelope]
    ) -> None:
        """One party's turn: trace the barrier, step, ship its envelopes."""
        party = self.parties[party_id]
        self._trace(
            party_id,
            trace_mod.ROUND_BARRIER,
            round_index,
            queue_depth=len(inbox),
        )
        if self.trace is not None:
            for envelope in inbox:
                self._trace(
                    party_id,
                    trace_mod.RECV,
                    round_index,
                    peer=envelope.sender,
                    bits=envelope.size_bits(),
                )
        outgoing = party.step(round_index, inbox)
        for envelope in outgoing:
            await self._ship(party_id, round_index, envelope)
        if party.halted:
            self._trace(
                party_id,
                trace_mod.HALT,
                round_index,
                output=repr(party.output),
            )

    async def _ship(
        self, sender: int, round_index: int, envelope: Envelope
    ) -> None:
        """Budget-check, fault-filter, and transport-send one envelope."""
        if self._budget is not None:
            self._messages_sent[sender] += 1
            if self._messages_sent[sender] > self._budget:
                raise NetworkError(
                    f"party {sender} exceeded its message budget "
                    f"of {self._budget}"
                )
        if self.faults.drops(round_index, sender, envelope.recipient):
            self._trace(
                sender,
                trace_mod.DROP,
                round_index,
                peer=envelope.recipient,
                bits=envelope.size_bits(),
            )
            self._count_fault("partition-drop")
            return
        seq = self._seq[sender]
        self._seq[sender] = seq + 1
        delay = self.faults.delay_of(
            round_index, sender, envelope.recipient, seq
        )
        if delay > 0:
            self._count_fault("delay")
        if self.faults.is_absent(
            envelope.recipient, round_index + 1 + delay
        ):
            # Churn: nobody is listening yet at the delivery round, so
            # the frame dies before the transport (and is not charged).
            self._trace(
                sender,
                trace_mod.DROP,
                round_index,
                peer=envelope.recipient,
                bits=envelope.size_bits(),
            )
            self._count_fault("churn-drop")
            return
        frame = Frame(
            sender=sender,
            recipient=envelope.recipient,
            payload=envelope.payload,
            sent_round=round_index,
            deliver_round=round_index + 1 + delay,
            # Charge exactly what the envelope declares: for plain
            # envelopes this is 8 * len(payload); replayed envelopes may
            # carry an exact analytic bit count.
            charge_bits=envelope.size_bits(),
            seq=seq,
            # Flow attribution: replayed envelopes carry the phase that
            # was active at record time; live protocol envelopes get the
            # span open right now.
            phase=getattr(envelope, "phase", "") or (current_phase() or ""),
        )
        self._trace(
            sender,
            trace_mod.SEND,
            round_index,
            peer=envelope.recipient,
            bits=frame.bits(),
        )
        await self.transport.send(sender, frame)

    # -- delivery ---------------------------------------------------------------

    def _take_due_inboxes(self, round_index: int) -> Dict[int, List[Envelope]]:
        """Pop every staged frame due by this round, in canonical order,
        then apply duplication and reordering from the fault plan."""
        inboxes: Dict[int, List[Envelope]] = {}
        for party_id, staged in self._staged.items():
            due = [f for f in staged if f.deliver_round <= round_index]
            if not due:
                continue
            self._staged[party_id] = [
                f for f in staged if f.deliver_round > round_index
            ]
            due.sort(key=lambda f: (f.sent_round, f.sender, f.seq))
            delivered: List[Frame] = []
            for frame in due:
                delivered.append(frame)
                if self.faults.duplicates(
                    frame.sent_round, frame.sender, frame.recipient, frame.seq
                ):
                    delivered.append(frame)
                    self._count_fault("duplicate")
            delivered = self.faults.inbox_order(
                round_index, party_id, delivered
            )
            inboxes[party_id] = [
                Envelope(
                    sender=f.sender, recipient=f.recipient, payload=f.payload
                )
                for f in delivered
            ]
        return inboxes

    def _trace(self, party_id: int, kind: str, round_index: int, **fields) -> None:
        if self.trace is not None:
            self.trace.record(party_id, kind, round_index, **fields)

    def outputs(self) -> Dict[int, object]:
        """Map of party id to output, halted parties only (simulator API)."""
        return {
            party_id: party.output
            for party_id, party in self.parties.items()
            if party.halted
        }


@dataclass
class RuntimeResult:
    """Outcome of one runtime execution."""

    outputs: Dict[int, object]
    metrics: CommunicationMetrics
    rounds: int
    trace: Optional[TraceRecorder]


def run_parties(
    parties: Sequence[Party],
    *,
    transport: Union[str, Transport] = "local",
    metrics: Optional[CommunicationMetrics] = None,
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    until: Optional[Iterable[int]] = None,
    max_rounds: int = 10_000,
    message_budget_per_party: Optional[int] = None,
) -> RuntimeResult:
    """Synchronous facade: run party machines over the async runtime.

    ``transport`` is either a :class:`Transport` instance or a factory
    kind (``"local"`` / ``"tcp"``).  ``until`` lists the party ids whose
    halting ends the run (default: everyone, as in
    :meth:`SynchronousNetwork.run`).  Returns a :class:`RuntimeResult`
    whose ``metrics`` is the live ledger (call ``.snapshot()`` for
    tables).
    """
    return asyncio.run(
        run_parties_async(
            parties,
            transport=transport,
            metrics=metrics,
            fault_plan=fault_plan,
            trace=trace,
            registry=registry,
            until=until,
            max_rounds=max_rounds,
            message_budget_per_party=message_budget_per_party,
        )
    )


async def run_parties_async(
    parties: Sequence[Party],
    *,
    transport: Union[str, Transport] = "local",
    metrics: Optional[CommunicationMetrics] = None,
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    until: Optional[Iterable[int]] = None,
    max_rounds: int = 10_000,
    message_budget_per_party: Optional[int] = None,
) -> RuntimeResult:
    """Async core of :func:`run_parties` (use inside an event loop)."""
    party_ids = [party.party_id for party in parties]
    if isinstance(transport, str):
        transport_obj = make_transport(transport, party_ids, metrics)
    else:
        transport_obj = transport
    await transport_obj.start()
    try:
        synchronizer = RoundSynchronizer(
            parties,
            transport_obj,
            fault_plan=fault_plan,
            trace=trace,
            registry=registry,
            message_budget_per_party=message_budget_per_party,
        )
        if until is None:
            await synchronizer.run(max_rounds=max_rounds)
        else:
            await synchronizer.run_until(until, max_rounds=max_rounds)
        return RuntimeResult(
            outputs=synchronizer.outputs(),
            metrics=transport_obj.metrics,
            rounds=synchronizer.round_index,
            trace=trace,
        )
    finally:
        await transport_obj.stop()
