"""A simulated SNARK / proof-carrying-data (PCD) system.

The paper's bare-PKI SRDS construction (Thm 2.8) assumes SNARKs with
linear extraction, from which Bitansky et al. build PCD for
logarithmic-depth DAGs.  Real SNARKs cannot be built in a dependency-free
offline Python repo, so — per the substitution rule recorded in DESIGN.md
— we implement the closest synthetic equivalent that exercises the same
code path:

* **Succinctness**: proofs are a constant 32 bytes regardless of witness
  size, so the communication accounting (the quantity the paper is about)
  is identical to a real PCD instantiation up to constants.
* **Soundness against modeled adversaries**: ``Setup`` samples a secret
  MAC key (the "trapdoor") kept inside the prover object.  A proof for
  statement ``x`` is ``MAC(trapdoor, x)``, and ``prove`` only issues it
  after checking the NP relation on the supplied witness.  Experiment
  adversaries receive the public CRS handle but never the trapdoor, so
  they cannot mint proofs for false statements (they *can* replay proofs
  for true ones — exactly as with a real SNARK).
* **Recursive composition (PCD)**: a compliance predicate may itself call
  ``verify`` on inner proofs carried in the witness; since the prover
  holds the verification capability, recursion works at any depth.

The one property intentionally *not* modeled is public verifiability
against unbounded provers: verification goes through the
:class:`SnarkSystem` object, which plays the role of the knowledge
assumption.  No protocol-level logic depends on the distinction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.crypto.prf import prf
from repro.errors import ProofError

PROOF_BYTES = 32

# A compliance predicate receives (statement, witness) and decides the
# NP relation.  Statements and witnesses are canonical byte strings.
Relation = Callable[[bytes, bytes], bool]


@dataclass(frozen=True)
class Proof:
    """A succinct argument for one statement under one registered relation."""

    relation_name: str
    tag: bytes

    def encode(self) -> bytes:
        """Wire form of the proof: the constant-size tag."""
        return self.tag

    def size_bytes(self) -> int:
        """Proof size on the wire — constant, the point of a SNARK."""
        return PROOF_BYTES


class SnarkSystem:
    """A designated-setup succinct argument system with registered relations.

    One instance corresponds to one CRS.  Relations are registered by name
    (the circuits of a real SNARK deployment); proving checks the relation
    with the actual witness, verification checks only the constant-size
    tag.  The trapdoor never leaves the instance.
    """

    def __init__(self, crs_seed: bytes) -> None:
        self._trapdoor = prf(crs_seed, "snark/trapdoor")
        self.crs = prf(crs_seed, "snark/public-crs")
        self._relations: Dict[str, Relation] = {}

    def register_relation(self, name: str, relation: Relation) -> None:
        """Register an NP relation (a "circuit") under a unique name."""
        if name in self._relations:
            raise ProofError(f"relation {name!r} already registered")
        self._relations[name] = relation

    def has_relation(self, name: str) -> bool:
        """Whether a relation with this name is registered."""
        return name in self._relations

    def prove(self, relation_name: str, statement: bytes, witness: bytes) -> Proof:
        """Produce a proof, after checking the relation with the witness.

        Raises :class:`ProofError` if the witness does not satisfy the
        relation — an honest prover with a bad witness is a bug, and a
        simulated adversary must not be able to get proofs of falsehoods.
        """
        relation = self._relations.get(relation_name)
        if relation is None:
            raise ProofError(f"unknown relation {relation_name!r}")
        if not relation(statement, witness):
            raise ProofError(
                f"witness does not satisfy relation {relation_name!r}"
            )
        return Proof(relation_name=relation_name, tag=self._tag(relation_name, statement))

    def verify(self, relation_name: str, statement: bytes, proof: Proof) -> bool:
        """Verify a proof; False on any mismatch (never raises for bad tags).

        The tag itself binds the relation name (it is part of the MAC
        input), so ``proof.relation_name`` is advisory metadata and is not
        trusted here — decoded wire proofs may carry a stale name.
        """
        if relation_name not in self._relations:
            return False
        return proof.tag == self._tag(relation_name, statement)

    def _tag(self, relation_name: str, statement: bytes) -> bytes:
        return prf(
            self._trapdoor,
            "snark/proof-tag",
            relation_name.encode("utf-8"),
            statement,
        )


def forge_random_proof(relation_name: str, rng) -> Proof:
    """An adversarial proof attempt: a uniformly random tag.

    Helper for negative tests — succeeds against a sound system only with
    probability 2^-256.
    """
    return Proof(relation_name=relation_name, tag=rng.random_bytes(PROOF_BYTES))
