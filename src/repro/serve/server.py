"""The agreement-as-a-service gateway server.

One asyncio TCP server multiplexes everything on a single port:

* newline-delimited JSON control connections (:mod:`repro.serve.wire`)
  for submit/await/status/cancel — many concurrent clients, each served
  by a lightweight coroutine while the CPU-bound protocol executions
  run on the :class:`~repro.serve.sessions.SessionManager` thread pool;
* plain ``GET /metrics`` HTTP requests, answered with the Prometheus
  text exposition of the gateway's :class:`MetricsRegistry` — the
  server sniffs the first line of each connection, so ops tooling needs
  no JSON shim.

Shutdown is graceful by construction: ``SIGTERM``/``SIGINT`` (or the
``shutdown`` op) stop admission first, drain in-flight sessions against
a deadline (escalating to cooperative cancel), flush a final metrics
snapshot to ``--metrics-out``, then release the port and let the
process exit 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.errors import GatewayError
from repro.net.bind import bound_port, start_asyncio_server
from repro.obs.flow import FlowLedger
from repro.obs.flush import flush_metrics_file, write_atomic_text
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanLog
from repro.serve import wire
from repro.serve.sessions import SessionManager
from repro.serve.setup_cache import SetupCache

#: Extra bind retries (jittered) before falling back to an OS port.
_BIND_RETRY_DELAYS = (0.05, 0.1, 0.2)


@dataclass(frozen=True)
class GatewayConfig:
    """Operator-facing knobs of one gateway process."""

    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 2
    retry_after: float = 0.5
    drain_deadline: float = 30.0
    cache_entries: int = 8
    metrics_out: Optional[Path] = None
    port_file: Optional[Path] = None
    #: Flow-ledger capacity; 0 disables wire-level flow accounting.
    flow_cells: int = 0
    #: Where to write the final ``repro-flow/1`` report (implies a
    #: default ``flow_cells`` when left at 0).
    flow_out: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise GatewayError("max_sessions must be at least 1")
        if self.drain_deadline <= 0:
            raise GatewayError("drain_deadline must be positive")
        if self.flow_cells < 0:
            raise GatewayError("flow_cells cannot be negative")

    @property
    def flow_enabled(self) -> bool:
        return self.flow_cells > 0 or self.flow_out is not None


def _http_response(status: str, body: str) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status}\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


class GatewayServer:
    """Lifecycle owner: listener, session manager, shutdown sequence."""

    def __init__(
        self,
        config: GatewayConfig,
        registry: Optional[MetricsRegistry] = None,
        manager: Optional[SessionManager] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.flow: Optional[FlowLedger] = None
        self.span_log: Optional[SpanLog] = None
        if manager is None and config.flow_enabled:
            spill = (
                config.flow_out.with_name(config.flow_out.name + ".spill.jsonl")
                if config.flow_out is not None
                else None
            )
            self.flow = FlowLedger(
                max_cells=config.flow_cells or 65536,
                spill_path=spill,
                registry=self.registry,
            )
            self.span_log = SpanLog()
        self.manager = manager if manager is not None else SessionManager(
            max_sessions=config.max_sessions,
            retry_after=config.retry_after,
            cache=SetupCache(
                max_entries=config.cache_entries, registry=self.registry
            ),
            registry=self.registry,
            flow=self.flow,
            span_log=self.span_log,
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._shutting_down = False
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        self._drained_clean: Optional[bool] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> int:
        """Bind, install signal handlers, and begin accepting clients."""
        if self._server is not None:
            raise GatewayError("gateway already started")
        self._server, _busy = await start_asyncio_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            _BIND_RETRY_DELAYS,
        )
        self.port = bound_port(self._server)
        if self.config.port_file is not None:
            self.config.port_file.write_text(f"{self.port}\n")
        self._install_signal_handlers()
        return self.port

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.begin_shutdown, signal.Signals(signum).name
                )
            except (NotImplementedError, RuntimeError):
                # Platform without loop signal support (or a nested
                # loop): shutdown stays reachable via the wire op.
                pass

    def begin_shutdown(self, reason: str = "request") -> None:
        """Idempotent entry into the graceful-shutdown sequence."""
        if self._shutting_down:
            return
        self._shutting_down = True
        self.manager.stop_admitting()
        self._shutdown_task = asyncio.get_running_loop().create_task(
            self._finish_shutdown(reason)
        )

    async def _finish_shutdown(self, reason: str) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained_clean = await self.manager.drain(
            self.config.drain_deadline
        )
        self.manager.close()
        self.flush_metrics()
        # One scheduling grace so connection handlers woken by the last
        # sessions' completion flush their response lines before the
        # loop (and its transports) is torn down.
        await asyncio.sleep(0.05)
        self._stopped.set()

    def flush_metrics(self) -> None:
        """Flush the final snapshot (and flow report) atomically."""
        if self.config.metrics_out is not None:
            flush_metrics_file(
                self.config.metrics_out, self.registry, flow=self.flow
            )
        if self.config.flow_out is not None and self.flow is not None:
            name = self.config.flow_out.stem
            if name.startswith("FLOW_"):
                name = name[len("FLOW_"):]
            payload = self.flow.report(name)
            self.flow.close()
            write_atomic_text(
                self.config.flow_out,
                json.dumps(payload, sort_keys=True, indent=2) + "\n",
            )

    async def serve_until_stopped(self) -> int:
        """Block until shutdown completes; the process exit status."""
        await self._stopped.wait()
        return 0 if self._drained_clean else 1

    async def aclose(self) -> None:
        """Test convenience: force the full shutdown sequence now."""
        self.begin_shutdown("aclose")
        await self._stopped.wait()

    # -- connection handling ------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if line.startswith(b"GET "):
                await self._serve_http(line, writer)
                return
            while line:
                response = await self._handle_line(line)
                writer.write(wire.encode_line(response))
                await writer.drain()
                line = await reader.readline()
        except (
            ConnectionResetError, BrokenPipeError, asyncio.TimeoutError
        ):
            pass
        except ValueError:
            # StreamReader limit overrun: the line could not even be
            # buffered.  Best-effort reject, then drop the connection.
            try:
                writer.write(wire.encode_line(wire.reject(
                    "bad-request", "request line exceeds stream limit"
                )))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_http(
        self, request_line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP request (scrapers speak GET /metrics)."""
        parts = request_line.decode("ascii", "replace").split()
        target = parts[1] if len(parts) > 1 else ""
        if target in ("/metrics", "/metrics/"):
            body = self.registry.render()
            writer.write(_http_response("200 OK", body))
        else:
            writer.write(_http_response("404 Not Found", "not found\n"))
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        """Dispatch one decoded NDJSON request to its handler."""
        try:
            request = wire.decode_request(line.rstrip(b"\r\n"))
        except GatewayError as exc:
            return wire.reject("bad-request", str(exc))
        op = request["op"]
        if op == "ping":
            return wire.ok(
                protocol=wire.PROTOCOL, port=self.port, pid=os.getpid(),
                shutting_down=self._shutting_down,
            )
        if op == "submit":
            return self.manager.submit(request)
        if op == "await":
            return await self.manager.await_result(
                request["session"], request.get("timeout")
            )
        if op == "status":
            return self.manager.status(request.get("session"))
        if op == "cancel":
            return self.manager.cancel(request["session"])
        if op == "metrics":
            return wire.ok(metrics=self.registry.render())
        if op == "shutdown":
            self.begin_shutdown("shutdown op")
            return wire.ok(state="draining")
        return wire.reject("bad-request", f"unhandled op {op!r}")


async def run_gateway(config: GatewayConfig) -> int:
    """Start one gateway and serve until graceful shutdown; exit status."""
    server = GatewayServer(config)
    port = await server.start()
    print(
        f"repro gateway listening on {config.host}:{port} "
        f"(max_sessions={config.max_sessions}, pid={os.getpid()})",
        flush=True,
    )
    status = await server.serve_until_stopped()
    print(f"repro gateway drained and stopped (status={status})", flush=True)
    return status
