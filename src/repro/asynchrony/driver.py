"""One-call ABA executions over the asynchronous scheduler.

:func:`run_aba` assembles the whole stack — parties, common coin,
latency model / adversarial schedule, static Byzantine behaviors,
churn fault plans, and the adaptive-corruption seam — and returns a
result whose ``metrics`` ledger is the same
:class:`~repro.net.metrics.CommunicationMetrics` the synchronous
backends charge, so ``max_bits_per_party`` lands in BENCH records
comparable to π_ba's.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import ConfigurationError
from repro.net.latency import LatencyModel, latency_model_by_name
from repro.net.metrics import CommunicationMetrics
from repro.net.party import AsyncParty, Envelope
from repro.protocols.aba import (
    ABAParty,
    CommonCoin,
    EquivocatingABAParty,
    SilentABAParty,
)
from repro.asynchrony.adaptive import (
    AdaptiveCorruption,
    AdaptiveStrategy,
    adaptive_strategy_by_name,
)
from repro.asynchrony.scheduler import AsyncResult, AsyncScheduler
from repro.runtime.faults import FaultPlan
from repro.utils.randomness import Randomness

#: Static Byzantine behaviors :func:`run_aba` can install.
BYZANTINE_BEHAVIORS = ("silent", "equivocate")


@dataclass
class ABARunResult:
    """Outcome of one asynchronous binary-agreement execution."""

    outputs: Dict[int, int]
    rounds: int
    metrics: CommunicationMetrics
    deliveries: int
    virtual_time: float
    #: Final corrupted set — static corruptions plus adaptive spends.
    corrupted: List[int]
    #: Inputs the honest parties actually ran with (for validity checks).
    inputs: Dict[int, int]
    trace: List[Tuple[int, int, int, int]] = field(default_factory=list)

    @property
    def agreed_value(self) -> Optional[int]:
        """The single decided value, or ``None`` on disagreement."""
        decided = set(self.outputs.values())
        return decided.pop() if len(decided) == 1 else None


def run_aba(
    n: int,
    *,
    seed: int = 0,
    inputs: Optional[Dict[int, int]] = None,
    policy: str = "latency",
    latency: Union[str, LatencyModel, None] = None,
    fault_plan: Optional[FaultPlan] = None,
    corrupted: Optional[Set[int]] = None,
    byzantine: str = "silent",
    adaptive: Union[str, AdaptiveStrategy, None] = None,
    adaptive_budget: Optional[int] = None,
    metrics: Optional[CommunicationMetrics] = None,
    coin_committee: Optional[Sequence[int]] = None,
    max_deliveries: Optional[int] = None,
) -> ABARunResult:
    """Run MMR14 ABA for ``n`` parties under the asynchronous model.

    Args:
        n: party count (ids ``0..n-1``).
        seed: drives *everything* — coin session, latency draws, and the
            adversarial schedule — through disjoint forks, so one seed
            reproduces the run exactly.
        inputs: party → input bit; defaults to the split ``i % 2``.
        policy: ``"latency"`` or ``"adversarial"`` (see
            :class:`~repro.asynchrony.scheduler.AsyncScheduler`).
        latency: a :class:`~repro.net.latency.LatencyModel` or one of
            the names :func:`~repro.net.latency.latency_model_by_name`
            accepts; ``None`` means fixed next-step delivery.
        fault_plan: crash/churn/partition plan (round = ⌊virtual time⌋).
        corrupted: statically corrupted ids, realized as ``byzantine``
            behavior (``"silent"`` or ``"equivocate"``).
        adaptive: an adaptive strategy (instance or registry name); its
            corruptions are budgeted by ``adaptive_budget`` (default:
            ``f`` minus the static corruptions) and enforced at
            corruption time.
        metrics: an existing ledger to charge (default: a fresh one).
        coin_committee: parties charged for each coin invocation
            (default: everyone — ABA's coin is not committee-sampled).
        max_deliveries: scheduler delivery cap before loud failure.
    """
    if n < 1:
        raise ConfigurationError("need at least one party")
    if byzantine not in BYZANTINE_BEHAVIORS:
        raise ConfigurationError(
            f"unknown byzantine behavior {byzantine!r}; "
            f"expected one of {BYZANTINE_BEHAVIORS}"
        )
    party_ids = list(range(n))
    f = (n - 1) // 3
    static_corrupt = set(corrupted or ())
    unknown = static_corrupt - set(party_ids)
    if unknown:
        raise ConfigurationError(f"corrupted ids out of range: {sorted(unknown)}")
    root = Randomness(seed).fork("aba-run")
    ledger = metrics if metrics is not None else CommunicationMetrics()
    model: Optional[LatencyModel]
    if isinstance(latency, str):
        model = latency_model_by_name(latency, n)
    else:
        model = latency

    coin = CommonCoin(
        root.fork("coin"),
        metrics=ledger,
        committee=list(coin_committee) if coin_committee is not None else party_ids,
    )
    if inputs is None:
        inputs = {pid: pid % 2 for pid in party_ids}
    honest_inputs = {
        pid: bit for pid, bit in inputs.items() if pid not in static_corrupt
    }
    parties: List[AsyncParty] = []
    for pid in party_ids:
        if pid in static_corrupt:
            if byzantine == "equivocate":
                parties.append(EquivocatingABAParty(pid, party_ids))
            else:
                parties.append(SilentABAParty(pid))
        else:
            parties.append(ABAParty(pid, party_ids, inputs[pid], coin))

    strategy: Optional[AdaptiveStrategy] = None
    if adaptive is not None:
        strategy = (
            adaptive_strategy_by_name(adaptive)
            if isinstance(adaptive, str)
            else adaptive
        )
        budget = (
            adaptive_budget
            if adaptive_budget is not None
            else max(0, f - len(static_corrupt))
        )
        adaptive_ledger = AdaptiveCorruption(n, budget)
        strategy.bind(adaptive_ledger)
        coin.subscribe(strategy.observe_coin)

    def wire_observer(now: float, envelope: Envelope) -> None:
        if strategy is not None:
            strategy.observe_wire(now, envelope)

    scheduler = AsyncScheduler(
        parties,
        policy=policy,
        latency=model,
        rng=root.fork("sched"),
        metrics=ledger,
        fault_plan=fault_plan,
        wire_observer=wire_observer if strategy is not None else None,
        max_deliveries=max_deliveries,
    )
    for pid in static_corrupt:
        if byzantine == "silent":
            scheduler.corrupt(pid)
        else:
            # Equivocators must keep talking, but will never decide —
            # excuse them from the completion requirement.
            scheduler.excuse(pid)
    if strategy is not None:
        assert strategy.ledger is not None
        strategy.ledger.on_corrupt(scheduler.corrupt)

    result: AsyncResult = asyncio.run(scheduler.run())

    final_corrupted = sorted(
        static_corrupt
        | (set(strategy.ledger.corrupted) if strategy is not None else set())
    )
    honest_rounds = [
        party.round
        for party in parties
        if isinstance(party, ABAParty)
        and party.party_id not in scheduler.corrupted
    ]
    return ABARunResult(
        outputs={
            pid: value
            for pid, value in result.outputs.items()
            if pid not in final_corrupted
        },
        rounds=max(honest_rounds, default=0),
        metrics=result.metrics,
        deliveries=result.deliveries,
        virtual_time=result.virtual_time,
        corrupted=final_corrupted,
        inputs=honest_inputs,
        trace=result.trace,
    )
