"""Seeded delivery-latency models — the shared delivery-model seam.

Two execution models consume the same latency abstraction:

* the synchronous runtime's :class:`~repro.runtime.faults.FaultPlan`
  asks :meth:`LatencyModel.extra_rounds` how many rounds *beyond* the
  model's promised next-round delivery a message is late (0 keeps the
  paper's §1 synchrony; anything positive is model-breaking there);
* the asynchronous scheduler (:mod:`repro.asynchrony.scheduler`) asks
  :meth:`LatencyModel.delivery_delay` for the message's virtual transit
  time, where 1.0 is one nominal round-trip unit and there is no
  delivery promise at all.

Determinism contract (same as :class:`~repro.runtime.faults.FaultPlan`):
every draw forks the caller's seeded rng with a label keyed by the
message coordinates ``(sent_round, sender, recipient, seq)``, so the
schedule depends only on the seed and the message set — never on event
loop interleaving — and a replay with the same seed is exact.

:class:`RandomDelayLatency` is the promotion of the campaign's
historical ``random-delay`` schedule knobs
(``random_delay_probability`` / ``random_delay_max`` on ``FaultPlan``):
it reproduces ``FaultPlan.delay_of``'s draw sequence *exactly* — same
fork label, same bernoulli-then-range order — so the old schedule can be
expressed as a latency model without moving a single delivery
(pinned by ``tests/net/test_latency.py``).
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Optional, Sequence

from repro.errors import ConfigurationError
from repro.utils.randomness import Randomness


class LatencyModel(abc.ABC):
    """Per-message delivery-latency distribution, seeded and replayable.

    Subclasses draw from ``rng.fork(<coordinate-keyed label>)`` only;
    they hold no mutable state, so one instance can serve many runs.
    """

    #: Stable identifier (appears in campaign schedule names and BENCH
    #: records).
    name: str = "latency"

    #: Whether the model draws randomness (FaultPlan requires an rng
    #: exactly when this is True).
    needs_rng: bool = True

    @abc.abstractmethod
    def extra_rounds(
        self,
        rng: Optional[Randomness],
        sent_round: int,
        sender: int,
        recipient: int,
        seq: int,
    ) -> int:
        """Extra delivery rounds beyond the synchronous ``r + 1``."""

    def delivery_delay(
        self,
        rng: Optional[Randomness],
        sent_round: int,
        sender: int,
        recipient: int,
        seq: int,
    ) -> float:
        """Virtual transit time for the asynchronous scheduler.

        Default: one nominal unit plus the integral extra rounds — so a
        model defined for the synchronous seam is immediately usable
        asynchronously.  Models with naturally continuous delays
        override this.
        """
        return 1.0 + float(
            self.extra_rounds(rng, sent_round, sender, recipient, seq)
        )

    @property
    @abc.abstractmethod
    def bound(self) -> int:
        """Upper bound on :meth:`extra_rounds` (for run-length caps)."""


class FixedLatency(LatencyModel):
    """Every message is exactly ``rounds`` rounds late (0 = synchrony)."""

    name = "fixed"
    needs_rng = False

    def __init__(self, rounds: int = 0) -> None:
        if rounds < 0:
            raise ConfigurationError("fixed latency cannot be negative")
        self.rounds = rounds

    def extra_rounds(self, rng, sent_round, sender, recipient, seq) -> int:
        return self.rounds

    @property
    def bound(self) -> int:
        return self.rounds


class UniformLatency(LatencyModel):
    """Uniform extra delay in ``[low, high]`` rounds per message."""

    name = "uniform"

    def __init__(self, low: int = 0, high: int = 2) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(
                f"uniform latency needs 0 <= low <= high, got [{low}, {high}]"
            )
        self.low = low
        self.high = high

    def _coin(self, rng, sent_round, sender, recipient, seq) -> Randomness:
        if rng is None:
            raise ConfigurationError("UniformLatency draws; pass a seeded rng")
        return rng.fork(
            f"latency/uniform/{sent_round}/{sender}/{recipient}/{seq}"
        )

    def extra_rounds(self, rng, sent_round, sender, recipient, seq) -> int:
        coin = self._coin(rng, sent_round, sender, recipient, seq)
        return coin.random_int_range(self.low, self.high)

    def delivery_delay(self, rng, sent_round, sender, recipient, seq) -> float:
        coin = self._coin(rng, sent_round, sender, recipient, seq)
        return 1.0 + coin.uniform(float(self.low), float(self.high))

    @property
    def bound(self) -> int:
        return self.high


class LogNormalLatency(LatencyModel):
    """Heavy-tailed extra delay: ``min(cap, exp(N(mu, sigma)) - 1)``.

    The subtraction centers the mode near zero extra delay (the bulk of
    messages arrive on time; the tail straggles), and ``cap`` keeps the
    synchronous run-length bound finite.
    """

    name = "lognormal"

    def __init__(
        self, mu: float = 0.0, sigma: float = 0.6, cap: int = 3
    ) -> None:
        if sigma < 0:
            raise ConfigurationError("lognormal sigma cannot be negative")
        if cap < 0:
            raise ConfigurationError("lognormal cap cannot be negative")
        self.mu = mu
        self.sigma = sigma
        self.cap = cap

    def _draw(self, rng, sent_round, sender, recipient, seq) -> float:
        if rng is None:
            raise ConfigurationError(
                "LogNormalLatency draws; pass a seeded rng"
            )
        coin = rng.fork(
            f"latency/lognormal/{sent_round}/{sender}/{recipient}/{seq}"
        )
        return max(0.0, coin.lognormal(self.mu, self.sigma) - 1.0)

    def extra_rounds(self, rng, sent_round, sender, recipient, seq) -> int:
        return min(self.cap, int(self._draw(
            rng, sent_round, sender, recipient, seq
        )))

    def delivery_delay(self, rng, sent_round, sender, recipient, seq) -> float:
        return 1.0 + min(
            float(self.cap),
            self._draw(rng, sent_round, sender, recipient, seq),
        )

    @property
    def bound(self) -> int:
        return self.cap


class PartitionHealLatency(LatencyModel):
    """Cross-partition messages are held until the heal round.

    Messages inside either group flow normally; messages crossing the
    cut before ``heal_round`` are delayed so they arrive exactly when
    the partition heals (contrast :class:`~repro.runtime.faults.
    Partition`, which *drops* cross-cut traffic — here the link is slow,
    not down, so the bits are still charged and eventually delivered).
    """

    name = "partition-heal"
    needs_rng = False

    def __init__(
        self,
        group_a: FrozenSet[int],
        group_b: FrozenSet[int],
        heal_round: int,
    ) -> None:
        if heal_round < 0:
            raise ConfigurationError("heal round must be >= 0")
        if group_a & group_b:
            raise ConfigurationError("partition groups must be disjoint")
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        self.heal_round = heal_round

    def _crosses(self, sender: int, recipient: int) -> bool:
        return (sender in self.group_a and recipient in self.group_b) or (
            sender in self.group_b and recipient in self.group_a
        )

    def extra_rounds(self, rng, sent_round, sender, recipient, seq) -> int:
        if not self._crosses(sender, recipient):
            return 0
        # Delivery would be at sent_round + 1; hold it to heal_round.
        return max(0, self.heal_round - (sent_round + 1))

    def delivery_delay(self, rng, sent_round, sender, recipient, seq) -> float:
        return 1.0 + float(
            self.extra_rounds(rng, sent_round, sender, recipient, seq)
        )

    @property
    def bound(self) -> int:
        return self.heal_round


class RandomDelayLatency(LatencyModel):
    """The campaign's historical ``random-delay`` knobs as a model.

    Draw-for-draw identical to ``FaultPlan.delay_of`` with
    ``random_delay_probability=probability`` /
    ``random_delay_max=max_rounds``: the fork label and the
    bernoulli-then-range sequence are the exact ones the plan used, so
    swapping the schedule over to this model moves no delivery.
    """

    name = "random-delay"

    def __init__(self, probability: float, max_rounds: int) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError("probability outside [0, 1]")
        if probability > 0 and max_rounds < 1:
            raise ConfigurationError("random delays need max_rounds >= 1")
        self.probability = probability
        self.max_rounds = max_rounds

    def extra_rounds(self, rng, sent_round, sender, recipient, seq) -> int:
        if self.probability <= 0:
            return 0
        if rng is None:
            raise ConfigurationError(
                "RandomDelayLatency draws; pass a seeded rng"
            )
        coin = rng.fork(f"delay/{sent_round}/{sender}/{recipient}/{seq}")
        if coin.bernoulli(self.probability):
            return coin.random_int_range(1, self.max_rounds)
        return 0

    @property
    def bound(self) -> int:
        return self.max_rounds if self.probability > 0 else 0


def halves_partition_heal(
    party_ids: Sequence[int], heal_round: int
) -> PartitionHealLatency:
    """Split the party set into two halves healing at ``heal_round``."""
    ids = sorted(party_ids)
    mid = len(ids) // 2
    return PartitionHealLatency(
        group_a=frozenset(ids[:mid]),
        group_b=frozenset(ids[mid:]),
        heal_round=heal_round,
    )


def latency_model_by_name(name: str, n: int) -> LatencyModel:
    """Construct a named model with the repo's default parameters.

    ``n`` sizes the party-set-dependent models (partition-heal).  The
    names are the ones campaign schedules and the CLI expose.
    """
    if name == "fixed":
        return FixedLatency(rounds=0)
    if name == "uniform":
        return UniformLatency(low=0, high=2)
    if name == "lognormal":
        return LogNormalLatency(mu=0.0, sigma=0.6, cap=3)
    if name == "partition-heal":
        return halves_partition_heal(range(n), heal_round=3)
    if name == "random-delay":
        return RandomDelayLatency(probability=0.15, max_rounds=2)
    raise ConfigurationError(f"unknown latency model {name!r}")


#: Names :func:`latency_model_by_name` accepts, in presentation order.
LATENCY_MODEL_NAMES = (
    "fixed", "uniform", "lognormal", "partition-heal", "random-delay",
)
