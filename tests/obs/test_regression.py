"""The bench regression gate: exact bit gating, warn-only wall clocks."""

from __future__ import annotations

import copy
import json

from repro.obs.bench import bench_payload, write_bench_json
from repro.obs.regression import (
    BenchDiff,
    diff_bench,
    diff_dirs,
    diff_files,
    diffs_to_json,
    pair_bench_files,
    render_diffs,
)


def _payload(**overrides):
    base = bench_payload(
        "unit",
        snapshot={
            "total_bits": 1000, "max_bits_per_party": 100,
            "max_locality": 5, "max_messages_per_party": 20,
            "rounds": 9, "num_parties": 8,
        },
        phase_breakdown={
            "srds-aggregate": {
                "total_bits": 800, "max_bits_per_party": 80,
                "messages": 12, "parties": 8,
            },
        },
        wall_times={"run": 1.0},
    )
    base.update(overrides)
    return base


class TestDiffBench:
    def test_identical_is_ok(self):
        diff = diff_bench(_payload(), _payload())
        assert diff.ok
        assert diff.hard_failures == []
        assert diff.warnings == []

    def test_bit_drift_is_hard_failure(self):
        fresh = _payload()
        fresh["snapshot"]["total_bits"] = 1100  # +10%
        fresh["phase_breakdown"]["srds-aggregate"]["total_bits"] = 880
        diff = diff_bench(_payload(), fresh)
        assert not diff.ok
        assert len(diff.hard_failures) == 2
        assert any("snapshot.total_bits" in f for f in diff.hard_failures)
        assert any("srds-aggregate" in f for f in diff.hard_failures)

    def test_any_drift_fails_even_one_bit(self):
        fresh = _payload()
        fresh["snapshot"]["max_bits_per_party"] = 101
        assert not diff_bench(_payload(), fresh).ok

    def test_wall_regression_is_warn_only(self):
        fresh = _payload()
        fresh["wall_times"]["run"] = 1.9  # 1.9x > 1.5x tolerance
        diff = diff_bench(_payload(), fresh)
        assert diff.ok
        assert len(diff.warnings) == 1
        assert "warn-only" in diff.warnings[0]

    def test_wall_within_tolerance_is_silent(self):
        fresh = _payload()
        fresh["wall_times"]["run"] = 1.4
        assert diff_bench(_payload(), fresh).warnings == []

    def test_wall_tolerance_configurable(self):
        fresh = _payload()
        fresh["wall_times"]["run"] = 1.2
        assert diff_bench(_payload(), fresh, wall_tolerance=0.1).warnings

    def test_one_sided_snapshot_key_warns_not_fails(self):
        fresh = _payload()
        del fresh["snapshot"]["max_locality"]
        diff = diff_bench(_payload(), fresh)
        assert diff.ok
        assert any("one side only" in w for w in diff.warnings)

    def test_one_sided_phase_warns_not_fails(self):
        fresh = _payload()
        fresh["phase_breakdown"]["new-phase"] = copy.deepcopy(
            fresh["phase_breakdown"]["srds-aggregate"]
        )
        diff = diff_bench(_payload(), fresh)
        assert diff.ok
        assert any("new-phase" in w for w in diff.warnings)

    def test_null_walls_carry_no_signal(self):
        base = _payload()
        base["wall_times"]["run"] = None
        assert diff_bench(base, _payload()).warnings == []


class TestDirs:
    def _write(self, directory, payload):
        return write_bench_json(directory, payload)

    def test_pairing_and_gate(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        self._write(base_dir, _payload())
        self._write(fresh_dir, _payload())
        self._write(fresh_dir, _payload(name="only_fresh"))
        pairs = pair_bench_files(base_dir, fresh_dir)
        assert [name for name, _, _ in pairs] == ["only_fresh", "unit"]
        results = diff_dirs(base_dir, fresh_dir)
        assert all(r.ok for r in results)
        missing = next(r for r in results if r.name == "only_fresh")
        assert "no baseline" in missing.warnings[0]

    def test_diff_files(self, tmp_path):
        a = self._write(tmp_path, _payload())
        fresh = _payload()
        fresh["snapshot"]["rounds"] = 10
        b = write_bench_json(tmp_path / "f", fresh)
        assert not diff_files(a, b).ok


class TestRendering:
    def test_render_and_json(self):
        results = [
            BenchDiff(name="ok_one"),
            BenchDiff(name="bad", hard_failures=["snapshot.x: 1 != 2"],
                      warnings=["wall y"]),
        ]
        text = render_diffs(results)
        assert "ok_one: ok" in text
        assert "bad: FAIL" in text
        assert "HARD snapshot.x" in text
        document = json.loads(diffs_to_json(results))
        assert document["ok"] is False
        assert len(document["results"]) == 2

    def test_render_empty(self):
        assert "no benchmark records" in render_diffs([])


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        from repro.__main__ import main

        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        write_bench_json(base_dir, _payload())
        write_bench_json(fresh_dir, _payload())
        assert main(
            ["obs", "diff", str(base_dir), str(fresh_dir)]
        ) == 0
        regressed = _payload()
        regressed["snapshot"]["total_bits"] = 1100
        write_bench_json(fresh_dir, regressed)
        assert main(
            ["obs", "diff", str(base_dir), str(fresh_dir)]
        ) == 1
        out = capsys.readouterr().out
        assert "HARD" in out

    def test_usage_errors(self, tmp_path):
        from repro.__main__ import main

        assert main(["obs", "diff"]) == 2
        assert main(
            ["obs", "diff", str(tmp_path), str(tmp_path / "nope")]
        ) == 2
