"""Tests for the simulated threshold FHE."""

import pytest

from repro.errors import CryptoError
from repro.mpc.fhe import EXPANSION, OVERHEAD_BYTES, ThresholdFHE
from repro.utils.randomness import Randomness


@pytest.fixture
def fhe(rng):
    return ThresholdFHE(num_holders=7, threshold=4, rng=rng)


class TestEncryptDecrypt:
    def test_roundtrip(self, fhe, rng):
        ciphertext = fhe.encrypt(b"secret-input", rng)
        shares = [fhe.decryption_share(i, ciphertext) for i in range(4)]
        assert fhe.threshold_decrypt(ciphertext, shares) == b"secret-input"

    def test_below_threshold_fails(self, fhe, rng):
        ciphertext = fhe.encrypt(b"x", rng)
        shares = [fhe.decryption_share(i, ciphertext) for i in range(3)]
        with pytest.raises(CryptoError):
            fhe.threshold_decrypt(ciphertext, shares)

    def test_duplicate_shares_do_not_count_twice(self, fhe, rng):
        ciphertext = fhe.encrypt(b"x", rng)
        share = fhe.decryption_share(0, ciphertext)
        with pytest.raises(CryptoError):
            fhe.threshold_decrypt(ciphertext, [share] * 5)

    def test_forged_shares_rejected(self, fhe, rng):
        ciphertext = fhe.encrypt(b"x", rng)
        genuine = [fhe.decryption_share(i, ciphertext) for i in range(3)]
        from repro.mpc.fhe import DecryptionShare

        forged = DecryptionShare(
            ciphertext_handle=ciphertext.handle,
            holder_index=5,
            tag=bytes(32),
        )
        with pytest.raises(CryptoError):
            fhe.threshold_decrypt(ciphertext, genuine + [forged])

    def test_cross_ciphertext_shares_rejected(self, fhe, rng):
        a = fhe.encrypt(b"a", rng)
        b = fhe.encrypt(b"b", rng)
        shares_for_b = [fhe.decryption_share(i, b) for i in range(4)]
        with pytest.raises(CryptoError):
            fhe.threshold_decrypt(a, shares_for_b)

    def test_ciphertext_size_model(self, fhe, rng):
        ciphertext = fhe.encrypt(b"12345678", rng)
        assert ciphertext.size_bytes == 8 * EXPANSION + OVERHEAD_BYTES


class TestEvaluate:
    def test_function_applied(self, fhe, rng):
        values = [b"\x01", b"\x02", b"\x03"]
        ciphertexts = [fhe.encrypt(v, rng.fork(str(i)))
                       for i, v in enumerate(values)]
        total = fhe.evaluate(
            lambda plain: bytes([sum(p[0] for p in plain)]),
            ciphertexts,
            output_size=1,
        )
        shares = [fhe.decryption_share(i, total) for i in range(4)]
        assert fhe.threshold_decrypt(total, shares) == b"\x06"

    def test_output_padded_to_size(self, fhe, rng):
        ciphertext = fhe.encrypt(b"x", rng)
        result = fhe.evaluate(lambda plain: b"ab", [ciphertext],
                              output_size=4)
        shares = [fhe.decryption_share(i, result) for i in range(4)]
        assert fhe.threshold_decrypt(result, shares) == b"ab\x00\x00"

    def test_unknown_handle_rejected(self, fhe, rng):
        other = ThresholdFHE(7, 4, Randomness(99))
        foreign = other.encrypt(b"x", rng)
        with pytest.raises(CryptoError):
            fhe.evaluate(lambda plain: plain[0], [foreign], output_size=1)


class TestCeremony:
    def test_invalid_threshold_rejected(self, rng):
        with pytest.raises(CryptoError):
            ThresholdFHE(5, 0, rng)
        with pytest.raises(CryptoError):
            ThresholdFHE(5, 6, rng)

    def test_holder_index_validated(self, fhe):
        with pytest.raises(CryptoError):
            fhe.holder_secret(7)

    def test_holder_secrets_distinct(self, fhe):
        secrets = {fhe.holder_secret(i) for i in range(7)}
        assert len(secrets) == 7
