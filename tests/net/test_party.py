"""Tests for the Party base class helpers."""

from repro.net.party import Envelope, Party, SilentParty


class MinimalParty(Party):
    def step(self, round_index, inbox):
        if round_index == 0:
            return [self.send(1, b"hello")]
        return self.halt("done")


class TestPartyHelpers:
    def test_send_stamps_own_id(self):
        party = MinimalParty(7)
        envelope = party.send(3, b"payload")
        assert envelope.sender == 7
        assert envelope.recipient == 3
        assert envelope.payload == b"payload"

    def test_halt_sets_state_and_returns_empty(self):
        party = MinimalParty(0)
        result = party.halt({"output": 1})
        assert result == []
        assert party.halted
        assert party.output == {"output": 1}

    def test_initial_state(self):
        party = MinimalParty(0)
        assert not party.halted
        assert party.output is None

    def test_silent_party_never_sends(self):
        silent = SilentParty(5)
        for round_index in range(5):
            assert silent.step(round_index, []) == []
        assert not silent.halted

    def test_envelope_size(self):
        assert Envelope(0, 1, b"").size_bits() == 0
        assert Envelope(0, 1, bytes(10)).size_bits() == 80
