"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish protocol-level faults (e.g. a Byzantine
agreement run that could not complete) from local misuse (e.g. malformed
signatures passed to an aggregator).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when protocol or scheme parameters are inconsistent.

    Examples: a corruption budget of at least ``n / 3``, a committee size
    larger than the party set, or a tree arity below two.
    """


class CryptoError(ReproError):
    """Base class for failures inside cryptographic substrates."""


class SerializationError(ReproError):
    """Raised when encoding or decoding a wire object fails."""


class SignatureError(CryptoError):
    """Raised when a signature is structurally invalid for an operation.

    Note that a signature that is well formed but does not verify is
    reported through a ``False`` return value from ``verify``, not through
    this exception; the exception marks *misuse* (wrong key type, empty
    aggregation batch, out-of-range index), not mere invalidity.
    """


class KeyError_(CryptoError):
    """Raised for malformed or missing key material.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class ProofError(CryptoError):
    """Raised when constructing a succinct proof fails (bad witness)."""


class SecretSharingError(CryptoError):
    """Raised by Shamir/VSS operations on inconsistent share sets."""


class PKIError(ReproError):
    """Raised for public-key-infrastructure misuse.

    Examples: registering a key twice, replacing a key in a trusted PKI,
    or querying a party that never registered.
    """


class NetworkError(ReproError):
    """Raised by the synchronous network simulator on misuse.

    Examples: sending from an unknown party id, delivering outside a
    round boundary, or exceeding a configured message budget.
    """


class ProtocolError(ReproError):
    """Raised when a protocol cannot continue due to a broken invariant.

    Honest-party code raises this only for conditions the paper's model
    rules out (e.g. a corrupted supreme committee); adversarial message
    garbage is *tolerated*, not raised.
    """


class AgreementFailure(ProtocolError):
    """Raised when a BA execution terminates without agreement.

    This is a *verdict*, used by test harnesses and experiment drivers; the
    protocols themselves always terminate and report outputs, and the
    driver checks agreement/validity afterwards.
    """


class TreeError(ReproError):
    """Raised for malformed almost-everywhere communication trees."""


class ClusterError(ReproError):
    """Raised by the multi-process cluster layer on unrecoverable faults.

    Examples: a worker that keeps dying past its restart budget, a
    corrupt or version-mismatched checkpoint file, or a control-channel
    message that violates the supervisor⇄worker protocol.
    """


class ExperimentError(ReproError):
    """Raised when a security experiment (Fig. 1 / Fig. 2) is misused."""


class GatewayError(ReproError):
    """Raised by the agreement-as-a-service gateway (:mod:`repro.serve`).

    Examples: a malformed client request line, a session spec naming an
    unknown workload or scheme, or a client operation against a gateway
    that already shut down.  Backpressure is *not* an error — an
    over-capacity submit gets a structured reject response with a
    retry-after hint, never an exception.
    """


#: The closed set of exception types that decoding *adversarial bytes* can
#: legitimately raise: serialization framing errors, crypto-substrate
#: rejections, and the built-ins that malformed structure triggers
#: (short tuples -> ValueError, missing fields -> IndexError/KeyError,
#: wrong shapes -> TypeError, oversized ints -> OverflowError).
#:
#: Byzantine-tolerant verify/decode paths catch exactly this tuple and
#: return a rejection — catching plain ``Exception`` there would also
#: swallow genuine verifier bugs (``lint``'s EXC001 enforces this).
MALFORMED_INPUT_ERRORS = (
    SerializationError,
    CryptoError,
    ValueError,
    IndexError,
    KeyError,
    TypeError,
    OverflowError,
)
