"""Greedy shrinking of failing campaign runs.

Classic one-minimal delta debugging over the two adversarial inputs a
repro spec pins: the corrupted party set and the crash schedule.  The
minimizer repeatedly tries removing one element — re-executing the spec
via the same :func:`~repro.campaign.runner.execute_spec` path a replay
uses — and keeps the removal whenever the run still fails with the same
*failure signature* (the sorted violation names, or the raised error
type).  The fixpoint is 1-minimal: removing any single remaining
element makes the failure disappear or change shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.campaign.runner import RunOutcome, execute_spec
from repro.campaign.spec import CampaignSpec, format_spec
from repro.errors import ConfigurationError


@dataclass
class MinimizationResult:
    """The shrink trace: original failure, minimal failure, and steps."""

    original: RunOutcome
    minimized: RunOutcome
    signature: Tuple[str, ...]
    attempts: int = 0
    removed_corrupt: List[int] = field(default_factory=list)
    removed_crashes: List[int] = field(default_factory=list)

    @property
    def shrunk(self) -> bool:
        return bool(self.removed_corrupt or self.removed_crashes)


def minimize_failure(
    spec: CampaignSpec,
    *,
    catalog=None,
    matrix=None,
    max_attempts: int = 256,
    emit=None,
) -> MinimizationResult:
    """Shrink a failing spec to a 1-minimal failing instance.

    Raises :class:`~repro.errors.ConfigurationError` if the spec does
    not fail to begin with (nothing to minimize).
    """
    say = emit if emit is not None else (lambda line: None)
    original = execute_spec(spec, catalog=catalog, matrix=matrix)
    if not original.failed:
        raise ConfigurationError(
            f"spec does not fail, nothing to minimize: {format_spec(spec)}"
        )
    signature = original.signature
    current = original
    attempts = 0
    removed_corrupt: List[int] = []
    removed_crashes: List[int] = []

    def try_spec(candidate: CampaignSpec) -> Optional[RunOutcome]:
        nonlocal attempts
        if attempts >= max_attempts:
            return None
        attempts += 1
        outcome = execute_spec(candidate, catalog=catalog, matrix=matrix)
        if outcome.failed and outcome.signature == signature:
            return outcome
        return None

    progress = True
    while progress and attempts < max_attempts:
        progress = False
        # Shrink the corrupted set, one party at a time.
        corrupt = current.spec.corrupt or ()
        for party in list(corrupt):
            reduced = tuple(p for p in corrupt if p != party)
            candidate = current.spec.with_corrupt(reduced)
            outcome = try_spec(candidate)
            if outcome is not None:
                say(
                    f"  -corrupt {party}: still fails "
                    f"({len(reduced)} corrupt left)"
                )
                removed_corrupt.append(party)
                current = outcome
                progress = True
                break
        if progress:
            continue
        # Shrink the crash schedule, one entry at a time.
        crashes = current.spec.crashes or {}
        for party in sorted(crashes):
            reduced_crashes = {
                p: r for p, r in crashes.items() if p != party
            }
            candidate = current.spec.with_crashes(
                reduced_crashes if reduced_crashes else None
            )
            outcome = try_spec(candidate)
            if outcome is not None:
                say(
                    f"  -crash {party}: still fails "
                    f"({len(reduced_crashes)} crashes left)"
                )
                removed_crashes.append(party)
                current = outcome
                progress = True
                break
    return MinimizationResult(
        original=original,
        minimized=current,
        signature=signature,
        attempts=attempts,
        removed_corrupt=removed_corrupt,
        removed_crashes=removed_crashes,
    )
