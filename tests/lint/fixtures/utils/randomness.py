"""DET001 allowlist fixture: this path mirrors utils/randomness.py.

The sanctioned wrapper is the one place allowed to touch :mod:`random`
directly — the default ``det001_allow`` covers this file by path.
"""

import os
import random


def raw_entropy() -> bytes:
    return os.urandom(8)  # allowed here (and only here)


def global_draw() -> float:
    return random.random()  # allowed here (and only here)
