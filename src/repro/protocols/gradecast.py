"""Gradecast — graded broadcast (Feldman–Micali), t < n/3.

The third classic committee primitive (alongside phase-king BA and
reliable broadcast): a sender distributes a value and every party
outputs a pair ``(value, grade)`` with ``grade ∈ {0, 1, 2}`` such that

* if the sender is honest, every honest party outputs (v, 2);
* if any honest party outputs grade 2 for v, every honest party outputs
  v with grade >= 1 (no honest pair ever holds different values at
  grades >= 1);
* grades of honest parties differ by at most 1.

Gradecast is the standard stepping stone from almost-agreement to
agreement inside committees (it is how several of the Table-1 protocols
structure their committee interactions), and it gives the repo's
committee toolbox full coverage of the classic primitives.

Rounds:

1. the sender sends v to all;
2. every party echoes the value it received to all;
3. every party, having tallied echoes: if some value w was echoed by
   >= n - t parties it *supports* w, sending ``support(w)``; finally it
   grades: >= n - t supports for w → (w, 2); >= t + 1 supports → (w, 1);
   otherwise (default, 0).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SerializationError
from repro.net.party import Envelope, Party
from repro.obs.spans import span
from repro.utils.serialization import decode_uint, encode_uint

_VALUE, _ECHO, _SUPPORT = 0, 1, 2
DEFAULT_VALUE = 0


def _encode(tag: int, value: int) -> bytes:
    return encode_uint(tag) + encode_uint(value)


def _decode(payload: bytes) -> Optional[Tuple[int, int]]:
    try:
        tag, pos = decode_uint(payload, 0)
        value, pos = decode_uint(payload, pos)
    except SerializationError:
        return None
    if pos != len(payload) or tag not in (_VALUE, _ECHO, _SUPPORT):
        return None
    return tag, value


class GradecastParty(Party):
    """One participant; output is the pair ``(value, grade)``."""

    def __init__(
        self,
        party_id: int,
        members: Sequence[int],
        max_faults: int,
        sender: int,
        sender_value: Optional[int] = None,
    ) -> None:
        super().__init__(party_id)
        if 3 * max_faults >= len(members):
            raise ConfigurationError("gradecast needs t < n/3")
        self.members = list(members)
        self.t = max_faults
        self.sender = sender
        self.sender_value = sender_value
        self._received: Optional[int] = None
        self._echoes: Counter = Counter()
        self._echo_senders: set = set()
        self._supports: Counter = Counter()
        self._support_senders: set = set()

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        for envelope in inbox:
            decoded = _decode(envelope.payload)
            if decoded is None:
                continue
            tag, value = decoded
            if tag == _VALUE and envelope.sender == self.sender:
                if self._received is None:
                    self._received = value
            elif tag == _ECHO and envelope.sender not in self._echo_senders:
                self._echo_senders.add(envelope.sender)
                self._echoes[value] += 1
            elif (
                tag == _SUPPORT
                and envelope.sender not in self._support_senders
            ):
                self._support_senders.add(envelope.sender)
                self._supports[value] += 1

        n = len(self.members)
        if round_index == 0:
            if self.party_id == self.sender:
                value = (
                    self.sender_value if self.sender_value is not None else 0
                )
                return [
                    self.send(peer, _encode(_VALUE, value))
                    for peer in self.members
                ]
            return []
        if round_index == 1:
            if self._received is None:
                return []
            return [
                self.send(peer, _encode(_ECHO, self._received))
                for peer in self.members
            ]
        if round_index == 2:
            for value, count in self._echoes.items():
                if count >= n - self.t:
                    return [
                        self.send(peer, _encode(_SUPPORT, value))
                        for peer in self.members
                    ]
            return []
        # round 3: grade and halt.
        for value, count in self._supports.items():
            if count >= n - self.t:
                return self.halt((value, 2))
        for value, count in self._supports.items():
            if count >= self.t + 1:
                return self.halt((value, 1))
        return self.halt((DEFAULT_VALUE, 0))


class EquivocatingGradecastSender(GradecastParty):
    """A corrupt sender splitting the committee between two values."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index == 0 and self.party_id == self.sender:
            return [
                self.send(peer, _encode(_VALUE, position % 2))
                for position, peer in enumerate(self.members)
            ]
        return super().step(round_index, inbox)


def run_gradecast(
    members: Sequence[int],
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
    equivocating_sender: bool = False,
):
    """Convenience driver; returns ``(outputs, metrics)`` with outputs
    mapping honest ids to (value, grade) pairs."""
    from repro.net.metrics import CommunicationMetrics
    from repro.net.party import SilentParty
    from repro.net.simulator import SynchronousNetwork

    members = sorted(members)
    if sender not in members:
        raise ConfigurationError("sender must be a member")
    byzantine_set = set(byzantine)
    t = max(1, (len(members) - 1) // 3)
    if len(byzantine_set) + (1 if equivocating_sender else 0) > t:
        raise ConfigurationError("too many byzantine parties for t < n/3")

    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(SilentParty(member))
        elif member == sender and equivocating_sender:
            parties.append(
                EquivocatingGradecastSender(
                    member, members, t, sender, sender_value=value
                )
            )
        else:
            parties.append(
                GradecastParty(
                    member, members, t, sender,
                    sender_value=value if member == sender else None,
                )
            )
    metrics = CommunicationMetrics()
    network = SynchronousNetwork(parties, metrics=metrics)
    honest = [
        m for m in members
        if m not in byzantine_set
        and not (equivocating_sender and m == sender)
    ]
    with span("gradecast", n=len(members), sender=sender):
        network.run_until(honest, max_rounds=6)
    outputs = {member: network.parties[member].output for member in honest}
    return outputs, metrics


def check_gradecast_guarantees(
    outputs: Dict[int, Tuple[int, int]], sender_honest: bool,
    sender_value: int,
) -> bool:
    """The three gradecast properties, as a checkable predicate."""
    pairs = list(outputs.values())
    if sender_honest:
        if not all(pair == (sender_value, 2) for pair in pairs):
            return False
    grades = [grade for _, grade in pairs]
    if max(grades) - min(grades) > 1:
        return False
    graded_values = {value for value, grade in pairs if grade >= 1}
    if len(graded_values) > 1:
        return False
    if any(grade == 2 for _, grade in pairs):
        if not all(grade >= 1 for _, grade in pairs):
            return False
    return True
