"""BENCH_<name>.json records: schema, round-tripping, rendering."""

import pytest

from repro.analysis.report import render_bench_record
from repro.net.metrics import CommunicationMetrics
from repro.obs.bench import (
    SCHEMA,
    bench_payload,
    load_bench_json,
    write_bench_json,
)
from repro.obs.spans import recording, span


def _payload():
    metrics = CommunicationMetrics()
    with recording():
        with span("prf-boost"):
            metrics.record_message(0, 1, 64)
    return bench_payload(
        "unit_test",
        snapshot=metrics.snapshot(),
        phase_breakdown=metrics.phase_breakdown(),
        wall_times={"run": 0.5},
        extra={"n": 2},
    )


class TestBenchRecords:
    def test_payload_is_plain_json(self):
        payload = _payload()
        assert payload["schema"] == SCHEMA
        assert payload["snapshot"]["total_bits"] == 64
        breakdown = payload["phase_breakdown"]["prf-boost"]
        assert isinstance(breakdown, dict)
        assert breakdown["total_bits"] == 128  # sent + received convention

    def test_write_and_load_round_trip(self, tmp_path):
        payload = _payload()
        path = write_bench_json(tmp_path, payload)
        assert path.name == "BENCH_unit_test.json"
        assert load_bench_json(path) == payload

    def test_write_rejects_foreign_schema(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_json(tmp_path, {"schema": "other", "name": "x"})

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            load_bench_json(path)

    def test_render_bench_record(self):
        text = render_bench_record(_payload())
        assert "unit_test" in text
        assert "prf-boost" in text
        assert "run: 0.5000s" in text
