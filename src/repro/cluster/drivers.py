"""Convenience drivers: protocols over the cluster, plus the scaling bench.

These mirror the runtime drivers (:mod:`repro.runtime.drivers`) on the
multi-process substrate:

* :func:`run_phase_king_cluster` — the committee BA as real
  message-passing machines sharded across workers;
* :func:`run_balanced_ba_cluster` — π_ba's headline workload: phase 1
  executes Fig. 3 in the hybrid model against a
  :class:`~repro.runtime.replay.RecordingLedger` (outputs, certificate
  and reference snapshot untouched), phase 2 replays the recorded wire
  traffic across worker processes, charging the supervisor's ledger at
  the routing layer and applying the hybrid charges verbatim — exactly
  the :func:`~repro.runtime.drivers.run_balanced_ba_runtime` recipe;
* :func:`run_cluster_bench` — the ``BENCH_cluster.json`` record: π_ba
  replay at 1/2/4 workers with wall-clock scaling and differential
  parity (outputs, ``max_bits_per_party``, and full per-party tallies)
  against a single-process :func:`~repro.runtime.synchronizer.run_parties`
  execution of the same script.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.cluster.job import gradecast_job, phase_king_job, replay_job
from repro.cluster.supervisor import (
    ClusterConfig,
    ClusterResult,
    ClusterSupervisor,
)
from repro.errors import ClusterError
from repro.net.metrics import CommunicationMetrics
from repro.obs.bench import bench_payload, write_bench_json
from repro.runtime.replay import (
    RecordingLedger,
    apply_func_ops,
    build_replay_parties,
    tallies_equal,
)
from repro.runtime.synchronizer import run_parties
from repro.utils.randomness import Randomness


def _config(
    config: Optional[ClusterConfig], num_workers: int
) -> ClusterConfig:
    if config is not None:
        return config
    return ClusterConfig(num_workers=num_workers)


def _worker_import_seconds() -> float:
    """Cold ``import repro.cluster.worker`` time in a fresh interpreter.

    This is the per-spawn tax every worker process pays before it can
    answer its first control message.  The PEP 562 lazy package inits
    exist to keep it flat as the protocol layers grow — the bench
    records it so regressions (an eager import creeping back into an
    ``__init__``) show up next to the wall times they would inflate.
    """
    import subprocess
    import sys

    probe = (
        "import time; t = time.perf_counter(); "
        "import repro.cluster.worker; "
        "print(time.perf_counter() - t)"
    )
    try:
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            timeout=60.0,
            check=True,
        )
        return float(out.stdout.strip())
    except (OSError, ValueError, subprocess.SubprocessError):
        return -1.0


def run_phase_king_cluster(
    inputs: Dict[int, int],
    byzantine: Sequence[int] = (),
    *,
    num_workers: int = 2,
    checkpoint_interval: int = 8,
    config: Optional[ClusterConfig] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
) -> Tuple[Dict[int, int], ClusterResult]:
    """Phase-king BA sharded across worker processes.

    Returns ``(honest_outputs, cluster_result)`` — the honest outputs
    match :func:`repro.runtime.drivers.run_phase_king_runtime` on a
    fault-free plan, and ``cluster_result.metrics`` is the supervisor's
    authoritative ledger.
    """
    job = phase_king_job(
        inputs, byzantine, checkpoint_interval=checkpoint_interval
    )
    supervisor = ClusterSupervisor(
        job, _config(config, num_workers), run_dir=run_dir
    )
    result = supervisor.run(resume=resume)
    outputs = {
        member: result.outputs[member] for member in job.target_ids()
    }
    return outputs, result


def run_gradecast_cluster(
    n: int,
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
    *,
    num_workers: int = 2,
    checkpoint_interval: int = 8,
    config: Optional[ClusterConfig] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
) -> Tuple[Dict[int, Any], ClusterResult]:
    """Gradecast sharded across worker processes.

    Returns ``(honest_outputs, cluster_result)`` — honest outputs are
    ``(value, grade)`` pairs matching
    :func:`repro.protocols.gradecast.run_gradecast` on the same
    configuration.
    """
    job = gradecast_job(
        n, sender, value, byzantine,
        checkpoint_interval=checkpoint_interval,
    )
    supervisor = ClusterSupervisor(
        job, _config(config, num_workers), run_dir=run_dir
    )
    result = supervisor.run(resume=resume)
    outputs = {
        member: result.outputs[member] for member in job.target_ids()
    }
    return outputs, result


def record_balanced_ba_script(
    inputs: Dict[int, int],
    plan,
    scheme,
    params,
    rng: Randomness,
    adversary=None,
):
    """Phase 1 of the replay recipe: run Fig. 3 against a recording
    ledger; returns ``(reference_result, replay_script)``."""
    from repro.protocols.balanced_ba import BalancedBA

    recorder = RecordingLedger()
    protocol = BalancedBA(
        inputs, plan, scheme, params, rng, adversary, metrics=recorder
    )
    reference = protocol.run()
    return reference, recorder.script()


def run_balanced_ba_cluster(
    inputs: Dict[int, int],
    plan,
    scheme,
    params,
    rng: Randomness,
    adversary=None,
    *,
    num_workers: int = 2,
    checkpoint_interval: int = 8,
    config: Optional[ClusterConfig] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
):
    """π_ba with its wire traffic routed across worker processes.

    Returns ``(ba_result, cluster_result)`` where ``ba_result.metrics``
    is the snapshot of the *cluster-charged* ledger (wire frames routed
    by the supervisor + hybrid charges applied verbatim) — comparable
    bit-for-bit with :func:`~repro.runtime.drivers.run_balanced_ba_runtime`
    and the synchronous reference.
    """
    reference, script = record_balanced_ba_script(
        inputs, plan, scheme, params, rng, adversary
    )
    n = len(inputs)
    job = replay_job(script, n, checkpoint_interval=checkpoint_interval)
    supervisor = ClusterSupervisor(
        job, _config(config, num_workers), run_dir=run_dir
    )
    result = supervisor.run(resume=resume)
    apply_func_ops(script, result.metrics)
    ba_result = dataclasses.replace(
        reference, metrics=result.metrics.snapshot()
    )
    return ba_result, result


# -- the scaling benchmark -----------------------------------------------------


def make_scheme(name: str):
    """``"snark"`` / ``"owf"`` → a fresh SRDS scheme instance."""
    if name == "snark":
        from repro.srds.snark_based import SnarkSRDS

        return SnarkSRDS()
    if name == "owf":
        from repro.srds.owf import OwfSRDS

        return OwfSRDS()
    raise ClusterError(f"unknown SRDS scheme {name!r}")


def run_cluster_bench(
    n: int = 64,
    worker_counts: Sequence[int] = (1, 2, 4),
    scheme_name: str = "snark",
    seed: int = 2021,
    checkpoint_interval: int = 8,
    results_dir: Optional[Path] = None,
    config: Optional[ClusterConfig] = None,
    data_planes: Sequence[str] = ("mesh", "relay"),
    bench_name: str = "cluster",
) -> Dict[str, Any]:
    """1-vs-k-worker wall clock for π_ba, with differential parity.

    Records π_ba once (hybrid model), then executes the *same* replay
    script single-process (``run_parties``, the parity reference) and at
    each requested worker count on each requested data plane.  Every
    cluster run must reproduce the reference outputs,
    ``max_bits_per_party``, and full per-party tallies — the mesh and
    the legacy relay charge *identical* ledgers, so their parity blocks
    must both read all-true.

    Wall-time keys: the mesh rides under the historical
    ``cluster_{k}_workers`` names (it is the default data plane — the
    regression gate compares like against like across commits); the
    relay's timings land under ``relay_{k}_workers``.  Returns the
    ``repro-bench/1`` payload (written as ``BENCH_<bench_name>.json``
    when ``results_dir`` is given).
    """
    from repro.net.adversary import random_corruption
    from repro.params import ProtocolParameters

    scheme = make_scheme(scheme_name)
    params = ProtocolParameters()
    inputs = {i: i % 2 for i in range(n)}
    plan = random_corruption(
        n, params.max_corruptions(n), Randomness(seed).fork("corruption")
    )
    # lint: allow[DET002] reason=bench wall times; protocol state never reads them
    clock = time.perf_counter
    started = clock()
    reference, script = record_balanced_ba_script(
        inputs, plan, scheme, params, Randomness(seed).fork("protocol")
    )
    wall_times: Dict[str, float] = {"record_hybrid": clock() - started}

    # Single-process parity reference over the same script.
    ref_metrics = CommunicationMetrics()
    started = clock()
    ref_result = run_parties(
        build_replay_parties(script, n),
        metrics=ref_metrics,
        max_rounds=script.num_rounds + 2,
    )
    wall_times["run_parties_1proc"] = clock() - started
    apply_func_ops(script, ref_metrics)

    parity: Dict[str, Any] = {}
    restarts: Dict[str, Any] = {}
    last_metrics = ref_metrics
    for plane in data_planes:
        prefix = "cluster" if plane == "mesh" else plane
        plane_parity: Dict[str, Any] = {}
        plane_restarts: Dict[str, int] = {}
        for workers in worker_counts:
            job = replay_job(
                script,
                n,
                name=f"pi-ba-bench-{plane}-{workers}w",
                checkpoint_interval=checkpoint_interval,
            )
            run_config = dataclasses.replace(
                config if config is not None else ClusterConfig(),
                num_workers=workers,
                data_plane=plane,
            )
            supervisor = ClusterSupervisor(job, run_config)
            started = clock()
            result = supervisor.run()
            wall_times[f"{prefix}_{workers}_workers"] = clock() - started
            apply_func_ops(script, result.metrics)
            plane_parity[str(workers)] = {
                "outputs": result.outputs == ref_result.outputs,
                "max_bits_per_party": (
                    result.metrics.max_bits_per_party
                    == ref_metrics.max_bits_per_party
                ),
                "tallies": tallies_equal(
                    result.metrics, ref_metrics, range(n)
                ),
            }
            plane_restarts[str(workers)] = result.restarts
            last_metrics = result.metrics
        parity[plane] = plane_parity
        restarts[plane] = plane_restarts

    payload = bench_payload(
        bench_name,
        snapshot=last_metrics.snapshot(),
        phase_breakdown=last_metrics.phase_breakdown(),
        wall_times=wall_times,
        extra={
            "n": n,
            "scheme": scheme_name,
            "seed": seed,
            "worker_counts": list(worker_counts),
            "data_planes": list(data_planes),
            "checkpoint_interval": checkpoint_interval,
            "replay_rounds": script.num_rounds,
            "replay_messages": script.num_messages,
            # Wall-time context: k workers only beat 1 when the host
            # actually grants k cores; on a 1-core box the multi-worker
            # cells measure pure process overhead.
            "cpus_available": len(os.sched_getaffinity(0)),
            "worker_import_seconds": _worker_import_seconds(),
            "notes": {
                "lazy_imports": (
                    "PEP 562 package inits: worker spawn no longer "
                    "imports the protocol/crypto modules through "
                    "repro/__init__.  Measured cold-import before -> "
                    "after on the dev host: import repro 0.087s -> "
                    "0.019s; import repro.cluster.worker 0.176s -> "
                    "0.136s; import repro.runtime.transport 0.125s -> "
                    "0.099s."
                ),
            },
            "parity": parity,
            "restarts": restarts,
            "reference_agreement": reference.agreement,
            "reference_max_bits_per_party": (
                ref_metrics.max_bits_per_party
            ),
        },
    )
    if results_dir is not None:
        write_bench_json(results_dir, payload)
    return payload
