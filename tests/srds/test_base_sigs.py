"""Tests for the pluggable base-signature schemes."""

import pytest

from repro.errors import KeyError_
from repro.srds.base_sigs import HashRegistryBase, SchnorrBase
from repro.utils.randomness import Randomness


@pytest.fixture(params=["schnorr", "hash-registry"])
def scheme(request):
    if request.param == "schnorr":
        return SchnorrBase()
    return HashRegistryBase()


class TestBothSchemes:
    def test_sign_verify(self, scheme, rng):
        vk, sk = scheme.keygen(rng)
        signature = scheme.sign(sk, b"message")
        assert scheme.verify(vk, b"message", signature)

    def test_wrong_message_rejected(self, scheme, rng):
        vk, sk = scheme.keygen(rng)
        assert not scheme.verify(vk, b"other", scheme.sign(sk, b"message"))

    def test_wrong_key_rejected(self, scheme, rng):
        vk1, sk1 = scheme.keygen(rng.fork("a"))
        vk2, _ = scheme.keygen(rng.fork("b"))
        assert not scheme.verify(vk2, b"m", scheme.sign(sk1, b"m"))

    def test_garbage_signature_rejected(self, scheme, rng):
        vk, _ = scheme.keygen(rng)
        assert not scheme.verify(vk, b"m", b"garbage")

    def test_garbage_key_rejected(self, scheme, rng):
        _, sk = scheme.keygen(rng)
        assert not scheme.verify(b"garbage", b"m", scheme.sign(sk, b"m"))

    def test_wrong_key_type_raises(self, scheme):
        with pytest.raises(KeyError_):
            scheme.sign(3.14, b"m")

    def test_distinct_keys(self, scheme, rng):
        vk1, _ = scheme.keygen(rng.fork("a"))
        vk2, _ = scheme.keygen(rng.fork("b"))
        assert vk1 != vk2


class TestSchnorrCache:
    def test_cache_consistency(self, rng):
        scheme = SchnorrBase()
        vk, sk = scheme.keygen(rng)
        signature = scheme.sign(sk, b"m")
        first = scheme.verify(vk, b"m", signature)
        second = scheme.verify(vk, b"m", signature)  # cached path
        assert first is second is True

    def test_cache_negative_result(self, rng):
        scheme = SchnorrBase()
        vk, sk = scheme.keygen(rng)
        assert not scheme.verify(vk, b"x", scheme.sign(sk, b"m"))
        assert not scheme.verify(vk, b"x", scheme.sign(sk, b"m"))


class TestHashRegistry:
    def test_unregistered_key_rejected(self, rng):
        scheme = HashRegistryBase()
        other = HashRegistryBase()
        vk, sk = scheme.keygen(rng)
        # `other` never saw this keygen; designated verification fails.
        assert not other.verify(vk, b"m", scheme.sign(sk, b"m"))
