"""Shared Hypothesis strategies for the test suite.

Centralizes the generators that were previously duplicated across
property-test modules so new tests compose the same vocabulary:

* ``party_counts`` — protocol sizes worth exercising.
* ``corruption_sets(n, t)`` — corrupted-party subsets within budget
  (``t < n/3`` by default, matching the paper's asymptotic bound; pass
  an explicit ``t`` for the repo's concrete ``params.max_corruptions``
  tolerance).
* ``signer_subsets(n)`` — non-empty signer id subsets for SRDS
  invariants.
* ``fault_schedules(n)`` — small crash/delay descriptors for runtime
  fault plans.
* ``messages`` / ``garbage`` — protocol payloads and malformed wire
  bytes for decoder fuzzing.
* ``delivery_orderings()`` — seeded asynchronous-scheduler
  configurations (seed, policy, latency model): each one names a
  complete adversarial delivery ordering for ``repro.asynchrony``.

Profiles: ``tests/conftest.py`` registers ``ci`` (small, deterministic
budgets) and ``dev`` (wider exploration) Hypothesis profiles; select
with ``HYPOTHESIS_PROFILE=dev pytest ...``.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

__all__ = [
    "bit_flips",
    "corruption_sets",
    "delivery_orderings",
    "fault_schedules",
    "garbage",
    "latency_model_names",
    "messages",
    "party_counts",
    "scheduler_policies",
    "signer_subsets",
    "truncations",
]

#: Protocol sizes that are cheap enough for property tests while still
#: covering non-trivial committee geometry.
party_counts = st.sampled_from([4, 8, 16, 32, 64])

#: Arbitrary protocol payloads (what parties sign / broadcast).
messages = st.binary(min_size=0, max_size=64)

#: Malformed wire bytes for decoder / verifier fuzzing.
garbage = st.binary(min_size=0, max_size=300)


def truncations(blob: bytes) -> st.SearchStrategy[bytes]:
    """Strict prefixes of ``blob`` — every truncation point.

    Feeding these to a decoder asserts the *fail-fast* half of wire
    robustness: a cut record must raise a library error, never hang
    waiting for bytes that will not come and never mis-frame.
    """
    if not blob:
        return st.just(b"")
    return st.integers(min_value=0, max_value=len(blob) - 1).map(
        lambda end: blob[:end]
    )


def _flip_bit(blob: bytes, bit: int) -> bytes:
    corrupted = bytearray(blob)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    return bytes(corrupted)


def bit_flips(blob: bytes) -> st.SearchStrategy[bytes]:
    """Copies of ``blob`` with exactly one bit flipped.

    Single-bit corruption is the adversarial analogue of a torn or
    tampered record: decoders must either reject it with a library
    error or decode something well-typed — by construction they cannot
    be required to *detect* every flip (payload bytes are opaque).
    """
    if not blob:
        return st.just(b"")
    return st.integers(min_value=0, max_value=len(blob) * 8 - 1).map(
        lambda bit: _flip_bit(blob, bit)
    )


def signer_subsets(n: int) -> st.SearchStrategy[frozenset]:
    """Non-empty subsets of ``range(n)`` — candidate signer sets."""
    return st.frozensets(
        st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n
    )


def corruption_sets(n: int, t: int | None = None) -> st.SearchStrategy[frozenset]:
    """Corrupted-party subsets of ``range(n)`` with ``|S| <= t``.

    ``t`` defaults to the asymptotic ``t < n/3`` ceiling; pass the
    repo's concrete ``params.max_corruptions(n)`` when a test exercises
    the implemented tolerance rather than the paper's limit.
    """
    if t is None:
        t = max(0, (n - 1) // 3)
    return st.frozensets(
        st.integers(min_value=0, max_value=n - 1), min_size=0, max_size=t
    )


#: The asynchronous scheduler's policies
#: (:data:`repro.asynchrony.scheduler.POLICIES`).
scheduler_policies = st.sampled_from(["latency", "adversarial"])

#: Named latency models :func:`repro.net.latency.latency_model_by_name`
#: accepts (kept as plain strings so this module stays import-light).
latency_model_names = st.sampled_from(
    ["fixed", "uniform", "lognormal", "partition-heal", "random-delay"]
)


@st.composite
def delivery_orderings(draw) -> dict:
    """One seeded scheduler configuration — a complete delivery ordering.

    The asynchronous model's determinism contract makes ``(seed, policy,
    latency model)`` a *name* for an entire adversarial schedule: the
    adversary's every choice is a fork of the seed.  Generating these
    triples therefore quantifies ABA properties over delivery orderings
    without enumerating orderings explicitly.  Under the
    ``"adversarial"`` policy the latency model shapes only timestamps
    (the picker ignores them), so ``latency`` may be ``None`` there.
    """
    policy = draw(scheduler_policies)
    latency = draw(st.one_of(st.none(), latency_model_names))
    return {
        "seed": draw(st.integers(min_value=0, max_value=2**32 - 1)),
        "policy": policy,
        "latency": latency,
    }


@st.composite
def fault_schedules(
    draw, n: int, max_round: int = 6
) -> List[Tuple[int, int]]:
    """Small crash schedules: sorted unique ``(party, round)`` pairs.

    At most ``(n - 1) // 3`` parties crash, each at one round in
    ``[1, max_round]`` — within the synchronous model, so protocols
    must still satisfy their invariants under these schedules.
    """
    budget = max(0, (n - 1) // 3)
    parties = draw(
        st.frozensets(
            st.integers(min_value=0, max_value=n - 1),
            min_size=0,
            max_size=budget,
        )
    )
    schedule = []
    for party in sorted(parties):
        round_index = draw(st.integers(min_value=1, max_value=max_round))
        schedule.append((party, round_index))
    return schedule
