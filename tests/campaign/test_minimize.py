"""Greedy failure minimization: signature-preserving, 1-minimal."""

import pytest

from repro.campaign.minimize import minimize_failure
from repro.campaign.runner import execute_spec
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError


def _planted_spec(**overrides):
    fields = dict(
        config="phase_king",
        strategy="over-threshold",
        schedule="none",
        n=16,
        seed=0,
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestMinimize:
    def test_passing_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            minimize_failure(
                CampaignSpec(
                    config="phase_king",
                    strategy="honest",
                    schedule="none",
                    n=16,
                    seed=0,
                )
            )

    def test_planted_failure_shrinks(self):
        original = execute_spec(_planted_spec())
        assert original.failed
        result = minimize_failure(_planted_spec())
        assert result.signature == original.signature
        assert result.minimized.failed
        assert result.minimized.signature == result.signature
        # The plant corrupts n/2 = 8; fewer suffice for the same break.
        assert len(result.minimized.spec.corrupt) < len(
            original.spec.corrupt
        )
        assert result.shrunk
        assert result.attempts > 0

    def test_minimized_is_one_minimal(self):
        result = minimize_failure(_planted_spec())
        corrupt = result.minimized.spec.corrupt
        for party in corrupt:
            reduced = tuple(p for p in corrupt if p != party)
            outcome = execute_spec(
                result.minimized.spec.with_corrupt(reduced)
            )
            assert (
                not outcome.failed
                or outcome.signature != result.signature
            ), f"removing {party} still fails identically — not 1-minimal"

    def test_minimization_deterministic(self):
        a = minimize_failure(_planted_spec())
        b = minimize_failure(_planted_spec())
        assert a.minimized.spec == b.minimized.spec
        assert a.attempts == b.attempts

    def test_crash_schedule_shrinks(self):
        # crash-everyone on phase_king: a loud NetworkError.  Only a core
        # of crashed parties is needed to keep the protocol from
        # terminating; the minimizer strips the rest while preserving the
        # error signature.
        spec = _planted_spec(
            strategy="honest", schedule="crash-everyone"
        )
        original = execute_spec(spec)
        assert original.failed and original.spec.crashes
        result = minimize_failure(spec)
        assert result.minimized.failed
        assert result.minimized.signature == result.signature
        minimized_crashes = result.minimized.spec.crashes or {}
        assert len(minimized_crashes) <= len(original.spec.crashes)

    def test_attempt_cap_respected(self):
        result = minimize_failure(_planted_spec(), max_attempts=3)
        assert result.attempts <= 3
        assert result.minimized.failed  # still a valid failing witness
