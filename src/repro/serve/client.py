"""Blocking client library for the gateway's NDJSON protocol.

:class:`GatewayClient` is a thin, dependency-free socket wrapper meant
for scripts, tests, and the ``repro serve client`` CLI: one connection,
one request/response pair per call, structured responses passed through
verbatim.  :meth:`GatewayClient.submit_with_retry` implements the
polite-client half of the backpressure contract — on a ``busy`` reject
it sleeps for the server-provided ``retry_after`` and tries again.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro.errors import GatewayError
from repro.serve import wire

#: Generous default: `await` ops block server-side for their timeout.
DEFAULT_SOCKET_TIMEOUT = 600.0


class GatewayClient:
    """One NDJSON connection to a running gateway."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_SOCKET_TIMEOUT,
    ) -> None:
        if port <= 0:
            raise GatewayError("client needs the gateway's bound port")
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        except OSError as exc:
            raise GatewayError(
                f"cannot reach gateway at {host}:{port}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- core request/response ---------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request line, block for its response line."""
        self._sock.sendall(wire.encode_line(payload))
        line = self._file.readline(wire.MAX_LINE_BYTES + 1)
        if not line:
            raise GatewayError(
                "gateway closed the connection without responding"
            )
        return wire.decode_line(line.rstrip(b"\r\n"))

    # -- operation helpers --------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(self, **spec_fields: Any) -> Dict[str, Any]:
        return self.request({"op": "submit", **spec_fields})

    def submit_with_retry(
        self,
        max_attempts: int = 8,
        default_backoff: float = 0.25,
        **spec_fields: Any,
    ) -> Dict[str, Any]:
        """Submit, honoring ``busy`` backpressure by sleeping and retrying.

        Only ``busy`` rejects are retried — they carry ``retry_after``
        and promise a lane will free up; every other reject (bad
        request, shutting down) is returned to the caller immediately.
        """
        response: Dict[str, Any] = wire.reject(
            "busy", "submit_with_retry never attempted"
        )
        for _ in range(max_attempts):
            response = self.submit(**spec_fields)
            if response.get("ok") or response.get("code") != "busy":
                return response
            time.sleep(float(response.get("retry_after", default_backoff)))
        return response

    def await_result(
        self, session: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "await", "session": session}
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request(payload)

    def status(self, session: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "status"}
        if session is not None:
            payload["session"] = session
        return self.request(payload)

    def cancel(self, session: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "session": session})

    def metrics_text(self) -> str:
        """The gateway's Prometheus exposition, via the JSON op."""
        response = self.request({"op": "metrics"})
        if not response.get("ok"):
            raise GatewayError(
                f"metrics op failed: {response.get('error')}"
            )
        return str(response["metrics"])

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})


def run_session(
    host: str,
    port: int,
    *,
    await_timeout: Optional[float] = None,
    **spec_fields: Any,
) -> Dict[str, Any]:
    """Convenience: submit one session (with retry) and await its result."""
    with GatewayClient(host, port) as client:
        submitted = client.submit_with_retry(**spec_fields)
        if not submitted.get("ok"):
            return submitted
        return client.await_result(
            str(submitted["session"]), await_timeout
        )
