"""E5 — SRDS micro-costs: succinctness (Def. 2.2) and operation timing.

* signature sizes vs n — the SNARK aggregate is constant-size, the OWF
  aggregate is polylog * poly(kappa), and the multisig baseline is
  Theta(n);
* the Aggregate1 filtered set stays polylog-sized;
* timed micro-benchmarks of sign / aggregate / verify for both
  constructions (this module is where pytest-benchmark's timing table
  is most meaningful).
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.scaling import fit_power_law
from repro.protocols.baselines.multisig import MultisigScheme
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

NS = [128, 256, 512, 1024]


def _deploy(scheme, n, rng):
    pp = scheme.setup(n, rng.fork("setup"))
    vks, sks = {}, {}
    for i in range(n):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    return pp, vks, sks


def _aggregate_size_series(scheme_factory):
    rng = Randomness(6)
    sizes = []
    for n in NS:
        scheme = scheme_factory()
        pp, vks, sks = _deploy(scheme, n, rng.fork(f"d{n}"))
        message = b"size-series"
        signatures = [
            s for s in (
                scheme.sign(pp, i, sks[i], message) for i in range(n)
            )
            if s is not None
        ]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        sizes.append(len(aggregate.encode()))
    return sizes


@pytest.mark.benchmark(group="srds-micro")
def test_signature_size_scaling(benchmark, results_dir):
    def collect():
        return {
            "snark": _aggregate_size_series(
                lambda: SnarkSRDS(base_scheme=HashRegistryBase())
            ),
            "owf": _aggregate_size_series(
                lambda: OwfSRDS(message_bits=32, sortition_factor=1)
            ),
            "multisig": _aggregate_size_series(MultisigScheme),
        }

    sizes = benchmark.pedantic(collect, rounds=1, iterations=1)

    lines = ["E5 — aggregate signature size (bytes) vs n:",
             f"{'n':>8}" + "".join(f"{name:>12}" for name in sizes)]
    for index, n in enumerate(NS):
        lines.append(
            f"{n:>8}" + "".join(
                f"{series[index]:>12,}" for series in sizes.values()
            )
        )
    fits = {name: fit_power_law(NS, series)
            for name, series in sizes.items()}
    lines.append("")
    for name, fit in fits.items():
        lines.append(f"{name}: size ~ n^{fit.exponent:.2f}")
    write_result(results_dir, "srds_micro_sizes", "\n".join(lines))

    # Succinctness: SNARK aggregates are constant up to varint jitter in
    # the encoded count (1 byte across this sweep).
    assert max(sizes["snark"]) - min(sizes["snark"]) <= 2
    # OWF aggregates grow polylog (signer set ~ log^2 n): sub-sqrt here.
    assert fits["owf"].exponent < 0.45
    # Multisig grows linearly: the bitmap adds exactly one bit per added
    # party on top of the constant tag/framing.
    bitmap_growth = sizes["multisig"][-1] - sizes["multisig"][0]
    assert bitmap_growth >= (NS[-1] - NS[0]) // 8 - 4


@pytest.mark.benchmark(group="srds-micro")
def test_aggregate1_output_polylog(benchmark, results_dir):
    def collect():
        rng = Randomness(8)
        message = b"filter-series"
        series = []
        for n in NS:
            scheme = OwfSRDS(message_bits=32, sortition_factor=1)
            pp, vks, sks = _deploy(scheme, n, rng.fork(f"d{n}"))
            signatures = [
                s for s in (
                    scheme.sign(pp, i, sks[i], message) for i in range(n)
                )
                if s is not None
            ]
            filtered = scheme.aggregate1(pp, vks, message, signatures)
            series.append(len(filtered))
        return series

    series = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = ["E5 — |Aggregate1 output| (filtered set) vs n:"]
    for n, size in zip(NS, series):
        lines.append(f"  n={n:>5}: {size} signatures")
    fit = fit_power_law(NS, series)
    lines.append(f"growth ~ n^{fit.exponent:.2f} (polylog: signer set)")
    write_result(results_dir, "srds_micro_filter", "\n".join(lines))
    assert fit.exponent < 0.45
    # Absolute bound: far below n (Def. 2.2 polylog requirement, scaled).
    assert series[-1] < NS[-1] // 4


N_TIMING = 256


@pytest.fixture(scope="module")
def snark_deployment():
    rng = Randomness(9)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp, vks, sks = _deploy(scheme, N_TIMING, rng)
    message = b"timing"
    signatures = [
        scheme.sign(pp, i, sks[i], message) for i in range(N_TIMING)
    ]
    aggregate = scheme.aggregate(pp, vks, message, signatures)
    return scheme, pp, vks, sks, message, signatures, aggregate


@pytest.mark.benchmark(group="srds-timing")
def test_timing_sign(benchmark, snark_deployment):
    scheme, pp, _, sks, message, _, _ = snark_deployment
    benchmark(lambda: scheme.sign(pp, 0, sks[0], message))


@pytest.mark.benchmark(group="srds-timing")
def test_timing_aggregate(benchmark, snark_deployment):
    scheme, pp, vks, _, message, signatures, _ = snark_deployment
    benchmark(lambda: scheme.aggregate(pp, vks, message, signatures))


@pytest.mark.benchmark(group="srds-timing")
def test_timing_verify(benchmark, snark_deployment):
    scheme, pp, vks, _, message, _, aggregate = snark_deployment
    result = benchmark(lambda: scheme.verify(pp, vks, message, aggregate))
    assert result
