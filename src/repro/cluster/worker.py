"""The cluster worker process.

A worker is one OS process owning one shard of the party set.  Its life
is a small state machine driven entirely by the supervisor over a single
:class:`~repro.cluster.wire.MessageChannel`:

1. dial the supervisor, introduce itself (``hello``);
2. receive its ``job`` (builder reference + shard assignment + resume
   flag), rebuild the shard — from the last durable checkpoint when
   resuming — and report the round it stands at (``resumed``);
3. loop: on ``round`` step the :class:`~repro.cluster.engine.ShardEngine`
   and reply ``done`` with the emitted frames, the shard's halted
   outputs, and the round's drained trace events; on ``checkpoint``
   durably snapshot the shard and ack; on ``stop`` exit 0.

A daemon heartbeat thread shares the channel (sends are locked) and
beacons ``heartbeat`` on a fixed interval so the supervisor can tell a
slow round from a dead process.  The worker never owns a metrics
ledger: the supervisor charges the authoritative one as it routes
frames, so sharding cannot double-charge the paper's headline metric.

The worker is deliberately crash-naked: any unexpected exception
escapes, the process dies nonzero, and the supervisor's recovery path —
restart, resume from checkpoint, replay the logged rounds — is the only
error handling.  That is what makes SIGKILL fault injection honest.
"""

# lint: file-allow[ACC001] reason=channel.send ships control replies; the
# worker never owns a ledger — the supervisor charges frames as it routes them

from __future__ import annotations

import threading
from pathlib import Path
from typing import Optional

from repro.cluster.checkpoint import load_checkpoint, save_checkpoint
from repro.cluster.engine import ShardEngine
from repro.cluster.job import ClusterJob
from repro.cluster.wire import (
    CHECKPOINT,
    CHECKPOINTED,
    DONE,
    HEARTBEAT,
    HELLO,
    JOB,
    RESUMED,
    ROUND,
    STOP,
    ChannelClosed,
    Message,
    MessageChannel,
    connect_channel,
)
from repro.errors import ClusterError
from repro.obs.spans import SpanLog, span_to_wire
from repro.runtime.trace import TraceRecorder

#: Default seconds between heartbeat beacons.
HEARTBEAT_INTERVAL = 0.25


class _Heartbeat(threading.Thread):
    """Beacons liveness on the shared channel until stopped."""

    def __init__(self, channel: MessageChannel, interval: float) -> None:
        super().__init__(name="cluster-heartbeat", daemon=True)
        self._channel = channel
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        # Event.wait paces the beacon; the worker never reads a clock.
        while not self._stop.wait(self._interval):
            try:
                self._channel.send(Message(HEARTBEAT))
            except ClusterError:
                return  # supervisor is gone; main loop will notice too

    def stop(self) -> None:
        self._stop.set()


def worker_main(
    host: str,
    port: int,
    worker_id: int,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> int:
    """Run one worker to completion; returns the process exit code."""
    channel = connect_channel(host, port)
    heartbeat: Optional[_Heartbeat] = None
    try:
        channel.send(Message(HELLO, {"worker_id": worker_id}))
        job_msg = channel.recv()
        if job_msg.kind != JOB:
            raise ClusterError(
                f"worker {worker_id} expected a job, got {job_msg.kind!r}"
            )
        job = job_msg.payload()
        if not isinstance(job, ClusterJob):
            raise ClusterError(
                f"job payload decoded to {type(job).__name__}, not ClusterJob"
            )
        shard = list(job_msg.fields["shard"])
        resume_round = int(job_msg.fields.get("resume_round", 0))
        checkpoint_dir = Path(job_msg.fields["checkpoint_dir"])
        checkpoint_stem = str(job_msg.fields["checkpoint_stem"])
        # Cross-process trace propagation: the supervisor mints one
        # trace id per run and stamps it on the job; every done reply
        # echoes it so any hop of the conversation can be correlated.
        trace_id = str(job_msg.fields.get("trace_id", ""))

        trace = TraceRecorder()
        span_log = SpanLog()
        engine = _build_engine(
            job, shard, resume_round, checkpoint_dir, checkpoint_stem, trace
        )
        channel.send(Message(RESUMED, {"next_round": engine.next_round}))

        heartbeat = _Heartbeat(channel, heartbeat_interval)
        heartbeat.start()

        while True:
            message = channel.recv()
            if message.kind == STOP:
                return 0
            if message.kind == CHECKPOINT:
                # Staged frames are supervisor-owned; the worker's
                # checkpoint carries party state + counters only.  The
                # name is versioned by barrier round so the supervisor
                # can pin a resume to its last fully-acknowledged
                # barrier even if this worker raced ahead.
                barrier = int(message.fields["round"])
                save_checkpoint(
                    checkpoint_dir,
                    checkpoint_name(checkpoint_stem, barrier),
                    engine.snapshot(),
                )
                channel.send(Message(CHECKPOINTED, {"round": barrier}))
                continue
            if message.kind != ROUND:
                raise ClusterError(
                    f"worker {worker_id} cannot handle {message.kind!r}"
                )
            round_index = int(message.fields["round"])
            round_span = span_log.open(
                "cluster-round", "cluster-round", 0,
                {"round": round_index, "worker": worker_id,
                 "frames_in": len(message.frames)},
            )
            out_frames = engine.step_round(round_index, message.frames)
            round_span.attrs["frames_out"] = len(out_frames)
            span_log.close(round_span)
            span_digest = [span_to_wire(r) for r in span_log.records]
            span_log.records.clear()
            channel.send(
                Message(
                    DONE,
                    {
                        "round": round_index,
                        "replay": bool(message.fields.get("replay", False)),
                        "trace_id": trace_id,
                        # Flow refinement: the obs phase of each emitted
                        # frame, parallel to the frames list, so the
                        # supervisor can charge its flow ledger with the
                        # phase recorded at emit time.
                        "phases": engine.last_phases,
                    },
                    frames=out_frames,
                    blob=Message.pack_payload(
                        {
                            "outputs": engine.outputs(),
                            "trace": trace.drain(),
                            "spans": span_digest,
                        }
                    ),
                )
            )
    except ChannelClosed:
        # Supervisor vanished without a STOP: die loudly so an attached
        # terminal sees a nonzero exit, but don't traceback.
        return 1
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        channel.close()


def checkpoint_name(stem: str, barrier: int) -> str:
    """Canonical versioned checkpoint name: ``<stem>-r<barrier>``."""
    return f"{stem}-r{barrier}"


def _build_engine(
    job: ClusterJob,
    shard: list,
    resume_round: int,
    checkpoint_dir: Path,
    checkpoint_stem: str,
    trace: TraceRecorder,
) -> ShardEngine:
    """Fresh build, or restore from a specific durable checkpoint.

    ``resume_round == 0`` means a fresh build (the supervisor replays
    from round 0); a positive value names the barrier the supervisor
    knows every shard has durably reached, so the file must exist.
    """
    if resume_round > 0:
        name = checkpoint_name(checkpoint_stem, resume_round)
        checkpoint = load_checkpoint(checkpoint_dir, name)
        if checkpoint is None:
            raise ClusterError(
                f"supervisor pinned resume to missing checkpoint {name!r} "
                f"in {checkpoint_dir}"
            )
        engine = ShardEngine.restore(checkpoint, trace=trace)
        if set(engine.party_ids) != set(shard):
            raise ClusterError(
                f"checkpoint {name!r} holds parties "
                f"{engine.party_ids}, job assigns {sorted(shard)}"
            )
        return engine
    parties = [
        party for party in job.build_parties() if party.party_id in set(shard)
    ]
    return ShardEngine(parties, trace=trace)
