"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table/figure/claim from the paper
(see the experiment index in DESIGN.md), asserts its *shape* (who wins,
by roughly what factor, where crossovers fall), and appends a
human-readable record to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmark modules drop their measurement records."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's record (and echo it to stdout)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n[{name}]\n{text}")


@pytest.fixture(scope="session")
def bench_json(results_dir):
    """Writer for structured ``BENCH_<name>.json`` records.

    Companion to :func:`write_result`: the text records are for humans,
    these JSON records (schema ``repro-bench/1``) make the perf
    trajectory machine-readable across PRs — ``python -m repro report``
    and ``python -m repro obs report <path>`` both render them.
    """
    from repro.obs.bench import bench_payload, write_bench_json

    def _write(name, *, snapshot=None, phase_breakdown=None,
               wall_times=None, extra=None):
        payload = bench_payload(
            name,
            snapshot=snapshot,
            phase_breakdown=phase_breakdown,
            wall_times=wall_times,
            extra=extra,
        )
        path = write_bench_json(results_dir, payload)
        print(f"\n[BENCH_{name}] -> {path}")
        return path

    return _write
