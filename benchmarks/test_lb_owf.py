"""E3 — Thm 1.4: one-way functions are necessary in the PKI model.

Sweeps the key-generation hardness (secret bits) against a fixed
inversion budget and measures the isolated victim's error rate.  The
theorem's shape is a phase transition at the point where the adversary's
work budget covers the key space: invertible keys ⇒ the CRS attack
revives; one-way keys ⇒ the boost survives.
"""

import pytest

from benchmarks.conftest import write_result
from repro.lowerbounds.owf_attack import attack_success_rate
from repro.utils.randomness import Randomness

N, T, TRIALS = 80, 12, 15
EFFORT_BITS = 12
SECRET_BITS = [4, 8, 12, 16, 24, 40]


def _sweep():
    rng = Randomness(23)
    return [
        attack_success_rate(
            N, T, messages_per_party=6, secret_bits=bits,
            effort_bits=EFFORT_BITS, trials=TRIALS,
            rng=rng.fork(f"s{bits}"),
        )
        for bits in SECRET_BITS
    ]


@pytest.mark.benchmark(group="lowerbounds")
def test_owf_lower_bound(benchmark, results_dir):
    rates = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"E3 — PKI-inversion attack, n={N}, t={T}, "
        f"adversary work 2^{EFFORT_BITS}, {TRIALS} trials:",
        f"{'secret bits':>12} {'victim error':>13} {'keys one-way?':>14}",
    ]
    for bits, rate in zip(SECRET_BITS, rates):
        one_way = "no" if bits <= EFFORT_BITS else "yes"
        lines.append(f"{bits:>12} {rate:>12.0%} {one_way:>14}")
    write_result(results_dir, "lb_owf", "\n".join(lines))

    # Phase transition at secret_bits == effort_bits.
    for bits, rate in zip(SECRET_BITS, rates):
        if bits <= EFFORT_BITS:
            assert rate >= 0.6, f"inversion attack too weak at {bits} bits"
        if bits > EFFORT_BITS + 4:
            assert rate <= 0.1, f"one-way keys failed at {bits} bits"
