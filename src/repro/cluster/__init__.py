"""Sharded multi-process party execution with durable checkpoints.

``repro.cluster`` shards the ``n`` parties of a protocol run across
``k`` worker OS processes, recovering true multicore parallelism for the
Lamport/Merkle/SNARK-heavy per-party hot paths that the GIL serializes
inside one interpreter.  The layer is built from:

* :mod:`repro.cluster.engine` — :class:`ShardEngine`, the deterministic
  single-shard round executor (the worker's inner loop, also usable
  in-process for checkpoint/parity tests);
* :mod:`repro.cluster.checkpoint` — the durable per-party checkpoint
  codec (round number, party state snapshot, trace offsets, metrics
  tally, staged frames) built on :mod:`repro.utils.serialization`;
* :mod:`repro.cluster.wire` — the supervisor⇄worker control channel:
  length-prefixed messages whose frame batches reuse the *existing*
  :class:`repro.runtime.transport.Frame` wire format;
* :mod:`repro.cluster.meshwire` / :mod:`repro.cluster.mesh` — the
  worker⇄worker data plane: a compact struct-packed frame-train codec
  and the direct TCP mesh router that carries it (the default
  ``data_plane="mesh"``; the supervisor relay remains as
  ``data_plane="relay"``);
* :mod:`repro.cluster.job` — the serializable job description workers
  rebuild their party shard from;
* :mod:`repro.cluster.worker` / :mod:`repro.cluster.supervisor` — the
  worker process main loop (round stepping, heartbeats, checkpoint
  writes) and the supervisor (round barriers, frame routing, health
  monitoring, crash-restart recovery, SIGKILL fault injection);
* :mod:`repro.cluster.drivers` — convenience drivers (π_ba over the
  cluster with differential parity against :func:`run_parties`) and the
  ``BENCH_cluster.json`` scaling benchmark.

See ``docs/cluster.md`` for the architecture, checkpoint format, and
the recovery state machine.

Re-exports resolve lazily (PEP 562): the worker main loop imports
``repro.cluster.worker`` through this package on every process spawn,
and must not pay for the protocol drivers it never touches.
"""

from typing import TYPE_CHECKING, List

#: Lazily re-exported name -> defining module.
_EXPORTS = {
    "ClusterCheckpoint": "repro.cluster.checkpoint",
    "PartyCheckpoint": "repro.cluster.checkpoint",
    "load_checkpoint": "repro.cluster.checkpoint",
    "save_checkpoint": "repro.cluster.checkpoint",
    "ShardEngine": "repro.cluster.engine",
    "resume_shard_locally": "repro.cluster.engine",
    "run_shard_locally": "repro.cluster.engine",
    "ClusterJob": "repro.cluster.job",
    "ClusterConfig": "repro.cluster.supervisor",
    "ClusterResult": "repro.cluster.supervisor",
    "ClusterSupervisor": "repro.cluster.supervisor",
    "run_balanced_ba_cluster": "repro.cluster.drivers",
    "run_cluster_bench": "repro.cluster.drivers",
    "run_gradecast_cluster": "repro.cluster.drivers",
    "run_phase_king_cluster": "repro.cluster.drivers",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # static importers see the eager names
    from repro.cluster.checkpoint import (
        ClusterCheckpoint,
        PartyCheckpoint,
        load_checkpoint,
        save_checkpoint,
    )
    from repro.cluster.drivers import (
        run_balanced_ba_cluster,
        run_cluster_bench,
        run_gradecast_cluster,
        run_phase_king_cluster,
    )
    from repro.cluster.engine import (
        ShardEngine,
        resume_shard_locally,
        run_shard_locally,
    )
    from repro.cluster.job import ClusterJob
    from repro.cluster.supervisor import (
        ClusterConfig,
        ClusterResult,
        ClusterSupervisor,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
