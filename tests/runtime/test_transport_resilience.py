"""TcpTransport resilience: seeded reconnect backoff and port fallback."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import NetworkError
from repro.obs.registry import MetricsRegistry
from repro.runtime.transport import (
    Frame,
    TcpTransport,
    backoff_schedule,
    make_transport,
)
from repro.utils.randomness import Randomness


def _run(coro):
    return asyncio.run(coro)


class TestBackoffSchedule:
    def test_deterministic_under_seed(self):
        a = backoff_schedule(6, 0.05, 0.8, Randomness(7))
        b = backoff_schedule(6, 0.05, 0.8, Randomness(7))
        assert a == b
        assert backoff_schedule(6, 0.05, 0.8, Randomness(8)) != a

    def test_bounded_exponential_with_jitter(self):
        delays = backoff_schedule(8, 0.05, 0.4, Randomness(3))
        assert len(delays) == 8
        for attempt, delay in enumerate(delays):
            nominal = min(0.4, 0.05 * (2 ** attempt))
            assert 0.5 * nominal <= delay < 1.5 * nominal + 1e-9
        # The cap bites: late delays never exceed 1.5 * cap.
        assert all(d < 1.5 * 0.4 + 1e-9 for d in delays[4:])

    def test_empty_and_invalid(self):
        assert backoff_schedule(0, 0.1, 1.0, Randomness(0)) == []
        with pytest.raises(NetworkError):
            backoff_schedule(3, -0.1, 1.0, Randomness(0))


class TestReconnect:
    def test_send_survives_torn_endpoint_connection(self):
        async def scenario():
            transport = TcpTransport(
                [0, 1], reconnect_base=0.01, reconnect_cap=0.05
            )
            registry = MetricsRegistry()
            transport.bind_registry(registry)
            await transport.start()
            try:
                await transport.send(0, Frame(0, 1, b"before"))
                await transport.flush()
                assert [f.payload for f in transport.collect(1)] == [b"before"]

                # Tear party 0's router connection out from under it.
                endpoint = transport._endpoints[0]
                endpoint.writer.close()
                try:
                    await endpoint.writer.wait_closed()
                except OSError:
                    pass

                await transport.send(0, Frame(0, 1, b"after"))
                await transport.flush()
                assert [f.payload for f in transport.collect(1)] == [b"after"]
                assert transport.reconnects == 1
                assert (
                    "repro_transport_reconnects_total 1" in registry.render()
                )
            finally:
                await transport.stop()

        _run(scenario())

    def test_dead_router_exhausts_schedule_loudly(self):
        async def scenario():
            transport = TcpTransport(
                [0, 1],
                reconnect_attempts=2,
                reconnect_base=0.01,
                reconnect_cap=0.02,
            )
            await transport.start()
            # Kill the router outright: reconnects cannot succeed.
            server = transport._server
            assert server is not None
            server.close()
            await server.wait_closed()
            for endpoint in transport._endpoints.values():
                endpoint.writer.close()
            with pytest.raises(NetworkError, match="reconnect attempts"):
                for _ in range(8):  # first writes may land in OS buffers
                    await transport.send(0, Frame(0, 1, b"x"))
                    await asyncio.sleep(0.02)
            transport._server = None
            await transport.stop()

        _run(scenario())


class TestPortFallback:
    def test_busy_preferred_port_falls_back_to_os_assigned(self):
        async def scenario():
            first = TcpTransport([0, 1])
            await first.start()
            busy = first.port
            second = TcpTransport(
                [0, 1],
                port=busy,
                reconnect_attempts=2,
                reconnect_base=0.005,
                reconnect_cap=0.01,
            )
            await second.start()
            try:
                assert second.port != busy
                assert second.bind_retries >= 1
                # The fallback transport still moves frames.
                await second.send(0, Frame(0, 1, b"ok"))
                await second.flush()
                assert [f.payload for f in second.collect(1)] == [b"ok"]
            finally:
                await second.stop()
                await first.stop()

        _run(scenario())

    def test_free_preferred_port_is_used(self):
        async def scenario():
            probe = TcpTransport([0])
            await probe.start()
            port = probe.port
            await probe.stop()
            transport = TcpTransport([0, 1], port=port)
            await transport.start()
            try:
                assert transport.port == port
                assert transport.bind_retries == 0
            finally:
                await transport.stop()

        _run(scenario())

    def test_make_transport_forwards_preferred_port(self):
        async def scenario():
            probe = TcpTransport([0])
            await probe.start()
            port = probe.port
            await probe.stop()
            transport = make_transport("tcp", [0, 1], port=port)
            await transport.start()
            try:
                assert transport.port == port
            finally:
                await transport.stop()

        _run(scenario())
