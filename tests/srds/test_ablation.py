"""Tests for the deliberately weakened ablation SRDS."""

import pytest

from repro.srds.ablation import NoRangeCheckSnarkSRDS
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 90
COALITION = 29  # < N/3


@pytest.fixture(scope="module")
def deployments():
    results = {}
    for label, cls in (("secure", SnarkSRDS),
                       ("ablated", NoRangeCheckSnarkSRDS)):
        rng = Randomness(17)
        scheme = cls(base_scheme=HashRegistryBase())
        pp = scheme.setup(N, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(N):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        results[label] = (scheme, pp, vks, sks)
    return results


def _coalition_aggregate(deployment, message):
    scheme, pp, vks, sks = deployment
    signatures = [
        scheme.sign(pp, i, sks[i], message) for i in range(COALITION)
    ]
    return scheme.aggregate(pp, vks, message, signatures)


class TestAblatedScheme:
    def test_honest_path_still_works(self, deployments):
        scheme, pp, vks, sks = deployments["ablated"]
        message = b"honest"
        signatures = [scheme.sign(pp, i, sks[i], message) for i in range(N)]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert aggregate.count == N
        assert scheme.verify(pp, vks, message, aggregate)

    def test_replay_doubles_count(self, deployments):
        message = b"replayed"
        aggregate = _coalition_aggregate(deployments["ablated"], message)
        scheme, pp, vks, _ = deployments["ablated"]
        doubled = scheme.aggregate(pp, vks, message, [aggregate, aggregate])
        assert doubled.count == 2 * COALITION

    def test_replay_forges_majority(self, deployments):
        message = b"forged"
        scheme, pp, vks, _ = deployments["ablated"]
        aggregate = _coalition_aggregate(deployments["ablated"], message)
        replayed = scheme.aggregate(
            pp, vks, message, [aggregate, aggregate, aggregate]
        )
        assert replayed.count >= pp.acceptance_threshold
        assert scheme.verify(pp, vks, message, replayed)

    def test_secure_scheme_immune_to_same_attack(self, deployments):
        message = b"forged"
        scheme, pp, vks, _ = deployments["secure"]
        aggregate = _coalition_aggregate(deployments["secure"], message)
        replayed = scheme.aggregate(
            pp, vks, message, [aggregate, aggregate, aggregate]
        )
        assert replayed.count == COALITION
        assert not scheme.verify(pp, vks, message, replayed)

    def test_ablated_proofs_not_accepted_by_secure_scheme(self, deployments):
        """Cross-check: the lax relation's proofs don't verify under the
        secure scheme's relations (different relation name in the tag)."""
        message = b"cross"
        ablated_scheme, ablated_pp, ablated_vks, _ = deployments["ablated"]
        aggregate = _coalition_aggregate(deployments["ablated"], message)
        doubled = ablated_scheme.aggregate(
            ablated_pp, ablated_vks, message, [aggregate, aggregate]
        )
        secure_scheme, secure_pp, secure_vks, _ = deployments["secure"]
        # Different deployment entirely (different CRS/keys): must fail.
        assert not secure_scheme.verify(
            secure_pp, secure_vks, message, doubled
        )


class TestRevealingOwfSRDS:
    """Unit tests for the oblivious-keygen ablation (bench: E12)."""

    def _deploy(self, n=256):
        # sortition_factor=1 keeps the signer set well below the beta*n
        # corruption budget at this n — the regime where the adaptive
        # attack bites (at larger n any polylog factor ends up there).
        from repro.srds.ablation import RevealingOwfSRDS

        rng = Randomness(23)
        scheme = RevealingOwfSRDS(message_bits=32, sortition_factor=1)
        pp = scheme.setup(n, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        return scheme, pp, vks, sks

    def test_flag_matches_signing_ability(self):
        from repro.srds.ablation import RevealingOwfSRDS

        scheme, pp, vks, sks = self._deploy()
        for i in vks:
            assert RevealingOwfSRDS.is_flagged_signer(vks[i]) == (
                sks[i] is not None
            )

    def test_honest_flow_still_works(self):
        scheme, pp, vks, sks = self._deploy()
        message = b"still-functional"
        signatures = [
            s for s in (
                scheme.sign(pp, i, sks[i], message) for i in vks
            )
            if s is not None
        ]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert scheme.verify(pp, vks, message, aggregate)

    def test_adaptive_adversary_forges(self):
        from repro.srds.ablation import RevealingOwfSRDS

        scheme, pp, vks, sks = self._deploy()
        n = len(vks)
        budget = n // 6
        flagged = [
            i for i in vks if RevealingOwfSRDS.is_flagged_signer(vks[i])
        ][:budget]
        forged_message = b"adaptive-forgery"
        coalition = [
            scheme.sign(pp, i, sks[i], forged_message) for i in flagged
        ]
        forged = scheme.aggregate(pp, vks, forged_message, coalition)
        # The coalition is within budget yet clears the threshold.
        assert len(flagged) >= pp.acceptance_threshold
        assert scheme.verify(pp, vks, forged_message, forged)

    def test_real_scheme_resists_random_corruption(self):
        """The contrast: against oblivious keys, a random within-budget
        coalition falls far short of the threshold."""
        from repro.net.adversary import random_corruption
        from repro.srds.owf import OwfSRDS

        rng = Randomness(29)
        n = 128
        scheme = OwfSRDS(message_bits=32, sortition_factor=2)
        pp = scheme.setup(n, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        plan = random_corruption(n, n // 6, rng.fork("c"))
        forged_message = b"random-coalition"
        coalition = [
            s for s in (
                scheme.sign(pp, i, sks[i], forged_message)
                for i in range(n)
                if plan.is_corrupt(i)
            )
            if s is not None
        ]
        forged = scheme.aggregate(pp, vks, forged_message, coalition)
        assert forged is None or not scheme.verify(
            pp, vks, forged_message, forged
        )
