#!/usr/bin/env python3
"""Domain scenario: block finality for a large permissioned ledger.

The paper's intro motivates large-scale consensus where no node can
afford to talk to everyone.  This example models a permissioned ledger
with n validator nodes finalizing a stream of blocks: the one-time
pi_ba-style setup (communication tree + SRDS keys) is reused across
blocks via the BroadcastService (Corollary 1.2(1)), so the marginal
per-block cost per validator stays polylogarithmic.

The script finalizes a sequence of blocks proposed by rotating leaders
(some Byzantine), checks that every honest validator sees the same
chain, and prints the amortization curve.

Usage::

    python examples/permissioned_ledger.py [n] [num_blocks]
"""

import sys

from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.broadcast import BroadcastService
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    num_blocks = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    params = ProtocolParameters()
    rng = Randomness(7)

    t = params.max_corruptions(n)
    plan = random_corruption(n, t, rng.fork("corruption"))
    print(f"Permissioned ledger: n={n} validators, {t} Byzantine, "
          f"{num_blocks} blocks\n")

    service = BroadcastService(
        n, plan, SnarkSRDS(base_scheme=HashRegistryBase()), params,
        rng.fork("service"),
    )
    service.setup()
    setup_cost = service.snapshot().max_bits_per_party
    print(f"one-time setup (tree + keys + PKI): "
          f"{format_bits(setup_cost)} max/validator\n")

    # Each validator's local chain: list of finalized block bits.
    chains = {validator: [] for validator in range(n)}
    previous = setup_cost
    leaders = sorted(plan.honest)[:num_blocks]

    for height, leader in enumerate(leaders):
        block_bit = (height * 7 + 3) % 2  # stand-in for the block digest
        outcome = service.broadcast(leader, block_bit)
        for validator in plan.honest:
            chains[validator].append(outcome.outputs[validator])
        current = service.snapshot().max_bits_per_party
        print(f"block {height:2d} (leader {leader:3d}): "
              f"finalized={outcome.agreement}  value={block_bit}  "
              f"marginal cost {format_bits(current - previous)}/validator")
        previous = current

    # Safety: all honest validators hold identical chains.
    reference = chains[plan.honest[0]]
    consistent = all(
        chains[validator] == reference for validator in plan.honest
    )
    total = service.snapshot().max_bits_per_party
    print(f"\nall honest chains identical: {consistent}")
    print(f"chain: {reference}")
    print(f"total max cost/validator:   {format_bits(total)}")
    print(f"amortized per block:        "
          f"{format_bits((total - setup_cost) / num_blocks)}")
    print("\nMarginal per-block cost is flat — ell executions cost "
          "ell * polylog, Corollary 1.2(1).")


if __name__ == "__main__":
    main()
