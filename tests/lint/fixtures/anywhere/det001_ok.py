"""DET001 negative fixture: seeded sources only."""

import random


class FakeRandomness:
    """Mimics the sanctioned wrapper: explicit seed in, forks out."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)  # seeded: replayable

    def bit(self) -> int:
        return self._rng.getrandbits(1)  # method on a seeded instance


def derive(seed: int) -> random.Random:
    return random.Random(seed * 31 + 7)
