"""E10 — the §1.2 SNARG connection, quantified.

Measures what the paper's barrier is about: verifying that a
multisignature aggregates >= k contributions *without* a succinct
argument means either shipping the witness (Theta(k log n) bits) or
solving an average-case NP-complete subset instance (exponential
search), while the SNARG-certified scheme verifies a constant-size
certificate in constant time.  Also times the exact brute-force solver's
blow-up on planted Subset-XOR instances.
"""

import time

import pytest

from benchmarks.conftest import write_result
from repro.crypto.snark import SnarkSystem
from repro.snarg_connection.multisig_link import CountCertifiedMultisig
from repro.snarg_connection.subset_problems import (
    XorGroup,
    sample_planted_instance,
    solve_brute_force,
)
from repro.snarg_connection.subset_problems import encode_witness
from repro.utils.randomness import Randomness

SOLVER_NS = [12, 16, 20, 22]   # subset size = n/2: C(n, n/2) growth
BOARD_SIZES = [64, 256, 1024, 4096]


def _measure():
    rng = Randomness(77)
    group = XorGroup(32)

    solver_times = []
    for n in SOLVER_NS:
        instance, _ = sample_planted_instance(
            group, n, n // 2, rng.fork(f"i{n}")
        )
        start = time.perf_counter()
        solution = solve_brute_force(instance)
        elapsed = time.perf_counter() - start
        assert solution is not None
        solver_times.append(elapsed)

    scheme = CountCertifiedMultisig(SnarkSystem(b"bench-crs"))
    certificate_sizes = []
    witness_sizes = []
    for board in BOARD_SIZES:
        tags = [group.random_element(rng.fork(f"t{board}.{i}"))
                for i in range(board)]
        contributors = list(range(board // 2 + 1))
        certificate = scheme.aggregate(tags, contributors)
        assert scheme.verify(tags, certificate)
        certificate_sizes.append(certificate.size_bytes())
        witness_sizes.append(len(encode_witness(contributors)))
    return solver_times, certificate_sizes, witness_sizes


@pytest.mark.benchmark(group="snarg-connection")
def test_snarg_connection(benchmark, results_dir):
    solver_times, certificate_sizes, witness_sizes = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )

    lines = ["E10 — the multisig/SNARG connection (§1.2)", "",
             "exact subset search (n elements, k = n/2):"]
    for n, elapsed in zip(SOLVER_NS, solver_times):
        lines.append(f"  n={n:>3}: {elapsed * 1000:>10.2f} ms")
    lines.append("")
    lines.append(f"{'board n':>8} {'witness bytes':>14} "
                 f"{'SNARG certificate':>18}")
    for board, witness, certificate in zip(
        BOARD_SIZES, witness_sizes, certificate_sizes
    ):
        lines.append(f"{board:>8} {witness:>14,} {certificate:>18}")
    write_result(results_dir, "snarg_connection", "\n".join(lines))

    # Exponential search blow-up: doubling-ish per +4 elements.
    assert solver_times[-1] > 5 * solver_times[0]
    # The SNARG certificate is constant-size while the witness grows.
    assert len(set(certificate_sizes)) == 1
    assert witness_sizes[-1] > 30 * witness_sizes[0]


@pytest.mark.benchmark(group="snarg-connection")
def test_timing_certified_verify(benchmark):
    """Constant-time verification of the count certificate."""
    rng = Randomness(78)
    group = XorGroup(32)
    scheme = CountCertifiedMultisig(SnarkSystem(b"bench-crs-2"))
    tags = [group.random_element(rng.fork(str(i))) for i in range(1024)]
    certificate = scheme.aggregate(tags, list(range(600)))
    result = benchmark(lambda: scheme.verify(tags, certificate))
    assert result
