"""Core data model of the protocol-aware linter.

The linter exists because the paper's headline claim is *quantitative*:
Thm 3.1 promises Õ(1) bits per party, and the repo proves it by
measurement — every byte must flow through the
:class:`~repro.net.metrics.CommunicationMetrics` charge seam, every
random draw must come from a seeded :class:`~repro.utils.randomness.Randomness`,
and every protocol step must be replayable tick-for-tick.  A single
``time.time()`` or module-level ``random.random()`` silently breaks
record-and-replay (PR 1), phase attribution (PR 2), and the campaign
invariant checks (PR 3) without failing a single test.  These are *repo
invariants*, not style preferences — so they are machine-checked here
instead of review-enforced.

This module defines the vocabulary shared by the engine, rules,
baseline, and reporters: :class:`Severity`, :class:`RuleMeta`,
:class:`Violation`, :class:`ModuleUnit` (one parsed source file), and
the :class:`Rule` base class.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.lint.pragmas import PragmaIndex

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.lint.config import LintConfig
    from repro.lint.xmod.project import ProjectUnit


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail ``lint check`` (unless baselined or
    pragma-allowed); ``WARNING`` findings are reported but never fail
    the run (used for advisory diagnostics such as stale baseline
    entries and unused pragmas).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class RuleMeta:
    """Static description of one rule (also what ``lint explain`` prints).

    ``rationale`` ties the rule back to the paper/repo invariant it
    guards; ``fix_hint`` is the generic remediation (violations may
    carry a more specific one).
    """

    rule_id: str
    name: str
    severity: Severity
    summary: str
    rationale: str
    fix_hint: str


@dataclass(frozen=True)
class Violation:
    """One finding: rule id, severity, span, message, and fix hint.

    ``symbol`` is the dotted name of the innermost enclosing
    class/function (or ``"<module>"``), and ``snippet`` is the stripped
    source line — together with ``rule_id`` and ``path`` they form the
    line-number-insensitive identity used by the baseline ratchet (see
    :mod:`repro.lint.baseline`).
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""
    symbol: str = "<module>"
    snippet: str = ""

    @property
    def baseline_key(self) -> Tuple[str, str, str, str]:
        """Identity under the ratchet: stable across pure line motion."""
        return (self.rule_id, self.path, self.symbol, self.snippet)

    def format(self) -> str:
        """One-line human rendering (``path:line:col RULE message``)."""
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.rule_id} [{self.severity}] {self.message}"
        if self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text


@dataclass
class ModuleUnit:
    """One parsed Python source file, as seen by every rule.

    Rules receive the raw source (for snippets), the split lines, the
    parsed AST, the pragma index, and lazily-built shared analyses: the
    import map (dotted-name resolution for aliased imports) and the
    enclosing-symbol table.
    """

    path: Path
    rel: str
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaIndex
    _import_map: Optional[Dict[str, str]] = field(default=None, repr=False)
    _symbol_spans: Optional[List[Tuple[int, int, str]]] = field(
        default=None, repr=False
    )

    # -- shared analyses ----------------------------------------------------

    @property
    def import_map(self) -> Dict[str, str]:
        """Local name -> dotted origin, from every import in the file.

        ``import time as time_mod`` maps ``time_mod -> time``;
        ``from datetime import datetime`` maps
        ``datetime -> datetime.datetime``.  Function-level imports are
        included (protocol modules import lazily for startup cost).
        """
        if self._import_map is None:
            mapping: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else local
                        mapping[local] = origin
                elif isinstance(node, ast.ImportFrom):
                    if node.module is None or node.level:
                        continue  # relative imports never hit stdlib seams
                    for alias in node.names:
                        local = alias.asname or alias.name
                        mapping[local] = f"{node.module}.{alias.name}"
            self._import_map = mapping
        return self._import_map

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to its dotted origin, or None.

        ``time_mod.perf_counter`` (after ``import time as time_mod``)
        resolves to ``"time.perf_counter"``.  This is a lexical
        resolution: rebinding a module object to another name defeats
        it, which is acceptable for an advisory repo linter.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        origin = self.import_map.get(current.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def symbol_at(self, line: int) -> str:
        """Dotted name of the innermost def/class containing ``line``."""
        if self._symbol_spans is None:
            spans: List[Tuple[int, int, str]] = []

            def visit(node: ast.AST, prefix: str) -> None:
                for child in ast.iter_child_nodes(node):
                    if isinstance(
                        child,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        qualname = (
                            f"{prefix}.{child.name}" if prefix else child.name
                        )
                        end = getattr(child, "end_lineno", child.lineno)
                        spans.append((child.lineno, end or child.lineno,
                                      qualname))
                        visit(child, qualname)
                    else:
                        visit(child, prefix)

            visit(self.tree, "")
            self._symbol_spans = spans
        best: Optional[Tuple[int, int, str]] = None
        for start, end, qualname in self._symbol_spans:
            if start <= line <= end:
                if best is None or (end - start) <= (best[1] - best[0]):
                    best = (start, end, qualname)
        return best[2] if best is not None else "<module>"

    def snippet_at(self, line: int) -> str:
        """The stripped source line (1-based), '' when out of range."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`meta` and implement :meth:`check`.  Rules are
    stateless: one instance is reused across every module of a run.
    """

    meta: RuleMeta

    def check(
        self, module: ModuleUnit, config: "LintConfig"
    ) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    # -- helpers shared by concrete rules -----------------------------------

    def violation(
        self,
        module: ModuleUnit,
        node: ast.AST,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Violation:
        """Build a :class:`Violation` for ``node`` in ``module``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            rule_id=self.meta.rule_id,
            severity=self.meta.severity,
            path=module.rel,
            line=line,
            col=col,
            message=message,
            fix_hint=fix_hint if fix_hint is not None else self.meta.fix_hint,
            symbol=module.symbol_at(line),
            snippet=module.snippet_at(line),
        )


class ProjectRule(Rule):
    """Base class for cross-module (interprocedural) rules.

    The engine collects every :class:`ModuleUnit` first, builds one
    :class:`repro.lint.xmod.project.ProjectUnit`, and calls
    :meth:`check_project` once per rule.  Violations still carry a
    per-file ``path``/``line`` so pragma suppression and the baseline
    ratchet work unchanged.
    """

    def check(
        self, module: ModuleUnit, config: "LintConfig"
    ) -> Iterator[Violation]:
        """Project rules do not run per-module."""
        return iter(())

    def check_project(
        self, project: "ProjectUnit", modules: Dict[str, ModuleUnit],
        config: "LintConfig",
    ) -> Iterator[Violation]:
        """Yield violations found across ``project``.

        ``modules`` maps relative path -> loaded :class:`ModuleUnit`
        (for symbol/snippet rendering via :meth:`project_violation`).
        """
        raise NotImplementedError

    def project_violation(
        self,
        modules: Dict[str, ModuleUnit],
        rel: str,
        line: int,
        message: str,
        fix_hint: Optional[str] = None,
        col: int = 0,
    ) -> Violation:
        """Build a :class:`Violation` at ``rel:line``."""
        module = modules.get(rel)
        return Violation(
            rule_id=self.meta.rule_id,
            severity=self.meta.severity,
            path=rel,
            line=line,
            col=col,
            message=message,
            fix_hint=fix_hint if fix_hint is not None else self.meta.fix_hint,
            symbol=module.symbol_at(line) if module else "<module>",
            snippet=module.snippet_at(line) if module else "",
        )
