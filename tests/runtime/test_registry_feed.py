"""Runtime → MetricsRegistry feed: counters, gauges, fault kinds."""

from repro.net.party import Envelope, Party
from repro.obs.registry import MetricsRegistry
from repro.runtime.faults import FaultPlan
from repro.runtime.synchronizer import run_parties
from repro.utils.randomness import Randomness


class _Chatter(Party):
    """Sends one frame to every peer in round 0, halts at round 2."""

    def __init__(self, party_id: int, n: int) -> None:
        super().__init__(party_id)
        self.n = n

    def step(self, round_index, inbox):
        if round_index == 0:
            return [
                Envelope(sender=self.party_id, recipient=r, payload=b"x" * 4)
                for r in range(self.n)
                if r != self.party_id
            ]
        if round_index >= 2:
            self.halt(len(inbox))
        return []


def _run(n=4, fault_plan=None):
    registry = MetricsRegistry()
    run_parties(
        [_Chatter(i, n) for i in range(n)],
        registry=registry,
        fault_plan=fault_plan,
    )
    return registry


class TestRegistryFeed:
    def test_frame_and_round_counters(self):
        registry = _run()
        sent = registry.get("repro_transport_frames_sent_total")
        delivered = registry.get("repro_transport_frames_delivered_total")
        rounds = registry.get("repro_runtime_rounds_total")
        assert sent.value() == 12  # 4 parties x 3 peers
        assert delivered.value() == 12
        assert rounds.value() == 3

    def test_queue_depth_high_water(self):
        registry = _run()
        depth = registry.get("repro_transport_queue_depth_max")
        assert {depth.value(party=str(p)) for p in range(4)} == {3}
        inbox = registry.get("repro_runtime_inbox_depth_max")
        assert inbox.value() == 3

    def test_latency_histogram_observes_every_round(self):
        registry = _run()
        latency = registry.get("repro_runtime_round_latency_seconds")
        assert latency.count() == 3
        assert latency.sum() > 0

    def test_in_flight_returns_to_zero(self):
        registry = _run()
        assert registry.get("repro_transport_in_flight").value() == 0

    def test_fault_kind_counters(self):
        plan = FaultPlan(
            crashes={3: 1},
            duplicate_probability=1.0,
            rng=Randomness(5),
        )
        registry = _run(fault_plan=plan)
        faults = registry.get("repro_runtime_faults_injected_total")
        assert faults.value(kind="crash") == 1
        assert faults.value(kind="duplicate") > 0

    def test_render_includes_all_runtime_series(self):
        text = _run().render()
        for name in (
            "repro_runtime_round_latency_seconds",
            "repro_runtime_rounds_total",
            "repro_runtime_parties",
            "repro_transport_frames_sent_total",
            "repro_transport_queue_depth_max",
        ):
            assert name in text

    def test_no_registry_is_the_default_and_harmless(self):
        # run_parties without a registry must behave exactly as before.
        from repro.runtime.synchronizer import run_parties as run

        result = run([_Chatter(i, 3) for i in range(3)])
        assert result.rounds == 3
        # Round-0 sends arrive at round 1; the round-2 inbox is empty.
        assert set(result.outputs.values()) == {0}
