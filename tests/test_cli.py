"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


class TestCommands:
    def test_ba(self, capsys):
        assert main(["ba", "48"]) == 0
        output = capsys.readouterr().out
        assert "snark-srds" in output and "owf-srds" in output
        assert "agree=True" in output

    def test_tree(self, capsys):
        assert main(["tree", "128"]) == 0
        output = capsys.readouterr().out
        assert "good-path leaves" in output
        assert "2/3-honest: True" in output

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        output = capsys.readouterr().out
        assert "Thm 1.3" in output and "Thm 1.4" in output

    def test_runtime(self, capsys):
        assert main(["runtime", "16"]) == 0
        output = capsys.readouterr().out
        assert "transport=local" in output
        assert "matches-sync=True" in output
        assert "parity-with-hybrid=True" in output

    def test_runtime_tcp_with_trace_dir(self, tmp_path, capsys):
        target = tmp_path / "traces"
        assert main(["runtime", "16", "tcp", str(target)]) == 0
        output = capsys.readouterr().out
        assert "transport=tcp" in output
        assert "JSONL files" in output
        assert sorted(target.glob("party-*.jsonl"))

    def test_no_command_shows_usage(self, capsys):
        assert main([]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command_shows_usage(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_report_stdout(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        assert "Measured experiment report" in output
        assert "T1 — Table 1" in output

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["report", str(target)]) == 0
        assert target.exists()
        assert "E12" in target.read_text()
