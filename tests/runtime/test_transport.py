"""Unit tests for the runtime transport layer."""

import asyncio

import pytest

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics
from repro.runtime.transport import (
    AsyncLocalTransport,
    Frame,
    TcpTransport,
    make_transport,
)


def run(coroutine):
    return asyncio.run(coroutine)


class TestFrameEncoding:
    def test_roundtrip(self):
        frame = Frame(
            sender=3, recipient=9, payload=b"hello", sent_round=4,
            deliver_round=7, charge_bits=41, seq=12,
        )
        wire = frame.encode()
        length = int.from_bytes(wire[:4], "big")
        assert length == len(wire) - 4
        decoded = Frame.decode(wire[4:])
        assert decoded == frame

    def test_default_charge_is_payload_bits(self):
        frame = Frame(sender=0, recipient=1, payload=b"abc")
        assert frame.bits() == 24

    def test_charge_override(self):
        frame = Frame(sender=0, recipient=1, payload=b"abc", charge_bits=17)
        assert frame.bits() == 17
        assert Frame.decode(frame.encode()[4:]).bits() == 17

    def test_short_frame_rejected(self):
        with pytest.raises(NetworkError):
            Frame.decode(b"\x01\x02")


class TestAsyncLocalTransport:
    def test_send_collect_and_charge(self):
        async def main():
            metrics = CommunicationMetrics()
            transport = AsyncLocalTransport([0, 1, 2], metrics)
            await transport.start()
            await transport.send(0, Frame(sender=0, recipient=1, payload=b"xy"))
            await transport.flush()
            frames = transport.collect(1)
            assert [f.payload for f in frames] == [b"xy"]
            assert transport.collect(1) == []  # drained
            assert metrics.tally_of(0).bits_sent == 16
            assert metrics.tally_of(1).bits_received == 16
            await transport.stop()

        run(main())

    def test_sender_stamped(self):
        async def main():
            transport = AsyncLocalTransport([0, 1])
            await transport.start()
            # Party 0 claims to be party 1: the transport stamps the truth.
            await transport.send(0, Frame(sender=1, recipient=1, payload=b"z"))
            assert transport.collect(1)[0].sender == 0
            await transport.stop()

        run(main())

    def test_unknown_ids_rejected(self):
        async def main():
            transport = AsyncLocalTransport([0, 1])
            await transport.start()
            with pytest.raises(NetworkError):
                await transport.send(5, Frame(sender=5, recipient=0, payload=b""))
            with pytest.raises(NetworkError):
                await transport.send(0, Frame(sender=0, recipient=9, payload=b""))
            with pytest.raises(NetworkError):
                transport.collect(9)
            await transport.stop()

        run(main())

    def test_duplicate_party_ids_rejected(self):
        with pytest.raises(NetworkError):
            AsyncLocalTransport([0, 0, 1])


class TestTcpTransport:
    def test_frames_cross_real_sockets(self):
        async def main():
            metrics = CommunicationMetrics()
            transport = TcpTransport([0, 1, 2], metrics)
            await transport.start()
            assert transport.port is not None and transport.port > 0
            await transport.send(0, Frame(sender=0, recipient=2, payload=b"abc"))
            await transport.send(1, Frame(sender=1, recipient=2, payload=b"defg"))
            await transport.flush()
            assert transport.in_flight == 0
            frames = sorted(transport.collect(2), key=lambda f: f.sender)
            assert [f.payload for f in frames] == [b"abc", b"defg"]
            assert metrics.tally_of(2).bits_received == 8 * 7
            await transport.stop()

        run(main())

    def test_router_stamps_connection_identity(self):
        async def main():
            transport = TcpTransport([0, 1])
            await transport.start()
            # A frame claiming sender=1 sent over party 0's connection is
            # re-stamped by the router from the connection identity.
            await transport.send(0, Frame(sender=1, recipient=1, payload=b"!"))
            await transport.flush()
            assert transport.collect(1)[0].sender == 0
            await transport.stop()

        run(main())

    def test_charge_bits_survive_the_wire(self):
        async def main():
            metrics = CommunicationMetrics()
            transport = TcpTransport([0, 1], metrics)
            await transport.start()
            await transport.send(
                0, Frame(sender=0, recipient=1, payload=b"\x00\x00", charge_bits=13)
            )
            await transport.flush()
            assert metrics.tally_of(0).bits_sent == 13
            await transport.stop()

        run(main())


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_transport("local", [0]), AsyncLocalTransport)
        assert isinstance(make_transport("tcp", [0]), TcpTransport)

    def test_unknown_kind(self):
        with pytest.raises(NetworkError):
            make_transport("carrier-pigeon", [0])
