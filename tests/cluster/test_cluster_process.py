"""Multi-process cluster executions (marked ``cluster``; excluded from
tier-1 — run with ``pytest -m cluster``).

The acceptance properties:

* π_ba n=16 over 2 workers reproduces the single-process runtime driver
  bit-for-bit — outputs, ``max_bits_per_party``, and full per-party
  tallies — with and without a SIGKILL mid-round;
* a SIGKILLed worker resumes from its durable checkpoint and the run
  still converges to the identical answer;
* a crashed *supervisor* resumes from its own durable state;
* π_ba n=64 differential parity holds for both SRDS schemes.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.cluster.drivers import (
    make_scheme,
    run_balanced_ba_cluster,
    run_phase_king_cluster,
)
from repro.cluster.supervisor import ClusterConfig, describe_run
from repro.errors import ClusterError
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.runtime.drivers import (
    run_balanced_ba_runtime,
    run_phase_king_runtime,
)
from repro.runtime.replay import tallies_equal
from repro.utils.randomness import Randomness

pytestmark = pytest.mark.cluster

SEED = 2021


def _pi_ba_setup(n):
    params = ProtocolParameters()
    inputs = {i: i % 2 for i in range(n)}
    plan = random_corruption(
        n, params.max_corruptions(n), Randomness(SEED).fork("corruption")
    )
    return params, inputs, plan


@lru_cache(maxsize=None)
def _runtime_reference(n, scheme_name):
    params, inputs, plan = _pi_ba_setup(n)
    result, _ = run_balanced_ba_runtime(
        inputs, plan, make_scheme(scheme_name), params,
        Randomness(SEED).fork("protocol"),
    )
    return result


def _cluster_run(n, scheme_name, *, kill_plan=None, run_dir=None,
                 resume=False, max_restarts=3):
    params, inputs, plan = _pi_ba_setup(n)
    config = ClusterConfig(
        num_workers=2,
        kill_plan=dict(kill_plan or {}),
        max_restarts=max_restarts,
    )
    return run_balanced_ba_cluster(
        inputs, plan, make_scheme(scheme_name), params,
        Randomness(SEED).fork("protocol"),
        num_workers=2, checkpoint_interval=2,
        config=config, run_dir=run_dir, resume=resume,
    )


def _assert_parity(result, reference, n):
    assert result.agreement
    assert result.outputs == reference.outputs
    assert (
        result.metrics.max_bits_per_party
        == reference.metrics.max_bits_per_party
    )
    assert result.metrics.total_bits == reference.metrics.total_bits


class TestPiBaParity:
    def test_two_worker_parity_n16(self):
        result, cluster = _cluster_run(16, "snark")
        _assert_parity(result, _runtime_reference(16, "snark"), 16)
        assert cluster.restarts == 0

    def test_sigkill_mid_round_recovers_to_same_output(self):
        result, cluster = _cluster_run(16, "snark", kill_plan={3: 1})
        _assert_parity(result, _runtime_reference(16, "snark"), 16)
        assert cluster.restarts == 1

    def test_two_sigkills_same_worker(self):
        result, cluster = _cluster_run(
            16, "snark", kill_plan={2: 0, 6: 0}
        )
        _assert_parity(result, _runtime_reference(16, "snark"), 16)
        assert cluster.restarts == 2

    @pytest.mark.parametrize("scheme_name", ["snark", "owf"])
    def test_n64_differential_parity_both_schemes(self, scheme_name):
        result, cluster = _cluster_run(64, scheme_name)
        _assert_parity(result, _runtime_reference(64, scheme_name), 64)


class TestSupervisorResume:
    def test_restart_budget_exhaustion_then_resume(self, tmp_path):
        with pytest.raises(ClusterError, match="restart budget"):
            _cluster_run(
                16, "snark", kill_plan={5: 0}, run_dir=tmp_path,
                max_restarts=0,
            )
        status = describe_run(tmp_path)
        assert status["has_state"] and not status["completed"]
        assert status["round"] > 0

        result, _cluster = _cluster_run(
            16, "snark", run_dir=tmp_path, resume=True
        )
        _assert_parity(result, _runtime_reference(16, "snark"), 16)
        assert describe_run(tmp_path)["completed"]

    def test_describe_run_without_state(self, tmp_path):
        status = describe_run(tmp_path)
        assert not status["has_state"]


class TestPhaseKingCluster:
    def test_matches_runtime_driver(self):
        n = 16
        inputs = {i: i % 2 for i in range(n)}
        byzantine = (3,)
        reference, _metrics = run_phase_king_runtime(inputs, byzantine)
        outputs, cluster = run_phase_king_cluster(
            inputs, byzantine, num_workers=2
        )
        assert outputs == reference
        assert len(set(outputs.values())) == 1

    def test_metrics_tallies_match_runtime(self):
        n = 16
        inputs = {i: i % 2 for i in range(n)}
        byzantine = (3,)
        _, ref_metrics = run_phase_king_runtime(inputs, byzantine)
        _, cluster = run_phase_king_cluster(
            inputs, byzantine, num_workers=4
        )
        assert tallies_equal(cluster.metrics, ref_metrics, range(n))
