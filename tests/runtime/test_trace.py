"""Trace recorder: schema, JSONL round-tripping, determinism knobs."""

import json

import pytest

from repro.runtime.trace import (
    TraceRecorder,
    load_jsonl,
    summarize,
    wall_clock_recorder,
)


class TestRecording:
    def test_event_shape(self):
        trace = TraceRecorder()
        trace.record(0, "send", 3, peer=1, bits=16)
        (event,) = trace.events_of(0)
        assert event == {
            "party": 0, "kind": "send", "round": 3, "seq": 0,
            "peer": 1, "bits": 16,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, "teleport", 0)

    def test_per_party_sequence_numbers(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        trace.record(1, "send", 0)
        trace.record(0, "halt", 1)
        assert [e["seq"] for e in trace.events_of(0)] == [0, 1]
        assert [e["seq"] for e in trace.events_of(1)] == [0]

    def test_counts_and_queue_depth(self):
        trace = TraceRecorder()
        trace.record(0, "round-barrier", 0, queue_depth=4)
        trace.record(0, "round-barrier", 1, queue_depth=9)
        trace.record(0, "recv", 1, peer=2, bits=8)
        assert trace.count() == 3
        assert trace.count("round-barrier") == 2
        assert trace.max_queue_depth() == 9


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.record(5, "send", 0, peer=6, bits=24)
        trace.record(5, "halt", 1, output="3")
        paths = trace.dump_dir(tmp_path)
        assert [p.name for p in paths] == ["party-5.jsonl"]
        events = load_jsonl(paths[0])
        assert events == trace.events_of(5)

    def test_jsonl_lines_are_valid_json(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0, peer=1, bits=8)
        for line in trace.dumps(0).splitlines():
            json.loads(line)

    def test_summarize(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        trace.record(0, "send", 1)
        trace.record(0, "halt", 2)
        assert summarize(trace.events_of(0)) == {"send": 2, "halt": 1}


class TestDeterminism:
    def test_default_recorder_has_no_wall_times(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        assert "wall" not in trace.events_of(0)[0]

    def test_wall_clock_recorder_stamps_wall(self):
        trace = wall_clock_recorder()
        trace.record(0, "send", 0)
        assert isinstance(trace.events_of(0)[0]["wall"], float)

    def test_fingerprint_distinguishes_traces(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "send", 0, peer=1)
        b.record(0, "send", 0, peer=2)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_equal_for_equal_traces(self):
        a, b = TraceRecorder(), TraceRecorder()
        for trace in (a, b):
            trace.record(1, "recv", 4, peer=0, bits=8)
        assert a.fingerprint() == b.fingerprint()
