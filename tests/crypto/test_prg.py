"""Tests for the counter-mode PRG."""

from repro.crypto.prg import PRG


class TestPRG:
    def test_deterministic(self):
        assert PRG(b"seed").expand(100) == PRG(b"seed").expand(100)

    def test_seed_separation(self):
        assert PRG(b"a").expand(32) != PRG(b"b").expand(32)

    def test_domain_separation(self):
        assert PRG(b"s", domain="x").expand(32) != PRG(b"s", domain="y").expand(32)

    def test_expand_lengths(self):
        prg = PRG(b"seed")
        for length in (0, 1, 31, 32, 33, 100):
            assert len(prg.expand(length)) == length

    def test_prefix_consistency(self):
        prg = PRG(b"seed")
        assert prg.expand(100)[:40] == prg.expand(40)

    def test_random_access_blocks(self):
        prg = PRG(b"seed")
        stream = prg.expand(96)
        assert prg.block(0) == stream[0:32]
        assert prg.block(2) == stream[64:96]

    def test_blocks_distinct(self):
        prg = PRG(b"seed")
        assert prg.block(0) != prg.block(1)
