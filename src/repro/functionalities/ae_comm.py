"""The reactive almost-everywhere communication functionality f_ae-comm.

§3.1: on first invocation the functionality establishes the communication
tree (the adversary — or here, the simulated KSSV'06 protocol — picks an
(n, I)-tree per Def. 3.4) and reveals to each party its local view.  In
every later invocation, the supreme committee can send a message that is
delivered to all parties *except* the isolated set D (the parties without
a majority of good-path leaves), whose identities no honest party learns.

Communication is charged per the cost model (see
:mod:`repro.protocols.cost_model`): KSSV's realization costs polylog(n)
bits/party for establishment and payload * polylog for each send-down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.aetree.analysis import isolated_parties, validate_structure
from repro.aetree.tree import CommTree, build_tree
from repro.errors import ProtocolError
from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics
from repro.params import ProtocolParameters
from repro.protocols import cost_model
from repro.utils.randomness import Randomness


class AlmostEverywhereComm:
    """One instance of f_ae-comm for one protocol execution."""

    def __init__(
        self,
        n: int,
        params: ProtocolParameters,
        plan: CorruptionPlan,
        metrics: CommunicationMetrics,
        rng: Randomness,
        tree: Optional[CommTree] = None,
    ) -> None:
        self.n = n
        self.params = params
        self.plan = plan
        self.metrics = metrics
        if tree is None:
            tree = build_tree(
                n, params, rng.fork("ae-comm-tree"),
                honest_root_hint=plan.honest,
            )
        validate_structure(tree, params)
        self.tree = tree
        self.isolated: Set[int] = isolated_parties(tree, plan)
        if committee_corruption_reaches_third(plan, tree.supreme_committee):
            raise ProtocolError(
                "supreme committee lost its 2/3-honest majority; the "
                "corruption budget violates the model"
            )
        charge = cost_model.ae_comm_establish(n, params)
        metrics.charge_functionality(
            range(n),
            bits_per_party=charge.bits_per_party,
            peers_per_party=charge.peers_per_party,
            rounds=charge.rounds,
        )

    @property
    def supreme_committee(self) -> Sequence[int]:
        """Parties assigned to the root node."""
        return self.tree.supreme_committee

    def send_down(self, payload_bits: int, value: object) -> Dict[int, object]:
        """Supreme committee broadcasts down the tree.

        Returns the per-party delivery map: every party except the
        isolated set receives ``value``; isolated parties receive
        nothing (they are absent from the map).  The adversary could
        substitute values for *corrupt* recipients, but corrupt parties'
        views are adversary-internal anyway, so the map reports the
        honest deliveries.
        """
        charge = cost_model.ae_comm_send_down(self.n, self.params, payload_bits)
        self.metrics.charge_functionality(
            range(self.n),
            bits_per_party=charge.bits_per_party,
            peers_per_party=charge.peers_per_party,
            rounds=charge.rounds,
        )
        return {
            party: value
            for party in range(self.n)
            if party not in self.isolated
        }


def committee_corruption_reaches_third(
    plan: CorruptionPlan, committee: Sequence[int]
) -> bool:
    """Whether at least 1/3 of a committee is corrupt (= node is bad)."""
    corrupt = sum(1 for member in committee if plan.is_corrupt(member))
    return 3 * corrupt >= len(committee)
