"""Tests for corruption planning."""

import pytest

from repro.errors import ConfigurationError
from repro.net.adversary import (
    CorruptionPlan,
    corrupt_after_setup,
    prefix_corruption,
    random_corruption,
    targeted_corruption,
)
from repro.utils.randomness import Randomness


class TestPlans:
    def test_random_corruption_size(self, rng):
        plan = random_corruption(100, 20, rng)
        assert plan.t == 20
        assert len(plan.honest) == 80

    def test_honest_complement(self, rng):
        plan = random_corruption(50, 10, rng)
        assert set(plan.honest) | plan.corrupted == set(range(50))
        assert not set(plan.honest) & plan.corrupted

    def test_is_corrupt(self, rng):
        plan = targeted_corruption(10, [2, 5])
        assert plan.is_corrupt(2)
        assert not plan.is_corrupt(3)

    def test_prefix_corruption(self):
        plan = prefix_corruption(10, 3)
        assert plan.corrupted == {0, 1, 2}

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            targeted_corruption(10, [10])
        with pytest.raises(ConfigurationError):
            random_corruption(10, 10, Randomness(1))
        with pytest.raises(ConfigurationError):
            prefix_corruption(10, -1)

    def test_deterministic_given_seed(self):
        a = random_corruption(100, 20, Randomness(5))
        b = random_corruption(100, 20, Randomness(5))
        assert a.corrupted == b.corrupted


class TestBudget:
    """Construction-time enforcement of the corruption budget ``t``."""

    def test_over_budget_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            CorruptionPlan(corrupted=frozenset({0, 1, 2}), n=10, budget=2)

    def test_at_budget_accepted(self):
        plan = CorruptionPlan(corrupted=frozenset({0, 1}), n=10, budget=2)
        assert plan.t == 2
        assert plan.budget == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            CorruptionPlan(corrupted=frozenset(), n=10, budget=-1)

    def test_zero_budget_allows_empty_plan_only(self):
        plan = CorruptionPlan(corrupted=frozenset(), n=10, budget=0)
        assert plan.t == 0
        with pytest.raises(ConfigurationError):
            CorruptionPlan(corrupted=frozenset({3}), n=10, budget=0)

    def test_no_budget_is_unchecked(self):
        # Explicitly unbounded plans (e.g. the campaign's planted
        # over-threshold strategy) stay constructible.
        plan = CorruptionPlan(corrupted=frozenset(range(6)), n=10)
        assert plan.budget is None
        assert plan.t == 6

    def test_targeted_corruption_budget_passthrough(self):
        with pytest.raises(ConfigurationError):
            targeted_corruption(10, [1, 2, 3], budget=2)
        plan = targeted_corruption(10, [1, 2], budget=2)
        assert plan.corrupted == {1, 2}

    def test_builders_attach_budget(self, rng):
        assert random_corruption(30, 7, rng).budget == 7
        assert prefix_corruption(30, 7).budget == 7


class TestSetupAdaptive:
    def test_default_is_random(self, rng):
        plan = corrupt_after_setup(b"setup", 50, 10, rng)
        assert plan.t == 10

    def test_strategy_applied(self, rng):
        def strategy(setup, n, t, rng_):
            # "Inspect" the setup: corrupt parties whose id matches a byte.
            return targeted_corruption(n, list(range(t)))

        plan = corrupt_after_setup(b"setup", 50, 5, rng, strategy)
        assert plan.corrupted == {0, 1, 2, 3, 4}

    def test_over_budget_strategy_rejected(self, rng):
        def greedy(setup, n, t, rng_):
            return targeted_corruption(n, list(range(t + 1)))

        with pytest.raises(ConfigurationError):
            corrupt_after_setup(b"setup", 50, 5, rng, greedy)
