"""Shared EADDRINUSE-tolerant listener binding.

Three layers of the repo open loopback listeners — the runtime's
:class:`~repro.runtime.transport.TcpTransport` router, the cluster
supervisor's control channel, and the :mod:`repro.serve` gateway — and
all want the same policy for a *preferred* port:

1. try the preferred port;
2. if it is busy (``EADDRINUSE``), retry a bounded number of times
   (racing processes usually free the port within a beat);
3. if every retry loses the race, fall back to an OS-assigned ephemeral
   port rather than failing the run.

``port=0``/``None`` skips straight to OS-assigned.  Any error other
than ``EADDRINUSE`` on a preferred port is re-raised immediately — a
bad host or a permissions problem is a configuration bug, not a race.

Two entry points cover the two socket styles in the tree:
:func:`open_listener` (blocking sockets, used by the cluster control
plane) and :func:`start_asyncio_server` (asyncio servers, used by the
TCP transport router and the gateway).
"""

from __future__ import annotations

import asyncio
import errno
import socket
import time
from typing import Awaitable, Callable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError

ConnectedCallback = Callable[
    [asyncio.StreamReader, asyncio.StreamWriter], Awaitable[None]
]


def bind_attempt_plan(port: Optional[int], retries: int) -> List[int]:
    """The port sequence one bind policy walks through.

    A preferred port appears ``1 + retries`` times, followed by the
    terminal ``0`` (OS-assigned) fallback; no preference means just
    ``[0]``.
    """
    if not port:
        return [0]
    return [port] * (1 + max(0, retries)) + [0]


def open_listener(
    host: str = "127.0.0.1",
    port: int = 0,
    retries: int = 3,
    retry_delay: float = 0.05,
) -> Tuple[socket.socket, int]:
    """Open a blocking TCP listener under the shared bind policy.

    Returns ``(listening socket, bound port)``.  Raises
    :class:`~repro.errors.NetworkError` on any non-``EADDRINUSE``
    failure (wrapped, with the original as ``__cause__``).
    """
    attempts = bind_attempt_plan(port, retries)
    for index, candidate in enumerate(attempts):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, candidate))
            listener.listen()
            return listener, listener.getsockname()[1]
        except OSError as exc:
            listener.close()
            if candidate and exc.errno == errno.EADDRINUSE:
                if attempts[index + 1]:
                    time.sleep(retry_delay)
                continue
            raise NetworkError(f"cannot bind listener: {exc}") from exc
    raise NetworkError(  # pragma: no cover - plan always ends in port 0
        "cannot bind listener: attempt plan exhausted"
    )


async def start_asyncio_server(
    client_connected_cb: ConnectedCallback,
    host: str,
    port: Optional[int],
    retry_delays: Sequence[float] = (),
) -> Tuple["asyncio.base_events.Server", int]:
    """Start an asyncio server under the shared bind policy.

    ``retry_delays`` is the pause before each *retry* of a busy
    preferred port (callers with a seeded
    :func:`~repro.runtime.transport.backoff_schedule` pass it here, so
    retry storms replay deterministically).  Returns
    ``(server, busy_retries)`` where ``busy_retries`` counts the
    ``EADDRINUSE`` hits on the preferred port.
    """
    busy_retries = 0
    if port:
        for delay in [0.0, *retry_delays]:
            if delay:
                await asyncio.sleep(delay)
            try:
                server = await asyncio.start_server(
                    client_connected_cb, host=host, port=port
                )
                return server, busy_retries
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE:
                    raise
                busy_retries += 1
        # Preferred port never freed up: OS-assigned fallback.
    server = await asyncio.start_server(
        client_connected_cb, host=host, port=0
    )
    return server, busy_retries


def bound_port(server: "asyncio.base_events.Server") -> int:
    """The port an asyncio server actually bound (first socket)."""
    sockets = server.sockets
    if not sockets:
        raise NetworkError("server has no bound sockets")
    return int(sockets[0].getsockname()[1])
