#!/usr/bin/env python3
"""Attack gallery: why the paper's defenses are load-bearing.

Three demonstrations, each an executable version of an argument in the
paper:

1. **No setup, no boost (Thm 1.3)** — the simulation attack fools an
   isolated party in the CRS model, while the identical attack fails
   against SRDS-certified messages.
2. **Weak keys, no boost (Thm 1.4)** — when key generation is
   invertible (one-wayness broken), a PKI stops helping.
3. **Double-counting (§2.2)** — with the disjoint-range discipline
   removed from the SNARK-based SRDS, a sub-n/3 coalition forges a
   majority certificate by replaying its own aggregate.

Usage::

    python examples/attacks_and_defenses.py
"""

from repro.lowerbounds import crs_attack, owf_attack
from repro.srds.ablation import NoRangeCheckSnarkSRDS
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness


def demo_crs_attack() -> None:
    print("=" * 64)
    print("1. Simulation attack on a single-round boost (Thm 1.3)")
    print("=" * 64)
    rng = Randomness(1)
    n, t, budget, trials = 200, 30, 10, 60
    crs_rate = crs_attack.attack_success_rate(
        n, t, budget, trials, rng.fork("crs")
    )
    pki_rate = crs_attack.attack_success_rate(
        n, t, budget, trials, rng.fork("pki"), with_pki=True
    )
    print(f"n={n}, t={t}, {budget} messages/party, {trials} trials")
    print(f"  CRS-only model : isolated victim errs in {crs_rate:.0%} of trials")
    print(f"  with PKI/SRDS  : isolated victim errs in {pki_rate:.0%} of trials")
    print("  -> public-coin setup cannot authenticate the majority's value;")
    print("     private-coin setup (PKI) is necessary.\n")


def demo_owf_attack() -> None:
    print("=" * 64)
    print("2. PKI-inversion attack when one-wayness fails (Thm 1.4)")
    print("=" * 64)
    rng = Randomness(2)
    n, t, budget, trials = 80, 12, 6, 20
    for secret_bits, label in ((8, "8-bit (invertible)"),
                               (40, "40-bit (one-way)")):
        rate = owf_attack.attack_success_rate(
            n, t, budget, secret_bits, effort_bits=12, trials=trials,
            rng=rng.fork(label),
        )
        print(f"  keys {label:22s}: victim errs in {rate:.0%} of trials")
    print("  -> with invertible keygen the adversary recovers honest")
    print("     signing keys and revives the CRS attack; OWF is necessary.\n")


def demo_double_counting() -> None:
    print("=" * 64)
    print("3. Replay/double-counting vs the range-check discipline (§2.2)")
    print("=" * 64)
    rng = Randomness(3)
    n = 90
    coalition_size = 29  # strictly below n/3
    message = b"forged-majority"
    for label, scheme_cls in (
        ("secure SRDS ", SnarkSRDS),
        ("ranges OFF  ", NoRangeCheckSnarkSRDS),
    ):
        scheme = scheme_cls(base_scheme=HashRegistryBase())
        pp = scheme.setup(n, rng.fork(label))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"{label}{i}"))
        coalition = [
            scheme.sign(pp, i, sks[i], message)
            for i in range(coalition_size)
        ]
        once = scheme.aggregate(pp, vks, message, coalition)
        replayed = scheme.aggregate(pp, vks, message, [once, once, once])
        forged = scheme.verify(pp, vks, message, replayed)
        print(f"  {label}: {coalition_size} signers replayed 3x -> "
              f"claimed count {replayed.count:3d}, "
              f"majority certificate accepted: {forged}")
    print("  -> without disjoint index ranges, a minority forges a")
    print("     majority certificate; the Fig. 3 subtlety is load-bearing.")


def main() -> None:
    demo_crs_attack()
    demo_owf_attack()
    demo_double_counting()


if __name__ == "__main__":
    main()
