"""Tests for canonical serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SerializationError
from repro.utils import serialization as ser


class TestVarint:
    def test_zero(self):
        assert ser.encode_uint(0) == b"\x00"
        assert ser.decode_uint(b"\x00") == (0, 1)

    def test_small_values_single_byte(self):
        for value in range(128):
            assert len(ser.encode_uint(value)) == 1

    def test_larger_values_multi_byte(self):
        assert len(ser.encode_uint(128)) == 2
        assert len(ser.encode_uint(1 << 20)) == 3

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            ser.encode_uint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(SerializationError):
            ser.decode_uint(b"\x80")

    def test_empty_rejected(self):
        with pytest.raises(SerializationError):
            ser.decode_uint(b"")

    @given(st.integers(min_value=0, max_value=1 << 64))
    def test_roundtrip(self, value):
        encoded = ser.encode_uint(value)
        decoded, offset = ser.decode_uint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=0, max_value=1 << 32),
           st.integers(min_value=0, max_value=1 << 32))
    def test_concatenated_decode(self, a, b):
        blob = ser.encode_uint(a) + ser.encode_uint(b)
        first, pos = ser.decode_uint(blob)
        second, end = ser.decode_uint(blob, pos)
        assert (first, second) == (a, b)
        assert end == len(blob)


class TestBytes:
    @given(st.binary(max_size=500))
    def test_roundtrip(self, blob):
        encoded = ser.encode_bytes(blob)
        decoded, offset = ser.decode_bytes(encoded)
        assert decoded == blob
        assert offset == len(encoded)

    def test_truncated_rejected(self):
        encoded = ser.encode_bytes(b"hello")
        with pytest.raises(SerializationError):
            ser.decode_bytes(encoded[:-1])

    def test_empty_bytes(self):
        assert ser.decode_bytes(ser.encode_bytes(b"")) == (b"", 1)


class TestSequence:
    @given(st.lists(st.binary(max_size=64), max_size=20))
    def test_roundtrip(self, items):
        encoded = ser.encode_sequence(items)
        decoded, offset = ser.decode_sequence(encoded)
        assert decoded == items
        assert offset == len(encoded)

    def test_empty_sequence(self):
        assert ser.decode_sequence(ser.encode_sequence([])) == ([], 1)

    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=8),
           st.lists(st.binary(max_size=32), min_size=1, max_size=8))
    def test_injective(self, a, b):
        if a != b:
            assert ser.encode_sequence(a) != ser.encode_sequence(b)


class TestStrings:
    @given(st.text(max_size=100))
    def test_roundtrip(self, text):
        decoded, _ = ser.decode_str(ser.encode_str(text))
        assert decoded == text

    def test_invalid_utf8_rejected(self):
        blob = ser.encode_bytes(b"\xff\xfe")
        with pytest.raises(SerializationError):
            ser.decode_str(blob)


class TestFixedWidth:
    @given(st.integers(min_value=0, max_value=(1 << 256) - 1))
    def test_roundtrip_32_bytes(self, value):
        encoded = ser.int_to_fixed_bytes(value, 32)
        assert len(encoded) == 32
        assert ser.fixed_bytes_to_int(encoded) == value

    def test_overflow_rejected(self):
        with pytest.raises(SerializationError):
            ser.int_to_fixed_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            ser.int_to_fixed_bytes(-5, 4)


class TestCanonicalTuple:
    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=5),
           st.lists(st.binary(max_size=32), min_size=1, max_size=5))
    def test_injective_across_field_boundaries(self, a, b):
        if a != b:
            assert ser.canonical_tuple(*a) != ser.canonical_tuple(*b)

    def test_boundary_shift_distinct(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert ser.canonical_tuple(b"ab", b"c") != ser.canonical_tuple(b"a", b"bc")


def test_bit_length():
    assert ser.bit_length(b"") == 0
    assert ser.bit_length(b"abc") == 24
