"""Deterministic randomness plumbing.

All protocol and experiment code takes an explicit seeded source so that
every test, benchmark, and security-game run is reproducible.  The wrapper
also offers the byte/element helpers the crypto substrates need, which
:mod:`random` does not provide directly.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class Randomness:
    """A seeded randomness source with crypto-shaped helpers.

    This intentionally wraps :class:`random.Random` (a PRG, not a CSPRNG):
    the repo is a simulator and reproducibility trumps entropy.  Security
    arguments in the library are made against *modeled* adversaries that do
    not attack the simulation's PRG.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def fork(self, label: str) -> "Randomness":
        """Derive an independent child source from a string label.

        Forking lets one top-level seed drive many components without
        correlated streams: the child seed mixes the parent seed with the
        label deterministically.
        """
        material = f"{self._seed}/fork/{label}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        child_seed = int.from_bytes(digest[:8], "big")
        return Randomness(child_seed)

    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` uniform bytes."""
        return self._rng.getrandbits(8 * length).to_bytes(length, "big") if length else b""

    def random_int(self, upper_exclusive: int) -> int:
        """Uniform integer in ``[0, upper_exclusive)``."""
        return self._rng.randrange(upper_exclusive)

    def random_int_range(self, low: int, high_inclusive: int) -> int:
        """Uniform integer in ``[low, high_inclusive]``."""
        return self._rng.randint(low, high_inclusive)

    def random_bit(self) -> int:
        """Uniform bit."""
        return self._rng.getrandbits(1)

    def bernoulli(self, probability: float) -> bool:
        """Biased coin: ``True`` with the given probability."""
        return self._rng.random() < probability

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]`` (latency-model draws)."""
        return self._rng.uniform(low, high)

    def lognormal(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Log-normal draw: ``exp(N(mu, sigma))`` — the heavy-tailed
        link-latency shape the asynchrony models use."""
        return self._rng.lognormvariate(mu, sigma)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def sample(self, population: Sequence[T], count: int) -> List[T]:
        """Sample ``count`` distinct elements."""
        return self._rng.sample(population, count)

    def choice(self, population: Sequence[T]) -> T:
        """Uniform choice of one element."""
        return self._rng.choice(population)

    def subset(self, universe: Sequence[T], size: int) -> List[T]:
        """A uniform ``size``-subset of ``universe``, in stable order."""
        chosen = set(self._rng.sample(range(len(universe)), size))
        return [item for index, item in enumerate(universe) if index in chosen]


def make_randomness(seed: Optional[int] = None, label: str = "") -> Randomness:
    """Construct a :class:`Randomness`, defaulting to seed 0 for tests."""
    base = Randomness(seed if seed is not None else 0)
    return base.fork(label) if label else base
