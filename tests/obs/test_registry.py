"""Metrics registry: instrument semantics + Prometheus exposition."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("frames_total", "frames")
        counter.inc()
        counter.inc(3)
        assert counter.value() == 4

    def test_negative_inc_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c_total", "h").inc(-1)

    def test_labels(self):
        counter = Counter("faults_total", "h", ("kind",))
        counter.inc(kind="delay")
        counter.inc(2, kind="duplicate")
        assert counter.value(kind="duplicate") == 2
        with pytest.raises(ConfigurationError):
            counter.inc()  # missing the label

    def test_render(self):
        counter = Counter("faults_total", "injected faults", ("kind",))
        counter.inc(kind="delay")
        text = "\n".join(counter.render())
        assert "# HELP faults_total injected faults" in text
        assert "# TYPE faults_total counter" in text
        assert 'faults_total{kind="delay"} 1' in text


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("in_flight", "h")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_set_max_keeps_high_water(self):
        gauge = Gauge("depth", "h")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value() == 3


class TestHistogram:
    def test_observe_buckets_sum_count(self):
        histogram = Histogram("lat", "h", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        text = "\n".join(histogram.render())
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_needs_a_bucket(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", "h", buckets=())


class TestRegistry:
    def test_idempotent_get(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "h")
        assert registry.counter("a_total") is first

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "h")
        with pytest.raises(ConfigurationError):
            registry.gauge("a_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "h", ("kind",))
        with pytest.raises(ConfigurationError):
            registry.counter("a_total", "h", ("other",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("ok_total", "h", ("bad-label",))

    def test_render_is_sorted_and_parseable(self):
        registry = MetricsRegistry()
        registry.gauge("z_gauge", "h").set(1)
        registry.counter("a_total", "h").inc()
        text = registry.render()
        assert text.index("a_total") < text.index("z_gauge")
        assert text.endswith("\n")
        # every sample line is "<series> <value>"
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            assert series
            float(value)

    def test_label_value_escaping(self):
        counter = Counter("c_total", "h", ("kind",))
        counter.inc(kind='we"ird\nvalue\\x')
        (line,) = [ln for ln in counter.render() if not ln.startswith("#")]
        assert '\\"' in line and "\\n" in line and "\\\\" in line
