"""SCH001 fixture (bad): struct and dataclass codecs that drifted apart."""

import struct
from dataclasses import dataclass

_RECORD = struct.Struct(">III")
_TICKET = struct.Struct(">II")


def decode_record(data):
    sender, recipient, charge_bits = _RECORD.unpack_from(data, 0)
    return sender, recipient, charge_bits


def encode_record(sender, recipient, charge_bits):
    # Field order drift: sender/recipient swapped against the decoder.
    return _RECORD.pack(recipient, sender, charge_bits)


def encode_short(sender, recipient):
    # Arity drift: two values into a three-field format.
    return _RECORD.pack(sender, recipient)


@dataclass
class Ticket:
    kind: int
    charge_bits: int
    note: str

    def encode(self):
        # Coverage drift: `note` rides the constructor but not the wire.
        return _TICKET.pack(self.kind, self.charge_bits)

    @classmethod
    def from_bytes(cls, data):
        kind, charge_bits = _TICKET.unpack_from(data, 0)
        return cls(kind=kind, charge_bits=charge_bits, note="")
