"""The supervisor⇄worker control channel.

All cluster control traffic — job dispatch, round barriers, heartbeats,
checkpoint commands, and the worker's per-round results — travels as
length-prefixed :class:`Message` records over one blocking TCP
connection per worker.  Party-to-party traffic rides *inside* ROUND and
DONE messages as batches of :class:`~repro.runtime.transport.Frame`
records in the transport's existing wire encoding, so the bytes a party
emits on the cluster are exactly the bytes it emits under
:class:`~repro.runtime.transport.TcpTransport`.

Message layout (everything length-prefixed with the transport's 4-byte
big-endian ``_LENGTH`` prefix or :mod:`repro.utils.serialization`
varints)::

    u32 total | bytes json_header | bytes blob | seq frame_encodings

* ``json_header`` — ``{"kind": ..., **fields}``, sorted keys: the small
  structured part (round numbers, worker ids, shard assignments);
* ``blob`` — an opaque pickle for Python payloads that are not JSON
  (party outputs, the job description);
* ``frame_encodings`` — each item is ``Frame.encode()`` verbatim.

Kinds (see ``docs/cluster.md`` for the full state machine):

===============  ======  =======================================================
kind             dir     meaning
===============  ======  =======================================================
``hello``        w → s   worker is up; fields: ``worker_id``
``job``          s → w   shard assignment; blob: pickled ClusterJob;
                         fields: ``shard`` (party ids), ``resume`` (bool),
                         ``checkpoint_dir``, ``checkpoint_name``
``resumed``      w → s   checkpoint loaded; fields: ``next_round``
``round``        s → w   step one round; fields: ``round``, ``replay``;
                         frames: the shard's due deliveries
``done``         w → s   round finished; fields: ``round``; frames: the
                         shard's emissions; blob: pickled
                         ``{"outputs": {...}, "trace": {...}}``
``checkpoint``   s → w   write a checkpoint at the current barrier;
                         fields: ``round``
``checkpointed`` w → s   ack; fields: ``round``
``heartbeat``    w → s   liveness beacon (worker-side timer thread);
                         fields: ``progress`` (moved-bytes counter, so
                         the supervisor can tell dead from slow)
``peers``        s → w   mesh address book; fields: ``addresses``
                         (``{worker_id: [host, port]}``)
``peerdown``     w → s   a mesh link failed; fields: ``peer``,
                         ``round``, ``reason``
``stop``         s → w   run over; worker exits 0
``part``         both    one chunk of an oversized message; fields:
                         ``last`` (bool); blob: a slice of the encoded
                         body (channel-internal, never seen by callers)
===============  ======  =======================================================

:class:`MessageChannel` wraps one socket with a send lock (the worker's
heartbeat thread and main loop share the connection) and a receive
buffer that survives timeouts: a ``recv`` interrupted by its deadline
keeps any partial bytes and resumes cleanly on the next call, so the
supervisor can poll with short deadlines without ever losing framing.
"""

# lint: file-allow[ACC001] reason=control-channel sockets; party traffic is
# charged by the supervisor per routed Frame, never from this module

from __future__ import annotations

import json
import pickle
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ClusterError
from repro.runtime.transport import Frame, _LENGTH
from repro.utils.serialization import (
    decode_bytes,
    decode_sequence,
    encode_bytes,
    encode_sequence,
)

# Hard cap on a single wire record.  Logical messages larger than the
# chunk threshold are split into ``part`` records by the channel and
# reassembled on receive, so this bounds framing damage from a corrupt
# length prefix — not the size of a round's traffic.
_MAX_MESSAGE = 1 << 28
#: Bodies above this are shipped as a train of ``part`` records.  A
#: heavy gossip round at n=64 under the OWF scheme can exceed 256 MiB
#: in one DONE message; chunking keeps every wire record small while
#: letting logical messages grow with the protocol.
_CHUNK_BYTES = 32 << 20
#: Sanity bound on a reassembled chunked message.
_MAX_ASSEMBLED = 1 << 33

HELLO = "hello"
JOB = "job"
RESUMED = "resumed"
ROUND = "round"
DONE = "done"
CHECKPOINT = "checkpoint"
CHECKPOINTED = "checkpointed"
HEARTBEAT = "heartbeat"
PEERS = "peers"
PEERDOWN = "peerdown"
STOP = "stop"
PART = "part"

KINDS = (
    HELLO, JOB, RESUMED, ROUND, DONE, CHECKPOINT, CHECKPOINTED,
    HEARTBEAT, PEERS, PEERDOWN, STOP, PART,
)

#: Control-plane byte meter: ``(direction, kind, num_bytes)`` with
#: direction ``"send"`` or ``"recv"``.  Installed by the supervisor so
#: the flow ledger can account control overhead separately from the
#: party traffic it routes (which is charged per Frame, not here).
ChannelMeter = Callable[[str, str, int], None]


@dataclass
class Message:
    """One control-channel message."""

    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    frames: List[Frame] = field(default_factory=list)
    blob: bytes = b""

    def encode_body(self) -> bytes:
        """Wire encoding without the length prefix (no size cap —
        :class:`MessageChannel` chunks oversized bodies on send)."""
        if self.kind not in KINDS:
            raise ClusterError(f"unknown control message kind {self.kind!r}")
        header = json.dumps(
            {"kind": self.kind, **self.fields},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return (
            encode_bytes(header)
            + encode_bytes(self.blob)
            + encode_sequence([frame.encode() for frame in self.frames])
        )

    def encode(self) -> bytes:
        """Length-prefixed single-record wire encoding."""
        body = self.encode_body()
        if len(body) > _MAX_MESSAGE:
            raise ClusterError(
                f"control message exceeds {_MAX_MESSAGE} bytes"
            )
        return _LENGTH.pack(len(body)) + body

    @staticmethod
    def decode(body: bytes) -> "Message":
        """Inverse of :meth:`encode` (without the length prefix)."""
        try:
            header_bytes, offset = decode_bytes(body, 0)
            blob, offset = decode_bytes(body, offset)
            frame_blobs, offset = decode_sequence(body, offset)
            header = json.loads(header_bytes.decode("utf-8"))
        except Exception as exc:  # framing or JSON garbage
            raise ClusterError(f"corrupt control message: {exc}") from exc
        if offset != len(body):
            raise ClusterError(
                f"{len(body) - offset} trailing bytes in control message"
            )
        if not isinstance(header, dict) or "kind" not in header:
            raise ClusterError("control message header has no kind")
        kind = header.pop("kind")
        if kind not in KINDS:
            raise ClusterError(f"unknown control message kind {kind!r}")
        frames = [
            Frame.decode(item[_LENGTH.size:]) for item in frame_blobs
        ]
        return Message(kind=kind, fields=header, frames=frames, blob=blob)

    # -- blob helpers ---------------------------------------------------------

    def payload(self) -> Any:
        """Unpickle the opaque blob (``None`` when empty)."""
        if not self.blob:
            return None
        try:
            return pickle.loads(self.blob)
        except Exception as exc:
            raise ClusterError(f"corrupt message payload: {exc}") from exc

    @staticmethod
    def pack_payload(obj: Any) -> bytes:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


class ChannelClosed(ClusterError):
    """The peer closed the connection at a message boundary."""


class MessageChannel:
    """A blocking socket carrying :class:`Message` records.

    Sends are serialized by a lock (heartbeat thread vs. main loop);
    receives keep a persistent buffer so a deadline expiring mid-message
    never loses framing — the next ``recv`` resumes where the last one
    stopped.
    """

    def __init__(self, sock: socket.socket,
                 meter: Optional[ChannelMeter] = None) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._buffer = bytearray()
        self._parts: List[bytes] = []  # in-flight chunked reassembly
        self._closed = False
        self._meter = meter
        #: Raw bytes pulled off the socket, bumped per chunk *during*
        #: reassembly — a supervisor watching this counter across a
        #: recv timeout can tell "mid-way through a huge message" from
        #: "nothing arriving at all".
        self.bytes_received = 0
        #: Bytes shipped, excluding heartbeat beacons — the worker's
        #: control-plane contribution to its progress report.
        self.data_bytes_sent = 0
        try:
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        except OSError:  # pragma: no cover - platform quirk
            pass

    def send(self, message: Message) -> None:
        """Ship one message (thread-safe).

        Bodies above ``_CHUNK_BYTES`` are split into a train of
        ``part`` records sent under one lock acquisition, so the
        heartbeat thread can never interleave a record mid-train.
        """
        body = message.encode_body()
        if len(body) <= _CHUNK_BYTES:
            records = [_LENGTH.pack(len(body)) + body]
        else:
            pieces = [
                body[offset:offset + _CHUNK_BYTES]
                for offset in range(0, len(body), _CHUNK_BYTES)
            ]
            records = [
                Message(
                    PART,
                    {"last": index == len(pieces) - 1},
                    blob=piece,
                ).encode()
                for index, piece in enumerate(pieces)
            ]
        with self._send_lock:
            if self._closed:
                raise ClusterError("send on a closed control channel")
            try:
                for record in records:
                    self._sock.sendall(record)
            except OSError as exc:
                raise ClusterError(
                    f"control channel send failed: {exc}"
                ) from exc
            if message.kind != HEARTBEAT:
                self.data_bytes_sent += sum(len(r) for r in records)
        if self._meter is not None:
            self._meter(
                "send", message.kind, sum(len(r) for r in records)
            )

    def recv(self, timeout: Optional[float] = None) -> Message:
        """Receive one message.

        Blocks up to ``timeout`` seconds (``None`` = forever).  Raises
        :class:`TimeoutError` when the deadline expires (partial bytes
        are kept), :class:`ChannelClosed` on clean EOF at a message
        boundary, and :class:`ClusterError` on a torn or corrupt stream.
        """
        self._sock.settimeout(timeout)
        while True:
            message = self._try_parse()
            if message is not None:
                if message.kind == PART:
                    self._absorb_part(message)
                    if message.fields.get("last"):
                        return self._finish_parts()
                    continue
                if self._parts:
                    raise ClusterError(
                        f"{message.kind!r} record interleaved inside a "
                        "chunked transfer"
                    )
                return message
            try:
                chunk = self._sock.recv(1 << 16)
            except socket.timeout as exc:
                raise TimeoutError("control channel recv timed out") from exc
            except OSError as exc:
                raise ClusterError(
                    f"control channel recv failed: {exc}"
                ) from exc
            if not chunk:
                if self._buffer or self._parts:
                    raise ClusterError(
                        "peer closed the control channel mid-message"
                    )
                raise ChannelClosed("control channel closed by peer")
            self.bytes_received += len(chunk)
            self._buffer.extend(chunk)

    def _absorb_part(self, message: Message) -> None:
        self._parts.append(message.blob)
        if sum(len(piece) for piece in self._parts) > _MAX_ASSEMBLED:
            self._parts = []
            raise ClusterError(
                f"chunked control message exceeds {_MAX_ASSEMBLED} bytes"
            )

    def set_meter(self, meter: Optional[ChannelMeter]) -> None:
        """Install (or clear) the control-plane byte meter."""
        self._meter = meter

    def _metered(self, message: Message, num_bytes: int) -> Message:
        if self._meter is not None and message.kind != PART:
            self._meter("recv", message.kind, num_bytes)
        return message

    def _finish_parts(self) -> Message:
        body = b"".join(self._parts)
        self._parts = []
        return self._metered(Message.decode(body), len(body))

    def _try_parse(self) -> Optional[Message]:
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(bytes(self._buffer[:_LENGTH.size]))
        if length > _MAX_MESSAGE:
            raise ClusterError(f"oversized control message ({length} bytes)")
        end = _LENGTH.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_LENGTH.size:end])
        del self._buffer[:end]
        return self._metered(Message.decode(body), end)

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "MessageChannel":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def connect_channel(
    host: str, port: int, timeout: float = 10.0
) -> MessageChannel:
    """Dial the supervisor's control listener (worker side)."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ClusterError(
            f"cannot reach supervisor at {host}:{port}: {exc}"
        ) from exc
    sock.settimeout(None)
    return MessageChannel(sock)


def open_listener(
    host: str = "127.0.0.1",
    port: int = 0,
    retries: int = 3,
    retry_delay: float = 0.05,
) -> "tuple[socket.socket, int]":
    """Open the supervisor's control listener.

    ``port`` is a *preference*: when it is busy (``EADDRINUSE``) the
    bind is retried ``retries`` times with a short pause, then falls
    back to an OS-assigned ephemeral port — the shared
    :mod:`repro.net.bind` policy, also used by the runtime's
    :class:`~repro.runtime.transport.TcpTransport` router and the
    :mod:`repro.serve` gateway.  ``port=0`` (the default) goes straight
    to OS-assigned.
    """
    from repro.errors import NetworkError
    from repro.net.bind import open_listener as bind_open_listener

    try:
        return bind_open_listener(host, port, retries, retry_delay)
    except NetworkError as exc:
        raise ClusterError(f"cannot open control listener: {exc}") from exc


def accept_channel(
    listener: socket.socket, timeout: Optional[float] = None
) -> MessageChannel:
    """Accept one worker connection (supervisor side).

    Raises :class:`TimeoutError` when no worker dials in time.
    """
    listener.settimeout(timeout)
    try:
        conn, _ = listener.accept()
    except socket.timeout as exc:
        raise TimeoutError("no worker connected in time") from exc
    except OSError as exc:
        raise ClusterError(f"control listener accept failed: {exc}") from exc
    conn.settimeout(None)
    return MessageChannel(conn)
