"""The single-line repro spec: one campaign cell, fully pinned.

Format (``campaign/1`` is the schema tag; key order is canonical)::

    campaign/1 config=pi_ba-snark strategy=subtree-drop \
        schedule=reorder n=16 seed=0 corrupt=0,1,2,3,4

``corrupt`` (explicit corrupted party ids) and ``crashes``
(``party@round`` entries) are optional: a spec produced by the sweep
always carries them — so a replay is exact even if the strategy's
sampling changes — while a hand-written spec may omit them and let the
strategy / schedule re-derive the sets from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

SCHEMA = "campaign/1"

_REQUIRED = ("config", "strategy", "schedule", "n", "seed")
_OPTIONAL = ("corrupt", "crashes")


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign cell, addressable and replayable.

    ``corrupt`` / ``crashes`` are ``None`` when unresolved (derive from
    the seed) and concrete once a run has pinned them.
    """

    config: str
    strategy: str
    schedule: str
    n: int
    seed: int
    corrupt: Optional[Tuple[int, ...]] = None
    crashes: Optional[Dict[int, int]] = None

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ConfigurationError(f"campaign spec needs n >= 4, got {self.n}")
        if self.seed < 0:
            raise ConfigurationError("campaign spec seed must be >= 0")
        if self.corrupt is not None:
            object.__setattr__(
                self, "corrupt", tuple(sorted(set(self.corrupt)))
            )
            if any(not 0 <= p < self.n for p in self.corrupt):
                raise ConfigurationError("corrupt id out of range in spec")
        if self.crashes is not None:
            if any(
                not 0 <= p < self.n or r < 0
                for p, r in self.crashes.items()
            ):
                raise ConfigurationError("crash entry out of range in spec")

    @property
    def resolved(self) -> bool:
        """Whether the corrupted set is pinned explicitly."""
        return self.corrupt is not None

    def with_corrupt(self, corrupt: Tuple[int, ...]) -> "CampaignSpec":
        return replace(self, corrupt=tuple(sorted(set(corrupt))))

    def with_crashes(
        self, crashes: Optional[Dict[int, int]]
    ) -> "CampaignSpec":
        return replace(
            self, crashes=dict(crashes) if crashes is not None else None
        )


def format_spec(spec: CampaignSpec) -> str:
    """Render the canonical single-line form."""
    parts = [
        SCHEMA,
        f"config={spec.config}",
        f"strategy={spec.strategy}",
        f"schedule={spec.schedule}",
        f"n={spec.n}",
        f"seed={spec.seed}",
    ]
    if spec.corrupt is not None:
        parts.append("corrupt=" + ",".join(str(p) for p in spec.corrupt))
    if spec.crashes is not None:
        entries = ",".join(
            f"{p}@{r}" for p, r in sorted(spec.crashes.items())
        )
        parts.append(f"crashes={entries}")
    return " ".join(parts)


def parse_spec(line: str) -> CampaignSpec:
    """Parse one repro-spec line (inverse of :func:`format_spec`)."""
    tokens = line.strip().split()
    if not tokens or tokens[0] != SCHEMA:
        raise ConfigurationError(
            f"repro spec must start with {SCHEMA!r}: {line!r}"
        )
    fields: Dict[str, str] = {}
    for token in tokens[1:]:
        if "=" not in token:
            raise ConfigurationError(f"malformed spec token {token!r}")
        key, _, value = token.partition("=")
        if key not in _REQUIRED + _OPTIONAL:
            raise ConfigurationError(f"unknown spec key {key!r}")
        if key in fields:
            raise ConfigurationError(f"duplicate spec key {key!r}")
        fields[key] = value
    missing = [key for key in _REQUIRED if key not in fields]
    if missing:
        raise ConfigurationError(f"spec missing keys: {', '.join(missing)}")
    corrupt: Optional[Tuple[int, ...]] = None
    if "corrupt" in fields:
        raw = fields["corrupt"]
        corrupt = tuple(
            int(p) for p in raw.split(",") if p
        ) if raw else ()
    crashes: Optional[Dict[int, int]] = None
    if "crashes" in fields:
        crashes = {}
        raw = fields["crashes"]
        for entry in (raw.split(",") if raw else []):
            if "@" not in entry:
                raise ConfigurationError(
                    f"malformed crash entry {entry!r} (want party@round)"
                )
            party_str, _, round_str = entry.partition("@")
            crashes[int(party_str)] = int(round_str)
    try:
        n = int(fields["n"])
        seed = int(fields["seed"])
    except ValueError as exc:
        raise ConfigurationError(f"non-integer n/seed in spec: {exc}") from exc
    return CampaignSpec(
        config=fields["config"],
        strategy=fields["strategy"],
        schedule=fields["schedule"],
        n=n,
        seed=seed,
        corrupt=corrupt,
        crashes=crashes,
    )
