"""The synchronous, authenticated, point-to-point network simulator.

Model (matching the paper's setting, §1): a complete synchronous network
of authenticated channels among ``n`` parties.  Each round, every party
receives the envelopes addressed to it that were sent in the previous
round, runs its state machine, and emits new envelopes.  Authentication
is modeled by the simulator stamping the true sender id on every envelope
— a Byzantine party can lie in its *payload* but cannot spoof the channel
itself.

All traffic is charged to a :class:`CommunicationMetrics` ledger; message
*budgets* can be imposed per party, which the lower-bound experiments
(Thm 1.3/1.4) use to enforce the "every party sends o(n) messages"
hypothesis mechanically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics
from repro.net.party import Envelope, Party
from repro.obs.flow import flow_tags


class SynchronousNetwork:
    """Drives a set of parties through synchronous rounds."""

    def __init__(
        self,
        parties: Sequence[Party],
        metrics: Optional[CommunicationMetrics] = None,
        message_budget_per_party: Optional[int] = None,
    ) -> None:
        self.parties: Dict[int, Party] = {}
        for party in parties:
            if party.party_id in self.parties:
                raise NetworkError(f"duplicate party id {party.party_id}")
            self.parties[party.party_id] = party
        self.metrics = metrics if metrics is not None else CommunicationMetrics()
        self._pending: Dict[int, List[Envelope]] = defaultdict(list)
        self._messages_sent: Dict[int, int] = defaultdict(int)
        self._budget = message_budget_per_party
        self.round_index = 0

    def run_round(self) -> None:
        """Execute one synchronous round for all non-halted parties."""
        inboxes = self._pending
        self._pending = defaultdict(list)
        for party_id in sorted(self.parties):
            party = self.parties[party_id]
            if party.halted:
                continue
            inbox = inboxes.get(party_id, [])
            outgoing = party.step(self.round_index, inbox)
            for envelope in outgoing:
                self._dispatch(party_id, envelope)
        self.metrics.end_round()
        self.round_index += 1

    def _dispatch(self, claimed_sender: int, envelope: Envelope) -> None:
        if envelope.sender != claimed_sender:
            # Authenticated channels: the transport stamps the true sender.
            envelope = Envelope(
                sender=claimed_sender,
                recipient=envelope.recipient,
                payload=envelope.payload,
            )
        if envelope.recipient not in self.parties:
            raise NetworkError(f"unknown recipient {envelope.recipient}")
        if self._budget is not None:
            self._messages_sent[claimed_sender] += 1
            if self._messages_sent[claimed_sender] > self._budget:
                raise NetworkError(
                    f"party {claimed_sender} exceeded its message budget "
                    f"of {self._budget}"
                )
        # Replayed envelopes (repro.runtime.replay.SizedEnvelope) carry
        # the obs phase recorded at charge time; re-attach it for the
        # flow ledger only — span attribution is the live stack's job.
        envelope_phase = getattr(envelope, "phase", "")
        if envelope_phase:
            with flow_tags(phase=envelope_phase):
                self.metrics.record_message(
                    envelope.sender, envelope.recipient, envelope.size_bits()
                )
        else:
            self.metrics.record_message(
                envelope.sender, envelope.recipient, envelope.size_bits()
            )
        self._pending[envelope.recipient].append(envelope)

    def run(self, max_rounds: int = 10_000) -> None:
        """Run rounds until all parties halt (or the safety cap trips).

        The cap exists because Byzantine parties may never halt; drivers
        normally stop when all *honest* parties have halted via
        :meth:`run_until`.
        """
        for _ in range(max_rounds):
            if all(party.halted for party in self.parties.values()):
                return
            self.run_round()
        raise NetworkError(f"protocol did not terminate in {max_rounds} rounds")

    def run_until(self, party_ids: Iterable[int], max_rounds: int = 10_000) -> None:
        """Run until the listed parties have all halted.

        Raises :class:`NetworkError` if any target id is unknown
        (matching :meth:`_dispatch`'s unknown-recipient behaviour)
        rather than failing mid-run with a bare ``KeyError``.
        """
        targets = list(party_ids)
        unknown = [p for p in targets if p not in self.parties]
        if unknown:
            raise NetworkError(
                f"unknown target party id(s) {sorted(unknown)}; "
                f"known ids are {sorted(self.parties)}"
            )
        for _ in range(max_rounds):
            if all(self.parties[p].halted for p in targets):
                return
            self.run_round()
        raise NetworkError(f"target parties did not halt in {max_rounds} rounds")

    def outputs(self) -> Dict[int, object]:
        """Map of party id to its recorded output (halted parties only)."""
        return {
            party_id: party.output
            for party_id, party in self.parties.items()
            if party.halted
        }
