"""Per-party communication accounting.

This is the measurement instrument for the paper's headline quantity:
*maximum bits communicated by any single party*.  Every wire transfer in
the simulator (and every charge made by a hybrid-model functionality) is
recorded here, per party, as sent/received bits, message counts, and the
set of distinct peers (communication locality, à la Boyle et al. [13]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import NetworkError
from repro.obs.flow import FUNCTIONALITY, FlowLedger, current_flow_tags
from repro.obs.spans import UNATTRIBUTED, current_phase


@dataclass
class PartyTally:
    """Mutable per-party counters."""

    bits_sent: int = 0
    bits_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    peers_sent_to: Set[int] = field(default_factory=set)
    peers_received_from: Set[int] = field(default_factory=set)

    @property
    def bits_total(self) -> int:
        """Bits communicated (sent + received)."""
        return self.bits_sent + self.bits_received

    @property
    def locality(self) -> int:
        """Number of distinct parties this party exchanged messages with."""
        return len(self.peers_sent_to | self.peers_received_from)


class CommunicationMetrics:
    """The ledger of all communication in one protocol execution.

    Charges come from two sources that are deliberately kept in one
    ledger: actual envelopes routed by the simulator, and analytic charges
    made by hybrid-model functionalities (whose realizations' costs are
    documented in §3.1 of the paper).  Benchmarks read the aggregate
    properties; tests can inspect individual tallies.
    """

    def __init__(self) -> None:
        self._tallies: Dict[int, PartyTally] = {}
        self._round_bits: List[int] = []
        self._current_round_bits = 0
        self.rounds_completed = 0
        # The label dimension (repro.obs): per-party bits_total broken
        # down by the innermost active span at charge time, plus
        # per-phase message counts.  Unlabeled callers see byte-for-byte
        # identical aggregates — these dicts are pure side accounting.
        self._phase_bits: Dict[int, Dict[str, int]] = {}
        self._phase_messages: Dict[str, int] = {}
        # The flow dimension (repro.obs.flow): every charge is refined
        # into a (round, phase, src, dst, kind) cell when a ledger is
        # attached.  Pure side accounting — aggregates never move.
        self._flow: Optional[FlowLedger] = None

    def __getstate__(self) -> Dict[str, object]:
        # The attached flow ledger never pickles (it may hold an open
        # spill file and live registry instruments); checkpoint resume
        # re-attaches the caller's ledger and uses absorb_tally to keep
        # flow parity (see repro.cluster.supervisor._load_state).
        state = dict(self.__dict__)
        state["_flow"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._flow = None

    def attach_flow(self, ledger: Optional[FlowLedger]) -> None:
        """Attach (or detach, with ``None``) a wire-level flow ledger.

        Every subsequent :meth:`record_message` /
        :meth:`charge_functionality` / :meth:`absorb_tally` is mirrored
        into the ledger as traffic-matrix cells.  The flow phase is the
        innermost obs span unless a :func:`repro.obs.flow.flow_tags`
        override is active (replay backends re-attach recorded phases
        that way); overrides never touch span attribution here.
        """
        self._flow = ledger

    @property
    def flow(self) -> Optional[FlowLedger]:
        """The attached flow ledger, if any."""
        return self._flow

    def _tally(self, party_id: int) -> PartyTally:
        tally = self._tallies.get(party_id)
        if tally is None:
            tally = PartyTally()
            self._tallies[party_id] = tally
        return tally

    def _attribute(self, party_id: int, phase: str, num_bits: int) -> None:
        per_party = self._phase_bits.setdefault(party_id, {})
        per_party[phase] = per_party.get(phase, 0) + num_bits

    # -- recording -----------------------------------------------------------

    def record_message(self, sender: int, recipient: int, num_bits: int) -> None:
        """Charge one point-to-point message of ``num_bits`` bits."""
        if num_bits < 0:
            raise NetworkError("message size cannot be negative")
        sender_tally = self._tally(sender)
        recipient_tally = self._tally(recipient)
        sender_tally.bits_sent += num_bits
        sender_tally.messages_sent += 1
        sender_tally.peers_sent_to.add(recipient)
        recipient_tally.bits_received += num_bits
        recipient_tally.messages_received += 1
        recipient_tally.peers_received_from.add(sender)
        self._current_round_bits += num_bits
        phase = current_phase() or UNATTRIBUTED
        self._attribute(sender, phase, num_bits)
        self._attribute(recipient, phase, num_bits)
        self._phase_messages[phase] = self._phase_messages.get(phase, 0) + 1
        if self._flow is not None:
            tag_phase, tag_kind = current_flow_tags()
            self._flow.charge(
                round_index=len(self._round_bits),
                phase=tag_phase or phase,
                src=sender,
                dst=recipient,
                bits=num_bits,
                kind=tag_kind or "wire",
            )

    def replay_digest(
        self,
        rows: Iterable[Tuple[int, int, int, str]],
        kind: str = "frame",
    ) -> None:
        """Replay a batch of ``(sender, recipient, bits, phase)`` rows.

        The mesh data plane never routes a frame through the supervisor,
        so workers ship a per-round digest home and this method replays
        it into the ledger.  Every row is charged *exactly* as
        :meth:`record_message` under
        ``flow_tags(phase=row_phase, kind=kind)`` would charge it —
        span attribution stays on the supervisor's innermost obs span
        (or ``(unattributed)``), while the flow ledger gets the worker's
        recorded protocol phase — so aggregates, per-phase cells, and
        flow cells are bit-identical to the hub-and-spoke relay path.
        """
        span_phase = current_phase() or UNATTRIBUTED
        flow = self._flow
        flow_round = len(self._round_bits)
        # Hot path: a digest batch carries thousands of rows but only
        # ~n distinct parties, and every ledger update is additive — so
        # accumulate per-party sums locally and apply each party once.
        # Commutativity makes this bit-identical to the per-row loop
        # (sums, counts, peer-set unions, and phase attributions do not
        # depend on application order).
        acc: Dict[int, list] = {}
        total_bits = 0
        row_count = 0
        for sender, recipient, num_bits, row_phase in rows:
            if num_bits < 0:
                raise NetworkError("message size cannot be negative")
            total_bits += num_bits
            row_count += 1
            entry = acc.get(sender)
            if entry is None:
                entry = acc[sender] = [0, 0, 0, 0, set(), set()]
            entry[0] += num_bits
            entry[1] += 1
            entry[4].add(recipient)
            entry = acc.get(recipient)
            if entry is None:
                entry = acc[recipient] = [0, 0, 0, 0, set(), set()]
            entry[2] += num_bits
            entry[3] += 1
            entry[5].add(sender)
            if flow is not None:
                flow.charge(
                    round_index=flow_round,
                    phase=row_phase or span_phase,
                    src=sender,
                    dst=recipient,
                    bits=num_bits,
                    kind=kind,
                )
        for party_id, (sent_bits, sent_msgs, recv_bits, recv_msgs,
                       sent_peers, recv_peers) in acc.items():
            tally = self._tally(party_id)
            tally.bits_sent += sent_bits
            tally.messages_sent += sent_msgs
            tally.peers_sent_to.update(sent_peers)
            tally.bits_received += recv_bits
            tally.messages_received += recv_msgs
            tally.peers_received_from.update(recv_peers)
            # record_message attributes num_bits to both endpoints, so a
            # party's attributed sum is its sent + received aggregate.
            self._attribute(party_id, span_phase, sent_bits + recv_bits)
        self._current_round_bits += total_bits
        if row_count:
            self._phase_messages[span_phase] = (
                self._phase_messages.get(span_phase, 0) + row_count
            )

    def charge_functionality(
        self,
        participants: Iterable[int],
        bits_per_party: int,
        peers_per_party: int,
        rounds: int = 1,
        peer_pool: Optional[Iterable[int]] = None,
    ) -> None:
        """Charge a hybrid-model functionality invocation.

        Every participant is charged ``bits_per_party`` of communication
        (half sent, half received — so per-party ``bits_total`` grows by
        exactly ``bits_per_party``, while the single-counted aggregates
        ``total_bits`` and :attr:`round_bits` grow by the sent halves,
        exactly as they would if the same traffic had flowed through
        :meth:`record_message`) and its
        locality is widened by ``peers_per_party`` synthetic peer slots
        drawn from ``peer_pool`` (default: the other participants — pass
        an explicit pool when the charged traffic touches parties outside
        the participant list, e.g. a central hub serving everyone).

        The paper's protocol (Fig. 3) is stated in the (f_ae-comm, f_ba,
        f_ct, f_aggr-sig)-hybrid model with the realizations' costs pinned
        in §3.1; this method is how those costs enter the ledger when a
        functionality is executed functionally rather than as messages.
        """
        participant_list = list(participants)
        pool = list(peer_pool) if peer_pool is not None else participant_list
        phase = current_phase() or UNATTRIBUTED
        for party_id in participant_list:
            # Phase attribution: a participant's bits_total grows by
            # exactly bits_per_party (sent half + received half).
            self._attribute(party_id, phase, bits_per_party)
        self._phase_messages[phase] = (
            self._phase_messages.get(phase, 0)
            + len(participant_list) * max(1, peers_per_party)
        )
        for party_id in participant_list:
            tally = self._tally(party_id)
            tally.bits_sent += bits_per_party - bits_per_party // 2
            tally.bits_received += bits_per_party // 2
            tally.messages_sent += max(1, peers_per_party)
            tally.messages_received += max(1, peers_per_party)
            # Synthetic peers are drawn from the pool, clipped to the
            # requested locality widening.
            others = [p for p in pool if p != party_id]
            tally.peers_sent_to.update(others[:peers_per_party])
            tally.peers_received_from.update(others[:peers_per_party])
        # Round accounting follows the record_message convention: each
        # wire transfer is counted once, at the sender.  A participant's
        # sent half is ``bits_per_party - bits_per_party // 2``, so the
        # round total is the sum of sent halves — matching exactly what
        # :attr:`total_bits` (which sums ``bits_sent``) accrues from this
        # charge.  (Historically this line added the *full* per-party
        # charge, double-counting hybrid traffic relative to the wire
        # path.)
        self._current_round_bits += sum(
            bits_per_party - bits_per_party // 2 for _ in participant_list
        )
        self.rounds_completed += rounds
        if self._flow is not None:
            # Flow refinement mirrors the tally split exactly: the sent
            # half flows p -> FUNCTIONALITY, the received half flows
            # FUNCTIONALITY -> p, so per-party flow side counters stay
            # bit-identical to bits_sent / bits_received.
            tag_phase, tag_kind = current_flow_tags()
            flow_phase = tag_phase or phase
            flow_kind = tag_kind or "hybrid"
            round_index = len(self._round_bits)
            sent_half = bits_per_party - bits_per_party // 2
            recv_half = bits_per_party // 2
            for party_id in participant_list:
                self._flow.charge(
                    round_index, flow_phase, party_id, FUNCTIONALITY,
                    sent_half, kind=flow_kind,
                )
                self._flow.charge(
                    round_index, flow_phase, FUNCTIONALITY, party_id,
                    recv_half, kind=flow_kind,
                )

    def end_round(self) -> None:
        """Close the current round's tally (called by the simulator)."""
        self._round_bits.append(self._current_round_bits)
        self._current_round_bits = 0
        self.rounds_completed += 1

    def absorb_tally(self, party_id: int, tally: PartyTally) -> None:
        """Merge a previously snapshotted tally into this ledger.

        Used on checkpoint resume (:mod:`repro.cluster`): the fresh
        ledger of a restarted run is pre-charged with each party's
        tally as of the checkpoint, so aggregate queries
        (``max_bits_per_party``, localities, message counts) match an
        uninterrupted run exactly.  Phase attribution cannot be
        reconstructed from a tally, so the absorbed ``bits_total`` lands
        under the currently active span (usually
        :data:`~repro.obs.spans.UNATTRIBUTED`), preserving the
        ``sum(bits_by_phase) == bits_total`` invariant.
        """
        target = self._tally(party_id)
        target.bits_sent += tally.bits_sent
        target.bits_received += tally.bits_received
        target.messages_sent += tally.messages_sent
        target.messages_received += tally.messages_received
        target.peers_sent_to.update(tally.peers_sent_to)
        target.peers_received_from.update(tally.peers_received_from)
        if tally.bits_total:
            phase = current_phase() or UNATTRIBUTED
            self._attribute(party_id, phase, tally.bits_total)
            if self._flow is not None:
                # Keep flow parity across checkpoint resume: the
                # absorbed halves land on FUNCTIONALITY edges under the
                # dedicated "absorbed" kind (resume provenance is not
                # reconstructible per edge from a tally).
                round_index = len(self._round_bits)
                if tally.bits_sent:
                    self._flow.charge(
                        round_index, phase, party_id, FUNCTIONALITY,
                        tally.bits_sent, kind="absorbed",
                    )
                if tally.bits_received:
                    self._flow.charge(
                        round_index, phase, FUNCTIONALITY, party_id,
                        tally.bits_received, kind="absorbed",
                    )

    # -- aggregate queries ----------------------------------------------------

    def tally_of(self, party_id: int) -> PartyTally:
        """A read-only view of one party's tally (possibly empty).

        Always returns a **defensive copy**: mutating the result never
        changes the ledger.  (Historically an unknown party got a fresh
        mutable ``PartyTally`` that was *not* stored, so callers could
        mutate a phantom tally whose changes were silently dropped —
        while a known party's live tally leaked out.  Both paths now
        behave identically.)
        """
        tally = self._tallies.get(party_id)
        if tally is None:
            return PartyTally()
        return PartyTally(
            bits_sent=tally.bits_sent,
            bits_received=tally.bits_received,
            messages_sent=tally.messages_sent,
            messages_received=tally.messages_received,
            peers_sent_to=set(tally.peers_sent_to),
            peers_received_from=set(tally.peers_received_from),
        )

    # -- phase-labeled queries (repro.obs) ------------------------------------

    def bits_by_phase(self, party_id: int) -> Dict[str, int]:
        """One party's ``bits_total``, decomposed by protocol phase.

        Keys are the innermost active span names at charge time (see
        :func:`repro.obs.spans.span`); charges made outside any span land
        under :data:`~repro.obs.spans.UNATTRIBUTED`.  Invariant (pinned
        by tests): ``sum(bits_by_phase(p).values()) ==
        tally_of(p).bits_total`` for every party ``p``.
        """
        return dict(self._phase_bits.get(party_id, {}))

    @property
    def phases(self) -> List[str]:
        """All phase labels that received charges, sorted."""
        labels = set(self._phase_messages)
        for per_party in self._phase_bits.values():
            labels.update(per_party)
        return sorted(labels)

    def phase_breakdown(self) -> Dict[str, "PhaseBreakdown"]:
        """Aggregate per-phase costs across all parties.

        Bits follow the per-party ``bits_total`` convention (sent +
        received — each wire transfer contributes to two parties), so
        ``max_bits_per_party`` here is directly comparable with
        :attr:`max_bits_per_party` and the per-party sums of
        :meth:`bits_by_phase`.
        """
        breakdown: Dict[str, PhaseBreakdown] = {}
        per_phase_party: Dict[str, Dict[int, int]] = {}
        for party_id, phases in self._phase_bits.items():
            for phase, bits in phases.items():
                per_phase_party.setdefault(phase, {})[party_id] = bits
        for phase in self.phases:
            parties = per_phase_party.get(phase, {})
            breakdown[phase] = PhaseBreakdown(
                phase=phase,
                total_bits=sum(parties.values()),
                max_bits_per_party=max(parties.values(), default=0),
                parties=len(parties),
                messages=self._phase_messages.get(phase, 0),
            )
        return breakdown

    @property
    def round_bits(self) -> List[int]:
        """Closed per-round wire-bit totals (record_message convention:
        every transfer counted once, at the sender)."""
        return list(self._round_bits)

    @property
    def current_round_bits(self) -> int:
        """Bits accrued in the still-open round."""
        return self._current_round_bits

    @property
    def party_ids(self) -> List[int]:
        """All parties that ever communicated."""
        return sorted(self._tallies)

    @property
    def total_bits(self) -> int:
        """Total bits over all parties (each message counted once)."""
        return sum(t.bits_sent for t in self._tallies.values())

    @property
    def max_bits_per_party(self) -> int:
        """The paper's headline metric: worst-case per-party communication."""
        if not self._tallies:
            return 0
        return max(t.bits_total for t in self._tallies.values())

    @property
    def mean_bits_per_party(self) -> float:
        """Average per-party communication (amortized metric)."""
        if not self._tallies:
            return 0.0
        return sum(t.bits_total for t in self._tallies.values()) / len(self._tallies)

    @property
    def max_locality(self) -> int:
        """Worst-case communication locality (distinct peers)."""
        if not self._tallies:
            return 0
        return max(t.locality for t in self._tallies.values())

    @property
    def max_messages_per_party(self) -> int:
        """Worst-case number of messages sent by one party."""
        if not self._tallies:
            return 0
        return max(t.messages_sent for t in self._tallies.values())

    def imbalance(self) -> float:
        """Ratio max/mean bits per party — 1.0 means perfectly balanced.

        This is the quantity behind the paper's title: protocols with
        amortized Õ(1) but Ω(n) "central parties" have imbalance Θ(n) /
        polylog, whereas the SRDS-based protocol stays polylog-flat.
        """
        mean = self.mean_bits_per_party
        if mean == 0:
            return 1.0
        return self.max_bits_per_party / mean

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable summary for benchmark result tables."""
        return MetricsSnapshot(
            total_bits=self.total_bits,
            max_bits_per_party=self.max_bits_per_party,
            mean_bits_per_party=self.mean_bits_per_party,
            max_locality=self.max_locality,
            max_messages_per_party=self.max_messages_per_party,
            rounds=self.rounds_completed,
            num_parties=len(self._tallies),
        )


@dataclass(frozen=True)
class PhaseBreakdown:
    """Aggregate cost of one protocol phase (repro.obs label dimension).

    ``total_bits`` and ``max_bits_per_party`` use the per-party
    ``bits_total`` convention (sent + received); ``messages`` counts
    sender-side emissions charged under this phase.
    """

    phase: str
    total_bits: int
    max_bits_per_party: int
    parties: int
    messages: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable aggregate communication summary of one execution."""

    total_bits: int
    max_bits_per_party: int
    mean_bits_per_party: float
    max_locality: int
    max_messages_per_party: int
    rounds: int
    num_parties: int

    @property
    def imbalance(self) -> float:
        """max/mean per-party bits (1.0 = perfectly balanced)."""
        if self.mean_bits_per_party == 0:
            return 1.0
        return self.max_bits_per_party / self.mean_bits_per_party
