"""E1 — the headline claim (Thm 1.1): balanced Õ(1) bits per party.

Two series over an n sweep for pi_ba/SNARK vs the central-committee
baseline:

* **imbalance** (max/mean per-party bits): pi_ba stays flat and small;
  the amortized-Õ(1) baseline's imbalance grows ~linearly, because its
  mean is polylog but its center parties carry Theta(n).
* **locality** (distinct peers of the busiest party): pi_ba is polylog;
  the baseline's center talks to everyone.

This is the precise sense in which the paper "breaks the barrier":
not just low total communication, but low *worst-case* per-party cost.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.scaling import fit_power_law
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import run_balanced_ba
from repro.protocols.baselines import central_party_boost
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

NS = [64, 128, 256, 512]
BASELINE_NS = [64, 128, 256, 512, 1024, 2048, 4096]
PARAMS = ProtocolParameters()


def _measure():
    rng = Randomness(5)
    pi_ba = []
    for n in NS:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        result = run_balanced_ba(
            {i: 1 for i in range(n)}, plan,
            SnarkSRDS(base_scheme=HashRegistryBase()), PARAMS,
            rng.fork(f"r{n}"),
        )
        assert result.agreement
        pi_ba.append(result.metrics)

    central = []
    for n in BASELINE_NS:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"cc{n}")
        )
        outcome = central_party_boost(1, set(), plan, rng.fork(f"cr{n}"))
        central.append(outcome.metrics)
    return pi_ba, central


@pytest.mark.benchmark(group="scaling")
def test_headline_balance(benchmark, results_dir):
    pi_ba, central = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = ["E1 — balanced per-party communication (Thm 1.1)", ""]
    lines.append(f"{'n':>6} {'pi_ba imbalance':>16} {'pi_ba locality':>15}")
    for n, metrics in zip(NS, pi_ba):
        lines.append(
            f"{n:>6} {metrics.imbalance:>16.2f} {metrics.max_locality:>15}"
        )
    lines.append("")
    lines.append(f"{'n':>6} {'central imbalance':>18} {'central locality':>17}")
    for n, metrics in zip(BASELINE_NS, central):
        lines.append(
            f"{n:>6} {metrics.imbalance:>18.2f} {metrics.max_locality:>17}"
        )

    imbalance_fit = fit_power_law(
        BASELINE_NS, [m.imbalance for m in central]
    )
    lines.append("")
    lines.append(
        f"central-baseline imbalance grows ~n^{imbalance_fit.exponent:.2f}; "
        f"pi_ba imbalance stays in "
        f"[{min(m.imbalance for m in pi_ba):.2f}, "
        f"{max(m.imbalance for m in pi_ba):.2f}]"
    )
    write_result(results_dir, "scaling_per_party", "\n".join(lines))

    # pi_ba: flat, small imbalance at every size.
    for metrics in pi_ba:
        assert metrics.imbalance < 5.0
    # Central baseline: imbalance grows near-linearly with n.
    assert imbalance_fit.exponent > 0.6
    assert central[-1].imbalance > 20 * pi_ba[-1].imbalance
    # Locality: the baseline's center literally touches everyone.  At
    # laptop n the pi_ba locality also saturates (polylog^2 committees
    # exceed these small n) so no slope claim is made for it here; the
    # imbalance separation above is the headline.
    for n, metrics in zip(BASELINE_NS, central):
        assert metrics.max_locality >= n - 1
