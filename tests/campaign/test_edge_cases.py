"""Adversary edge cases on the experiment seams.

Three boundary conditions the campaign's plan-injection seam makes
reachable:

* a robustness run whose corrupted set covers *every* owner of one leaf
  committee (the whole leaf is adversarial);
* forgery adversaries facing an empty arsenal (no corruptions, empty
  coalition) — they must abstain, not crash;
* a fault plan crashing every party in the same round — the runtime
  must fail loudly, never return a silent partial answer.
"""

import pytest

from repro.errors import ExperimentError, ReproError
from repro.net.adversary import targeted_corruption
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.srds.adversaries import (
    CoalitionForgeryAdversary,
    DroppingRobustnessAdversary,
    ReplayForgeryAdversary,
)
from repro.srds.experiments import (
    ExperimentSetup,
    run_forgery_experiment,
    run_robustness_experiment,
)
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

FAST = ProtocolParameters(
    security_bits=64,
    committee_factor=3,
    leaf_factor=3,
    virtual_factor=1,
    tree_arity_factor=1,
    corruption_ratio=1 / 8,
    fanout_factor=2,
)


def _fully_corrupt_leaf_plan(n, t, params, rng, max_iterations=8):
    """Fixpoint search for a plan corrupting every owner of one leaf.

    The experiment builds its tree with ``honest_root_hint=plan.honest``
    (`Randomness.fork` is pure, so probing with the same rng path sees
    the same tree).  Corrupting owners can change which tree is sampled,
    so iterate: probe the tree the candidate plan induces, re-target the
    smallest leaf, repeat until the plan reproduces itself.
    """
    from repro.aetree.tree import build_tree

    plan = targeted_corruption(n, (), budget=t)
    for _ in range(max_iterations):
        tree = build_tree(
            n, params, rng.fork("tree"), honest_root_hint=plan.honest
        )
        owners_per_leaf = [
            sorted({
                tree.owner_of_virtual(v)
                for v in range(*leaf.virtual_range)
            })
            for leaf in tree.leaves
        ]
        owners = min(owners_per_leaf, key=len)
        if len(owners) > t:
            pytest.skip(
                f"smallest leaf has {len(owners)} owners > budget {t}"
            )
        candidate = targeted_corruption(n, owners, budget=t)
        if candidate.corrupted == plan.corrupted:
            return plan, tree, owners
        plan = candidate
    pytest.skip("leaf-targeting plan did not reach a fixpoint")


class TestFullyCorruptLeafCommittee:
    @pytest.mark.campaign
    def test_robustness_survives_total_leaf_loss(self):
        # n is chosen so one whole leaf's owner set fits within the
        # *concrete* tolerance max_corruptions(n) — at smaller n the
        # leaf's owners alone exceed it and robustness fails for the
        # uninteresting over-threshold reason.
        n = 64
        t = FAST.max_corruptions(n)
        rng = Randomness(7).fork("edge")
        plan, tree, owners = _fully_corrupt_leaf_plan(n, t, FAST, rng)
        # The edge case is real: one leaf's virtual ids are all corrupt.
        corrupt_virtual = {
            v
            for v in range(tree.num_virtual)
            if plan.is_corrupt(tree.owner_of_virtual(v))
        }
        assert any(
            set(range(*leaf.virtual_range)) <= corrupt_virtual
            for leaf in tree.leaves
        )
        verdict = run_robustness_experiment(
            SnarkSRDS(),
            n,
            t,
            PKIMode.TRUSTED,
            DroppingRobustnessAdversary(),
            params=FAST,
            rng=rng,
            plan=plan,
        )
        assert verdict, (
            "dropping one whole leaf committee must not break robustness"
        )

    def test_plan_injection_validates_n(self):
        plan = targeted_corruption(8, (0,), budget=1)
        with pytest.raises(ExperimentError):
            run_robustness_experiment(
                SnarkSRDS(),
                16,
                2,
                PKIMode.TRUSTED,
                DroppingRobustnessAdversary(),
                params=FAST,
                rng=Randomness(1),
                plan=plan,
            )

    def test_plan_injection_validates_budget(self):
        plan = targeted_corruption(16, (0, 1, 2), budget=3)
        with pytest.raises(ExperimentError):
            run_robustness_experiment(
                SnarkSRDS(),
                16,
                2,  # experiment budget below the plan's corruption count
                PKIMode.TRUSTED,
                DroppingRobustnessAdversary(),
                params=FAST,
                rng=Randomness(1),
                plan=plan,
            )


def _empty_setup():
    """A setup with no corruptions at all — fields the forgers touch on
    the abstain path are real, the rest unused."""
    return ExperimentSetup(
        pp=None,
        verification_keys={},
        signing_keys={},
        plan=targeted_corruption(4, (), budget=0),
        corrupt_virtual=set(),
        tree=None,
    )


class TestForgeryWithEmptyArsenal:
    @pytest.mark.parametrize(
        "adversary_cls", [CoalitionForgeryAdversary, ReplayForgeryAdversary]
    )
    def test_forge_abstains_without_signers(self, adversary_cls):
        adversary = adversary_cls()
        forged, message = adversary.forge(
            _empty_setup(), SnarkSRDS(), b"m", {}, Randomness(0)
        )
        assert forged is None
        assert message == adversary.target_message

    def test_experiment_with_zero_corruptions(self):
        # End-to-end: an empty pinned plan leaves the coalition forger
        # only the sub-threshold set S — unforgeability must hold.
        verdict = run_forgery_experiment(
            SnarkSRDS(),
            16,
            1,
            PKIMode.TRUSTED,
            CoalitionForgeryAdversary(),
            params=FAST,
            rng=Randomness(9).fork("forge"),
            plan=targeted_corruption(16, (), budget=1),
        )
        assert verdict is False


class TestCrashEveryoneFaultPlan:
    def test_phase_king_fails_loudly(self):
        from repro.runtime.drivers import run_phase_king_runtime
        from repro.runtime.faults import crash_everyone

        inputs = {i: i % 2 for i in range(8)}
        with pytest.raises(ReproError):
            run_phase_king_runtime(
                inputs,
                [],
                fault_plan=crash_everyone(range(8), round_index=1),
            )

    def test_builder_covers_every_party(self):
        from repro.runtime.faults import crash_everyone

        plan = crash_everyone(range(12), round_index=3)
        assert set(plan.crashes) == set(range(12))
        assert set(plan.crashes.values()) == {3}
