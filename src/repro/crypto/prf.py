"""Pseudorandom functions.

Step 7 of the BA protocol (Fig. 3) has every party send its certified pair
``(y, s)`` to the pseudorandom recipient set ``F_s(i)``; step 8 has
receivers check membership ``j in F_s(i)``.  Both directions are served by
:class:`SubsetPRF`.  The generic keyed PRF is HMAC-SHA256.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import List

from repro.utils.serialization import canonical_tuple, encode_str, encode_uint


def prf(key: bytes, domain: str, *fields: bytes) -> bytes:
    """HMAC-SHA256 with injective, domain-separated input encoding."""
    message = canonical_tuple(encode_str(domain), *fields)
    return hmac.new(key, message, hashlib.sha256).digest()


def prf_int(key: bytes, domain: str, upper_exclusive: int, *fields: bytes) -> int:
    """A PRF output reduced to ``[0, upper_exclusive)``.

    Rejection sampling over successive counters removes modulo bias; with a
    256-bit PRF output the expected number of iterations is < 2.
    """
    if upper_exclusive <= 0:
        raise ValueError("upper_exclusive must be positive")
    bound = (1 << 256) - ((1 << 256) % upper_exclusive)
    counter = 0
    while True:
        sample = int.from_bytes(
            prf(key, domain, encode_uint(counter), *fields), "big"
        )
        if sample < bound:
            return sample % upper_exclusive
        counter += 1


class SubsetPRF:
    """The committee-selection PRF family F_s of Fig. 3.

    ``F_s`` maps a party id ``i`` in ``[n]`` to a size-``k`` subset of
    ``[n]``.  The subset is derived by PRF-driven sampling without
    replacement so membership can be recomputed by any holder of the seed.
    """

    def __init__(self, seed: bytes, n: int, subset_size: int) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < subset_size <= n:
            raise ValueError("subset size must lie in [1, n]")
        self._seed = seed
        self._n = n
        self._k = subset_size

    def subset(self, party_id: int) -> List[int]:
        """The recipient set F_s(party_id), sorted ascending."""
        chosen: List[int] = []
        taken = set()
        counter = 0
        while len(chosen) < self._k:
            candidate = prf_int(
                self._seed,
                "subset-prf",
                self._n,
                encode_uint(party_id),
                encode_uint(counter),
            )
            counter += 1
            if candidate not in taken:
                taken.add(candidate)
                chosen.append(candidate)
        return sorted(chosen)

    def contains(self, party_id: int, candidate: int) -> bool:
        """Membership test ``candidate in F_s(party_id)`` (step 8, Fig. 3)."""
        return candidate in self.subset(party_id)
