"""Paper-level invariants checked after every campaign run.

Each checker returns a list of :class:`Violation` records — empty means
the guarantee held.  The names are stable (they form the *failure
signature* the minimizer preserves):

* ``agreement`` — some honest party output differs (Thm 3.1 agreement);
* ``no-output`` — an honest party terminated without an output;
* ``validity`` — unanimous honest inputs, different honest output
  (Thm 3.1 validity);
* ``bits-budget`` — measured ``max_bits_per_party`` exceeds the
  analytic polylog ceiling from
  :func:`repro.protocols.cost_model.pi_ba_per_party_budget`;
* ``gradecast`` — one of the three gradecast properties failed;
* ``srds-robustness`` — the Fig. 1 experiment's root aggregate failed
  verification (the adversary beat robustness);
* ``srds-forgery`` — the Fig. 2 adversary produced a verifying
  signature on a fresh message (unforgeability broken).

Asynchronous ABA runs reuse the same stable names through
:func:`check_aba_invariants`, which adds churn excusals: parties that
departed mid-run or joined late are excused from *producing* an output
(graceful degradation), but any output they did produce still counts
for agreement and validity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Violation:
    """One observed breach of a paper guarantee."""

    name: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}: {self.detail}"


def check_ba_invariants(
    inputs: Dict[int, int],
    outputs: Dict[int, Optional[int]],
    honest: List[int],
    *,
    measured_bits: Optional[int] = None,
    budget_bits: Optional[int] = None,
) -> List[Violation]:
    """Agreement + validity over honest outputs, plus the bits budget."""
    violations: List[Violation] = []
    honest_outputs = {p: outputs.get(p) for p in honest}
    missing = sorted(p for p, v in honest_outputs.items() if v is None)
    if missing:
        violations.append(
            Violation("no-output", f"honest parties without output: {missing}")
        )
    decided = {v for v in honest_outputs.values() if v is not None}
    if len(decided) > 1:
        violations.append(
            Violation(
                "agreement",
                f"honest outputs split: {sorted(decided)} "
                f"({ {p: v for p, v in sorted(honest_outputs.items())} })",
            )
        )
    honest_inputs = {inputs[p] for p in honest if p in inputs}
    if len(honest_inputs) == 1 and decided:
        (unanimous,) = honest_inputs
        if decided != {unanimous}:
            violations.append(
                Violation(
                    "validity",
                    f"honest inputs unanimous on {unanimous}, "
                    f"outputs {sorted(decided)}",
                )
            )
    if (
        measured_bits is not None
        and budget_bits is not None
        and measured_bits > budget_bits
    ):
        violations.append(
            Violation(
                "bits-budget",
                f"max_bits_per_party {measured_bits} exceeds analytic "
                f"budget {budget_bits} "
                f"(ratio {measured_bits / budget_bits:.2f})",
            )
        )
    return violations


def check_aba_invariants(
    inputs: Dict[int, int],
    outputs: Dict[int, Optional[int]],
    honest: List[int],
    *,
    departed: Iterable[int] = (),
    joined_late: Iterable[int] = (),
    measured_bits: Optional[int] = None,
    budget_bits: Optional[int] = None,
) -> List[Violation]:
    """Asynchronous ABA guarantees, with churn-aware liveness.

    Agreement and validity are judged over *every* honest output —
    a late joiner or a departing party that decided the wrong value is
    a loud failure, not churn noise.  Only the ``no-output`` (liveness)
    check excuses ``departed`` (honest parties that left mid-run) and
    ``joined_late`` (parties absent at the start): the model does not
    owe them a decision, which is exactly the graceful-degradation
    contract the churn schedules probe.
    """
    violations: List[Violation] = []
    excused = set(departed) | set(joined_late)
    honest_outputs = {p: outputs.get(p) for p in honest}
    missing = sorted(
        p
        for p, v in honest_outputs.items()
        if v is None and p not in excused
    )
    if missing:
        violations.append(
            Violation("no-output", f"honest parties without output: {missing}")
        )
    decided = {v for v in honest_outputs.values() if v is not None}
    if len(decided) > 1:
        violations.append(
            Violation(
                "agreement",
                f"honest outputs split: {sorted(decided)} "
                f"({ {p: v for p, v in sorted(honest_outputs.items())} })",
            )
        )
    honest_inputs = {inputs[p] for p in honest if p in inputs}
    if len(honest_inputs) == 1 and decided:
        (unanimous,) = honest_inputs
        if decided != {unanimous}:
            violations.append(
                Violation(
                    "validity",
                    f"honest inputs unanimous on {unanimous}, "
                    f"outputs {sorted(decided)}",
                )
            )
    if (
        measured_bits is not None
        and budget_bits is not None
        and measured_bits > budget_bits
    ):
        violations.append(
            Violation(
                "bits-budget",
                f"max_bits_per_party {measured_bits} exceeds analytic "
                f"budget {budget_bits} "
                f"(ratio {measured_bits / budget_bits:.2f})",
            )
        )
    return violations


def check_gradecast_invariants(
    outputs: Dict[int, Tuple[int, int]],
    sender_honest: bool,
    sender_value: int,
) -> List[Violation]:
    """The three gradecast properties, as Violation records."""
    from repro.protocols.gradecast import check_gradecast_guarantees

    if check_gradecast_guarantees(outputs, sender_honest, sender_value):
        return []
    return [
        Violation(
            "gradecast",
            f"gradecast guarantees failed (sender_honest={sender_honest}, "
            f"value={sender_value}, outputs={dict(sorted(outputs.items()))})",
        )
    ]


def check_broadcast_invariants(
    outputs: Dict[int, int],
    sender_honest: bool,
    sender_value: int,
) -> List[Violation]:
    """Byzantine broadcast (Dolev-Strong): agreement always; output =
    sender's value when the sender is honest.  A common fallback output
    (the protocol's ⊥ default) counts as agreement when the sender is
    corrupt — that *is* the guarantee."""
    violations: List[Violation] = []
    decided = set(outputs.values())
    if len(decided) > 1:
        violations.append(
            Violation(
                "agreement",
                f"honest broadcast outputs split: {sorted(decided)}",
            )
        )
    if sender_honest and decided and decided != {sender_value}:
        violations.append(
            Violation(
                "validity",
                f"honest sender broadcast {sender_value}, "
                f"outputs {sorted(decided)}",
            )
        )
    return violations


def check_srds_robustness(verdict: bool, context: str) -> List[Violation]:
    """Fig. 1: the root aggregate must verify (challenger wins)."""
    if verdict:
        return []
    return [
        Violation(
            "srds-robustness",
            f"root aggregate failed verification under {context}",
        )
    ]


def check_srds_unforgeability(verdict: bool, context: str) -> List[Violation]:
    """Fig. 2: the adversary must lose (no verifying forgery)."""
    if not verdict:
        return []
    return [
        Violation(
            "srds-forgery", f"forgery verified under {context}"
        )
    ]
