"""XMSS-style Merkle many-time signatures over the OTS layer.

A hash-based many-time signature: generate 2^h one-time key pairs,
commit to their verification keys with a Merkle tree, and publish the
root as the long-lived public key.  The i-th signature reveals the i-th
OTS public key, an OTS signature, and the Merkle authentication path.

Used by services that sign repeatedly under a single trusted-PKI
identity (e.g. multi-execution broadcast with the OWF-model toolchain),
keeping the whole stack OWF-only — the same assumption budget as
Thm 2.7.  Signing is *stateful*: reusing a leaf index breaks one-time
security, so the signer object tracks and refuses reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.merkle import MerkleProof, MerkleTree, verify_inclusion
from repro.errors import ConfigurationError, SignatureError
from repro.srds.ots import OneTimeSignatureScheme, WinternitzOts
from repro.utils.serialization import (
    decode_bytes,
    decode_uint,
    encode_bytes,
    encode_uint,
)


@dataclass(frozen=True)
class MerkleSignature:
    """One many-time signature: leaf index, OTS material, Merkle path."""

    leaf_index: int
    ots_verification_key: bytes
    ots_signature: bytes
    proof: MerkleProof

    def encode(self) -> bytes:
        parts = [
            encode_uint(self.leaf_index),
            encode_bytes(self.ots_verification_key),
            encode_bytes(self.ots_signature),
            encode_uint(len(self.proof.siblings)),
        ]
        for digest, is_right in self.proof.siblings:
            parts.append(encode_bytes(digest))
            parts.append(encode_uint(1 if is_right else 0))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "MerkleSignature":
        leaf_index, pos = decode_uint(data, 0)
        ots_vk, pos = decode_bytes(data, pos)
        ots_sig, pos = decode_bytes(data, pos)
        count, pos = decode_uint(data, pos)
        siblings = []
        for _ in range(count):
            digest, pos = decode_bytes(data, pos)
            flag, pos = decode_uint(data, pos)
            siblings.append((digest, bool(flag)))
        if pos != len(data):
            raise SignatureError("trailing bytes in Merkle signature")
        return cls(
            leaf_index=leaf_index,
            ots_verification_key=ots_vk,
            ots_signature=ots_sig,
            proof=MerkleProof(leaf_index=leaf_index,
                              siblings=tuple(siblings)),
        )


class MerkleSigner:
    """A stateful many-time signer with capacity ``2^height``."""

    def __init__(
        self,
        seed: bytes,
        height: int = 4,
        ots: Optional[OneTimeSignatureScheme] = None,
    ) -> None:
        if not 1 <= height <= 16:
            raise ConfigurationError("height must lie in [1, 16]")
        self.height = height
        self.capacity = 1 << height
        self.ots = ots if ots is not None else WinternitzOts(
            message_bits=128, w=4
        )
        self._keys = []
        leaves = []
        for index in range(self.capacity):
            vk, sk = self.ots.keygen_from_seed(
                seed + encode_uint(index)
            )
            self._keys.append((vk, sk))
            leaves.append(vk)
        self._tree = MerkleTree(leaves)
        self._used = set()

    @property
    def public_key(self) -> bytes:
        """The long-lived public key: the Merkle root (32 bytes)."""
        return self._tree.root

    @property
    def remaining(self) -> int:
        """How many signatures are left."""
        return self.capacity - len(self._used)

    def sign(self, message: bytes,
             leaf_index: Optional[int] = None) -> MerkleSignature:
        """Sign with the next unused leaf (or a chosen one, once)."""
        if leaf_index is None:
            leaf_index = next(
                (i for i in range(self.capacity) if i not in self._used),
                None,
            )
            if leaf_index is None:
                raise SignatureError("signer capacity exhausted")
        if leaf_index in self._used:
            raise SignatureError(
                f"leaf {leaf_index} already used; reuse breaks one-time "
                "security"
            )
        if not 0 <= leaf_index < self.capacity:
            raise SignatureError("leaf index out of range")
        self._used.add(leaf_index)
        vk, sk = self._keys[leaf_index]
        return MerkleSignature(
            leaf_index=leaf_index,
            ots_verification_key=vk,
            ots_signature=self.ots.sign(sk, message),
            proof=self._tree.prove(leaf_index),
        )


def verify(
    public_key: bytes,
    message: bytes,
    signature: MerkleSignature,
    ots: Optional[OneTimeSignatureScheme] = None,
) -> bool:
    """Verify a Merkle signature against the long-lived root."""
    ots = ots if ots is not None else WinternitzOts(message_bits=128, w=4)
    if signature.proof.leaf_index != signature.leaf_index:
        return False
    if not verify_inclusion(
        public_key, signature.ots_verification_key, signature.proof
    ):
        return False
    return ots.verify(
        signature.ots_verification_key, message, signature.ots_signature
    )
