"""E6 — almost-everywhere tree combinatorics (Def. 2.3 / 3.4).

Measures, over random corruption placements at each n: the good-path
leaf fraction (property 4 requires >= 1 - 3/log n), the well-connected
party fraction (the [13] observation), tree height, and arity — the
structural guarantees every upper layer stands on.
"""

import pytest

from benchmarks.conftest import write_result
from repro.aetree.analysis import analyze, validate_against_plan
from repro.aetree.tree import build_tree
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters, ceil_log2
from repro.utils.randomness import Randomness

NS = [64, 128, 256, 512, 1024, 2048]
TRIALS = 5
PARAMS = ProtocolParameters()


def _sweep():
    rng = Randomness(12)
    rows = []
    for n in NS:
        reports = []
        for trial in range(TRIALS):
            plan = random_corruption(
                n, PARAMS.max_corruptions(n), rng.fork(f"c{n}.{trial}")
            )
            tree = build_tree(
                n, PARAMS, rng.fork(f"t{n}.{trial}"),
                honest_root_hint=plan.honest,
            )
            reports.append(validate_against_plan(tree, PARAMS, plan))
        rows.append((n, reports))
    return rows


@pytest.mark.benchmark(group="aetree")
def test_tree_combinatorics(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"E6 — (n, I)-tree guarantees over {TRIALS} corruption draws:",
        f"{'n':>6} {'height':>7} {'leaves':>7} {'good-path':>10} "
        f"{'bound':>7} {'connected':>10} {'root good':>10}",
    ]
    for n, reports in rows:
        mean_good_path = sum(
            r.good_path_leaf_fraction for r in reports
        ) / len(reports)
        mean_connected = sum(
            r.well_connected_fraction for r in reports
        ) / len(reports)
        bound = 1 - min(1.0, 3 / ceil_log2(n))
        lines.append(
            f"{n:>6} {reports[0].height:>7} {reports[0].num_leaves:>7} "
            f"{mean_good_path:>10.3f} {bound:>7.3f} "
            f"{mean_connected:>10.3f} "
            f"{all(r.root_is_good for r in reports)!s:>10}"
        )
    write_result(results_dir, "aetree", "\n".join(lines))

    for n, reports in rows:
        bound = 1 - min(1.0, 3 / ceil_log2(n))
        for report in reports:
            # Property 4 (scaled) and the supreme-committee guarantee —
            # validate_against_plan already enforced them; re-assert the
            # headline numbers explicitly.
            assert report.good_path_leaf_fraction >= bound
            assert report.root_is_good
            # The [13] observation: almost all parties well-connected.
            assert report.well_connected_fraction >= 0.9
    # Height grows like log n / log log n: single-digit everywhere here.
    assert all(reports[0].height <= 6 for _, reports in rows)
