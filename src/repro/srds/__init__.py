"""SRDS: the paper's core primitive, its two constructions, and games."""

from repro.srds.base import PublicParameters, SRDSScheme, SRDSSignature
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS

__all__ = ["OwfSRDS", "PublicParameters", "SRDSScheme", "SRDSSignature", "SnarkSRDS"]
