"""Tests for the simulated SNARK / PCD system."""

import pytest

from repro.crypto.snark import PROOF_BYTES, Proof, SnarkSystem, forge_random_proof
from repro.errors import ProofError
from repro.utils.randomness import Randomness


@pytest.fixture
def system():
    sys_ = SnarkSystem(b"crs-seed")
    sys_.register_relation(
        "len3", lambda statement, witness: len(witness) == 3
    )
    return sys_


class TestProveVerify:
    def test_valid_proof(self, system):
        proof = system.prove("len3", b"stmt", b"abc")
        assert system.verify("len3", b"stmt", proof)

    def test_wrong_statement_rejected(self, system):
        proof = system.prove("len3", b"stmt", b"abc")
        assert not system.verify("len3", b"other", proof)

    def test_bad_witness_refused(self, system):
        with pytest.raises(ProofError):
            system.prove("len3", b"stmt", b"toolong")

    def test_unknown_relation_prove_rejected(self, system):
        with pytest.raises(ProofError):
            system.prove("nope", b"stmt", b"abc")

    def test_unknown_relation_verify_false(self, system):
        proof = system.prove("len3", b"stmt", b"abc")
        assert not system.verify("nope", b"stmt", proof)

    def test_proof_constant_size(self, system):
        system.register_relation("any", lambda s, w: True)
        small = system.prove("any", b"s", b"")
        large = system.prove("any", b"s2", b"w" * 100_000)
        assert small.size_bytes() == large.size_bytes() == PROOF_BYTES

    def test_cross_relation_rejected(self, system):
        system.register_relation("len3b", lambda s, w: len(w) == 3)
        proof = system.prove("len3", b"stmt", b"abc")
        assert not system.verify("len3b", b"stmt", proof)

    def test_forged_random_proof_rejected(self, system):
        rng = Randomness(1)
        for _ in range(20):
            forged = forge_random_proof("len3", rng)
            assert not system.verify("len3", b"stmt", forged)

    def test_different_crs_incompatible(self):
        a = SnarkSystem(b"crs-a")
        b = SnarkSystem(b"crs-b")
        a.register_relation("r", lambda s, w: True)
        b.register_relation("r", lambda s, w: True)
        proof = a.prove("r", b"stmt", b"")
        assert not b.verify("r", b"stmt", proof)


class TestRegistration:
    def test_duplicate_registration_rejected(self, system):
        with pytest.raises(ProofError):
            system.register_relation("len3", lambda s, w: True)

    def test_has_relation(self, system):
        assert system.has_relation("len3")
        assert not system.has_relation("absent")


class TestRecursion:
    def test_recursive_composition(self):
        """A relation that verifies an inner proof — the PCD pattern."""
        system = SnarkSystem(b"crs")
        system.register_relation("base", lambda s, w: w == b"secret")

        def outer(statement: bytes, witness: bytes) -> bool:
            return system.verify(
                "base", statement, Proof(relation_name="base", tag=witness)
            )

        system.register_relation("outer", outer)
        inner = system.prove("base", b"stmt", b"secret")
        outer_proof = system.prove("outer", b"stmt", inner.tag)
        assert system.verify("outer", b"stmt", outer_proof)

    def test_recursive_rejects_bad_inner(self):
        system = SnarkSystem(b"crs")
        system.register_relation("base", lambda s, w: w == b"secret")

        def outer(statement: bytes, witness: bytes) -> bool:
            return system.verify(
                "base", statement, Proof(relation_name="base", tag=witness)
            )

        system.register_relation("outer", outer)
        with pytest.raises(ProofError):
            system.prove("outer", b"stmt", bytes(32))
