"""EXC001 positive fixture: silent broad excepts."""


def swallow_all(blob: bytes) -> bool:
    try:
        return blob.decode("utf-8") == "ok"
    except Exception:
        return False  # a verifier bug also reads as 'reject'


def bare(blob: bytes):
    try:
        return int(blob)
    except:  # noqa: E722 - deliberately bare for the fixture
        pass


def tuple_hides_broad(blob: bytes):
    try:
        return int(blob)
    except (ValueError, Exception):
        return None
