"""Simulated threshold fully homomorphic encryption.

Corollary 1.2(2) assumes FHE; real FHE cannot be built in a
dependency-free offline repo, so — per the DESIGN.md substitution rule —
this module implements the closest synthetic equivalent that exercises
the same code path:

* **Interface parity**: key ceremony producing a public key and n' secret
  shares with threshold reconstruction; ``encrypt``, ``evaluate`` (apply
  an arbitrary function to ciphertexts), and share-based
  ``threshold_decrypt``.
* **Communication realism**: ciphertext wire size is
  ``plaintext_size * EXPANSION + OVERHEAD`` and decryption shares are
  constant-size, so protocols metered over this oracle charge the same
  shape a lattice FHE would (up to the constant).
* **Security against modeled adversaries**: ciphertext handles are
  opaque 32-byte identifiers; plaintexts live inside the oracle and are
  only released by ``threshold_decrypt`` when at least ``threshold``
  distinct genuine shares are presented.  Experiment adversaries hold
  only their own shares and fewer than the threshold of them.

What is *not* modeled is security against an adversary attacking the
encryption itself — exactly parallel to the SNARK substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.crypto.prf import prf
from repro.errors import CryptoError
from repro.utils.randomness import Randomness
from repro.utils.serialization import encode_uint

EXPANSION = 8          # ciphertext bytes per plaintext byte
OVERHEAD_BYTES = 64    # per-ciphertext header
SHARE_BYTES = 48       # decryption-share wire size


@dataclass(frozen=True)
class Ciphertext:
    """An opaque handle plus its metered wire size."""

    handle: bytes
    size_bytes: int


@dataclass(frozen=True)
class DecryptionShare:
    """One party's contribution to a threshold decryption."""

    ciphertext_handle: bytes
    holder_index: int
    tag: bytes

    def size_bytes(self) -> int:
        """Constant wire size."""
        return SHARE_BYTES


class ThresholdFHE:
    """One FHE deployment: keys, the plaintext oracle, and operations."""

    def __init__(self, num_holders: int, threshold: int,
                 rng: Randomness) -> None:
        if not 0 < threshold <= num_holders:
            raise CryptoError("threshold must lie in [1, num_holders]")
        self.num_holders = num_holders
        self.threshold = threshold
        self._master_secret = rng.random_bytes(32)
        self.public_key = prf(self._master_secret, "fhe/public-key")
        self._holder_secrets: List[bytes] = [
            prf(self._master_secret, "fhe/holder", encode_uint(i))
            for i in range(num_holders)
        ]
        self._plaintexts: Dict[bytes, bytes] = {}
        self._counter = 0

    # -- key ceremony ------------------------------------------------------------

    def holder_secret(self, index: int) -> bytes:
        """The secret share handed to holder ``index`` at the ceremony."""
        if not 0 <= index < self.num_holders:
            raise CryptoError(f"holder index {index} out of range")
        return self._holder_secrets[index]

    # -- operations ----------------------------------------------------------------

    def encrypt(self, plaintext: bytes, rng: Randomness) -> Ciphertext:
        """Encrypt under the deployment's public key."""
        self._counter += 1
        handle = prf(
            self.public_key,
            "fhe/handle",
            encode_uint(self._counter),
            rng.random_bytes(16),
        )
        self._plaintexts[handle] = bytes(plaintext)
        return Ciphertext(
            handle=handle,
            size_bytes=len(plaintext) * EXPANSION + OVERHEAD_BYTES,
        )

    def evaluate(
        self,
        function: Callable[[List[bytes]], bytes],
        ciphertexts: Sequence[Ciphertext],
        output_size: int,
    ) -> Ciphertext:
        """Homomorphically apply ``function`` to the ciphertexts.

        ``output_size`` bounds the result's plaintext length (FHE
        parameters fix the output shape in advance); the evaluated
        plaintext is truncated/padded to it so wire sizes are
        input-independent.
        """
        inputs = []
        for ciphertext in ciphertexts:
            plaintext = self._plaintexts.get(ciphertext.handle)
            if plaintext is None:
                raise CryptoError("unknown ciphertext handle")
            inputs.append(plaintext)
        result = function(inputs)[:output_size].ljust(output_size, b"\x00")
        self._counter += 1
        handle = prf(
            self.public_key, "fhe/eval-handle", encode_uint(self._counter)
        )
        self._plaintexts[handle] = result
        return Ciphertext(
            handle=handle,
            size_bytes=output_size * EXPANSION + OVERHEAD_BYTES,
        )

    def decryption_share(self, index: int,
                         ciphertext: Ciphertext) -> DecryptionShare:
        """Holder ``index``'s share for one ciphertext."""
        secret = self.holder_secret(index)
        return DecryptionShare(
            ciphertext_handle=ciphertext.handle,
            holder_index=index,
            tag=prf(secret, "fhe/dec-share", ciphertext.handle),
        )

    def threshold_decrypt(
        self,
        ciphertext: Ciphertext,
        shares: Sequence[DecryptionShare],
    ) -> bytes:
        """Combine shares; raises unless >= threshold genuine ones."""
        valid_holders = set()
        for share in shares:
            if share.ciphertext_handle != ciphertext.handle:
                continue
            if not 0 <= share.holder_index < self.num_holders:
                continue
            expected = prf(
                self._holder_secrets[share.holder_index],
                "fhe/dec-share",
                ciphertext.handle,
            )
            if share.tag == expected:
                valid_holders.add(share.holder_index)
        if len(valid_holders) < self.threshold:
            raise CryptoError(
                f"{len(valid_holders)} valid shares below threshold "
                f"{self.threshold}"
            )
        plaintext = self._plaintexts.get(ciphertext.handle)
        if plaintext is None:
            raise CryptoError("unknown ciphertext handle")
        return plaintext
