"""MeshConformance: the mesh data plane is indistinguishable on paper.

Every cell runs the same workload on the direct worker↔worker mesh and
on the legacy supervisor relay, and checks both against the
single-process reference — outputs, ``max_bits_per_party``, full
per-party tallies, bit-exact flow-ledger parity
(``FlowLedger.verify_against``), and the trace fingerprint (pinned to
the runtime's seed-stability values at n=16; cross-plane-identical at
n=64).  A mesh that dropped, duplicated, or re-ordered a single frame —
or charged one bit differently while reconstructing supervisor metrics
from worker round digests — fails here.

The n=16 cells are cheap enough for tier-1; n=64 rides the ``cluster``
marker with the other heavy process tests.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.cluster.drivers import (
    record_balanced_ba_script,
    run_gradecast_cluster,
    run_phase_king_cluster,
)
from repro.cluster.job import replay_job
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.obs.flow import FlowLedger
from repro.params import ProtocolParameters
from repro.protocols.gradecast import run_gradecast
from repro.runtime.drivers import run_phase_king_runtime
from repro.runtime.replay import (
    apply_func_ops,
    build_replay_parties,
    tallies_equal,
)
from repro.runtime.synchronizer import run_parties
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness
from tests.runtime.test_seed_stability import PINNED

SEED = 7  # matches tests/runtime/test_seed_stability.py's pins
PLANES = ("mesh", "relay")
SCHEMES = ("snark", "owf")


def _scheme(name):
    # The exact constructions behind the pinned fingerprints.
    if name == "snark":
        return SnarkSRDS(base_scheme=HashRegistryBase())
    return OwfSRDS(message_bits=64)


@lru_cache(maxsize=None)
def _pi_ba_script(n, scheme_name):
    params = ProtocolParameters()
    rng = Randomness(SEED)
    plan = random_corruption(
        n, params.max_corruptions(n), rng.fork("corrupt")
    )
    inputs = {i: i % 2 for i in range(n)}
    _reference, script = record_balanced_ba_script(
        inputs, plan, _scheme(scheme_name), params, rng.fork("run")
    )
    return script


@lru_cache(maxsize=None)
def _pi_ba_reference(n, scheme_name):
    """Single-process ``run_parties`` over the same recorded script."""
    script = _pi_ba_script(n, scheme_name)
    metrics = CommunicationMetrics()
    result = run_parties(
        build_replay_parties(script, n),
        metrics=metrics,
        max_rounds=script.num_rounds + 2,
    )
    apply_func_ops(script, metrics)
    return result.outputs, metrics


def _cluster_replay(n, scheme_name, plane, workers):
    script = _pi_ba_script(n, scheme_name)
    flow = FlowLedger()
    config = ClusterConfig(
        num_workers=workers, data_plane=plane, flow=flow
    )
    job = replay_job(script, n, checkpoint_interval=4)
    result = ClusterSupervisor(job, config).run()
    apply_func_ops(script, result.metrics)
    return result, flow


def _assert_pi_ba_cell(n, scheme_name, plane, workers, pinned=None):
    ref_outputs, ref_metrics = _pi_ba_reference(n, scheme_name)
    result, flow = _cluster_replay(n, scheme_name, plane, workers)
    assert result.outputs == ref_outputs
    assert (
        result.metrics.max_bits_per_party == ref_metrics.max_bits_per_party
    )
    assert tallies_equal(result.metrics, ref_metrics, range(n))
    # Bit-exact flow parity: every cell of the wire-level ledger agrees
    # with the authoritative metrics the supervisor reconstructed.
    assert flow.verify_against(result.metrics) == []
    assert flow.coverage() == 1.0
    fingerprint = result.trace.fingerprint()
    if pinned is not None:
        assert fingerprint == pinned, (
            f"{plane} trace fingerprint drifted from the runtime pin"
        )
    flow.close()
    return fingerprint


class TestPiBaMatrixN16:
    @pytest.mark.parametrize("plane", PLANES)
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_both_planes_match_reference_and_pin(self, scheme_name, plane):
        _assert_pi_ba_cell(
            16, scheme_name, plane, workers=2, pinned=PINNED[scheme_name]
        )


@pytest.mark.cluster
class TestPiBaMatrixN64:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_planes_agree_at_four_workers(self, scheme_name):
        fingerprints = {
            plane: _assert_pi_ba_cell(64, scheme_name, plane, workers=4)
            for plane in PLANES
        }
        # No n=64 pin exists; the planes must at least agree with each
        # other bit-for-bit.
        assert fingerprints["mesh"] == fingerprints["relay"]

    def test_single_worker_mesh_matches_reference(self):
        # Degenerate mesh (no peers, every frame stays local) still
        # reconstructs identical supervisor metrics from digests.
        _assert_pi_ba_cell(64, "snark", "mesh", workers=1)


def _phase_king_cell(n, plane, workers):
    inputs = {i: i % 2 for i in range(n)}
    byzantine = (3,)
    reference, ref_metrics = run_phase_king_runtime(inputs, byzantine)
    flow = FlowLedger()
    outputs, result = run_phase_king_cluster(
        inputs,
        byzantine,
        num_workers=workers,
        config=ClusterConfig(
            num_workers=workers, data_plane=plane, flow=flow
        ),
    )
    assert outputs == reference
    assert (
        result.metrics.max_bits_per_party == ref_metrics.max_bits_per_party
    )
    assert tallies_equal(result.metrics, ref_metrics, range(n))
    assert flow.verify_against(result.metrics) == []
    flow.close()


def _gradecast_cell(n, plane, workers):
    sender, value = 2, 1
    reference, ref_metrics = run_gradecast(range(n), sender, value)
    flow = FlowLedger()
    outputs, result = run_gradecast_cluster(
        n,
        sender,
        value,
        num_workers=workers,
        config=ClusterConfig(
            num_workers=workers, data_plane=plane, flow=flow
        ),
    )
    assert outputs == reference
    assert all(pair == (value, 2) for pair in outputs.values())
    assert (
        result.metrics.max_bits_per_party == ref_metrics.max_bits_per_party
    )
    assert tallies_equal(result.metrics, ref_metrics, range(n))
    assert flow.verify_against(result.metrics) == []
    flow.close()


class TestCommitteePrimitivesN16:
    @pytest.mark.parametrize("plane", PLANES)
    def test_phase_king(self, plane):
        _phase_king_cell(16, plane, workers=2)

    @pytest.mark.parametrize("plane", PLANES)
    def test_gradecast(self, plane):
        _gradecast_cell(16, plane, workers=2)


@pytest.mark.cluster
class TestCommitteePrimitivesN64:
    @pytest.mark.parametrize("plane", PLANES)
    def test_phase_king(self, plane):
        _phase_king_cell(64, plane, workers=4)

    @pytest.mark.parametrize("plane", PLANES)
    def test_gradecast(self, plane):
        _gradecast_cell(64, plane, workers=4)
