"""Exception-hygiene rule: EXC001 (swallowed broad excepts).

Byzantine-tolerant code *must* reject malformed adversarial bytes
without crashing — but ``except Exception: return False`` also swallows
genuine programming errors (an AttributeError in the verifier reads as
"signature invalid"), turning soundness bugs into silently-passing
adversarial games.  The sanctioned patterns are:

* narrow to :data:`repro.errors.MALFORMED_INPUT_ERRORS` (the closed set
  of exception types adversarial blob decoding can legitimately raise),
* re-raise after cleanup, or
* keep the broad catch **with an in-line justification**
  (``# lint: allow[EXC001] reason=...``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation

_BROAD = {"Exception", "BaseException"}

_LOG_NAMES = {"logging", "logger", "log", "warnings"}


def _is_broad(handler_type: "ast.expr | None") -> bool:
    """Bare ``except:``, ``except Exception``, or a tuple holding one."""
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Attribute):
        return handler_type.attr in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _handles(handler: ast.ExceptHandler) -> bool:
    """Whether the handler visibly deals with the error.

    Counts: any ``raise`` (re-raise or translate), or a call through a
    logging/warnings channel, or printing the error.  Everything else —
    ``pass``, ``continue``, ``return False`` — is a silent swallow.
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            root = func
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in _LOG_NAMES:
                return True
            if isinstance(func, ast.Name) and func.id == "print":
                return True
    return False


class BroadExceptRule(Rule):
    """EXC001 — no silent broad excepts."""

    meta = RuleMeta(
        rule_id="EXC001",
        name="swallowed-broad-except",
        severity=Severity.ERROR,
        summary=(
            "bare except / except Exception that neither re-raises nor "
            "logs"
        ),
        rationale=(
            "Adversarial-input rejection is protocol-correct, but "
            "`except Exception` cannot tell a malformed blob from a bug "
            "in the verifier: a TypeError in signature checking reads as "
            "'reject', so a soundness break looks like a passing "
            "security game.  Decode paths raise a closed set of types — "
            "catch repro.errors.MALFORMED_INPUT_ERRORS instead, or "
            "justify the broad catch in-line."
        ),
        fix_hint=(
            "catch repro.errors.MALFORMED_INPUT_ERRORS (or a narrower "
            "type), re-raise, or add "
            "`# lint: allow[EXC001] reason=...`"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _handles(node):
                continue
            shape = (
                "bare `except:`" if node.type is None
                else "broad `except Exception`"
            )
            yield self.violation(
                module, node,
                f"{shape} silently swallows errors (bugs become "
                "'reject adversarial input')",
            )
