"""repro.lint.xmod — the project-wide (cross-module) analysis layer.

The per-file rules of :mod:`repro.lint.rules` see one
:class:`~repro.lint.model.ModuleUnit` at a time, which is exactly the
wrong granularity for the failure modes an adaptive adversary exploits
first: a value decoded off the wire in ``cluster/meshwire.py`` reaching
protocol logic in another module without validation, or an
encoder/decoder pair drifting apart across files.  This package builds
the shared project view those checks need:

* :mod:`repro.lint.xmod.project` — per-module **fact extraction**
  (functions, calls with import-resolved targets, an intraprocedural
  taint digest, struct codec uses, class/lock/mutation inventories)
  into JSON-serializable :class:`~repro.lint.xmod.project.ModuleFacts`,
  assembled into one :class:`~repro.lint.xmod.project.ProjectUnit`;
* :mod:`repro.lint.xmod.callgraph` — cross-module call resolution, the
  strongly-connected-component decomposition used for cache
  invalidation, and the schema-versioned JSON export behind
  ``python -m repro lint graph``;
* :mod:`repro.lint.xmod.cache` — a content-hash-keyed facts cache
  (``.lint-cache.json``) so ``lint check`` re-extracts only edited
  files (plus their import SCC) instead of the whole tree.

The interprocedural rule families that consume this view live with the
other rules: TRU001 (:mod:`repro.lint.rules.trust`), SCH001
(:mod:`repro.lint.rules.schema`), and ASY002
(:mod:`repro.lint.rules.asyncsafety`).  Everything here is stdlib
``ast`` only — same zero-dependency contract as the per-file engine.
"""

from repro.lint.xmod.callgraph import CALLGRAPH_SCHEMA, CallGraph
from repro.lint.xmod.project import ModuleFacts, ProjectUnit

__all__ = [
    "CALLGRAPH_SCHEMA",
    "CallGraph",
    "ModuleFacts",
    "ProjectUnit",
]
