"""Adaptive corruption: budget enforcement at spend time, strategy seams.

The ledger is the single choke point — a strategy can watch anything
(wire traffic, coin outcomes) but every corruption must pass
:meth:`AdaptiveCorruption.corrupt`, which enforces the budget *at
corruption time*.  That is the property separating "strictly stronger
than static" from "unbounded": an adaptive adversary with budget ``f``
is still an ``f``-adversary.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.asynchrony.adaptive import (
    ADAPTIVE_STRATEGIES,
    AdaptiveCorruption,
    AdaptiveStrategy,
    CoinChaserStrategy,
    FirstResponderStrategy,
    adaptive_strategy_by_name,
)
from repro.asynchrony.driver import run_aba


# -- the ledger --------------------------------------------------------------


class TestLedger:
    def test_budget_enforced_at_corruption_time(self):
        ledger = AdaptiveCorruption(n=8, budget=2)
        ledger.corrupt(1)
        ledger.corrupt(4)
        assert ledger.remaining == 0
        with pytest.raises(ConfigurationError, match="budget"):
            ledger.corrupt(5)
        assert ledger.corrupted == [1, 4]  # the failed spend changed nothing

    def test_try_corrupt_refuses_quietly(self):
        ledger = AdaptiveCorruption(n=8, budget=1)
        assert ledger.try_corrupt(3)
        assert not ledger.try_corrupt(3)  # already corrupted: no respend
        assert not ledger.try_corrupt(5)  # budget exhausted
        assert ledger.corrupted == [3]

    def test_recorrupting_is_free(self):
        ledger = AdaptiveCorruption(n=8, budget=1)
        ledger.corrupt(2)
        ledger.corrupt(2)  # no-op, not a second spend
        assert ledger.remaining == 0

    def test_out_of_range_and_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveCorruption(n=8, budget=-1)
        ledger = AdaptiveCorruption(n=8, budget=1)
        with pytest.raises(ConfigurationError):
            ledger.corrupt(8)

    def test_callbacks_fire_per_spend(self):
        ledger = AdaptiveCorruption(n=8, budget=2)
        seen = []
        ledger.on_corrupt(seen.append)
        ledger.corrupt(6)
        ledger.corrupt(6)
        ledger.try_corrupt(1)
        assert seen == [6, 1]

    def test_plan_snapshot_is_a_static_plan(self):
        ledger = AdaptiveCorruption(n=8, budget=2)
        ledger.corrupt(7)
        plan = ledger.plan()
        assert plan.corrupted == frozenset({7})
        assert plan.n == 8
        assert plan.budget == 2


# -- the registry ------------------------------------------------------------


class TestRegistry:
    def test_known_names_construct_fresh_instances(self):
        for name in ADAPTIVE_STRATEGIES:
            first = adaptive_strategy_by_name(name)
            second = adaptive_strategy_by_name(name)
            assert first.name == name
            assert first is not second  # stateful: one instance per run

    def test_unknown_name_is_loud(self):
        with pytest.raises(ConfigurationError):
            adaptive_strategy_by_name("adaptive-oracle")

    def test_registry_covers_the_shipped_strategies(self):
        assert ADAPTIVE_STRATEGIES[CoinChaserStrategy.name] is CoinChaserStrategy
        assert (
            ADAPTIVE_STRATEGIES[FirstResponderStrategy.name]
            is FirstResponderStrategy
        )


# -- strategies driving real runs --------------------------------------------


class GreedyStrategy(AdaptiveStrategy):
    """Tries to corrupt every sender it observes — the budget must hold."""

    name = "adaptive-greedy-test"

    def observe_wire(self, now, envelope):
        assert self.ledger is not None
        self.ledger.try_corrupt(envelope.sender)


class TestAdaptiveRuns:
    def test_default_budget_is_f_minus_static(self):
        result = run_aba(16, seed=2, adaptive="adaptive-coin")
        f = (16 - 1) // 3
        assert len(result.corrupted) <= f
        honest = set(range(16)) - set(result.corrupted)
        assert set(result.outputs) == honest
        assert result.agreed_value in (0, 1)

    def test_first_responder_respects_explicit_budget(self):
        result = run_aba(16, seed=2, adaptive="adaptive-first-aux", adaptive_budget=2)
        assert len(result.corrupted) <= 2
        assert set(result.outputs) == set(range(16)) - set(result.corrupted)

    def test_zero_budget_means_no_corruption(self):
        result = run_aba(16, seed=2, adaptive="adaptive-first-aux", adaptive_budget=0)
        assert result.corrupted == []
        assert set(result.outputs) == set(range(16))

    def test_greedy_strategy_is_capped_by_the_ledger(self):
        result = run_aba(16, seed=3, adaptive=GreedyStrategy(), adaptive_budget=3)
        assert len(result.corrupted) == 3  # greed spends the whole budget
        assert set(result.outputs) == set(range(16)) - set(result.corrupted)
        assert result.agreed_value in (0, 1)

    def test_adaptive_stacks_with_static_corruption(self):
        result = run_aba(
            16,
            seed=3,
            corrupted={0},
            adaptive=GreedyStrategy(),
            adaptive_budget=2,
        )
        assert 0 in result.corrupted
        assert len(result.corrupted) <= 3
        assert set(result.outputs) == set(range(16)) - set(result.corrupted)

    def test_adaptive_runs_replay_exactly(self):
        a = run_aba(16, seed=11, adaptive="adaptive-coin")
        b = run_aba(16, seed=11, adaptive="adaptive-coin")
        assert a.corrupted == b.corrupted
        assert a.trace == b.trace
        assert a.outputs == b.outputs
