"""Tests for tree goodness and good-path analysis."""

import pytest

from repro.aetree.analysis import (
    analyze,
    good_nodes,
    good_path_fraction,
    good_path_leaves,
    is_good_node,
    isolated_parties,
    validate_against_plan,
    validate_structure,
    well_connected_parties,
)
from repro.aetree.tree import build_tree
from repro.errors import TreeError
from repro.net.adversary import CorruptionPlan, random_corruption, targeted_corruption
from repro.params import ProtocolParameters


@pytest.fixture
def setup(params, rng):
    n = 128
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    tree = build_tree(n, params, rng.fork("t"), honest_root_hint=plan.honest)
    return tree, plan


class TestGoodness:
    def test_no_corruption_everything_good(self, params, rng):
        tree = build_tree(64, params, rng)
        plan = targeted_corruption(64, [])
        report = analyze(tree, plan)
        assert report.good_node_fraction == 1.0
        assert report.good_path_leaf_fraction == 1.0
        assert report.well_connected_fraction == 1.0

    def test_full_committee_corruption_bad(self, setup):
        tree, _ = setup
        leaf = tree.leaves[0]
        plan = targeted_corruption(tree.n, list(leaf.committee))
        assert not is_good_node(leaf, plan.corrupted)

    def test_third_boundary_is_bad(self, setup):
        tree, _ = setup
        leaf = tree.leaves[0]
        committee = list(leaf.committee)
        third = (len(committee) + 2) // 3
        plan = targeted_corruption(tree.n, committee[:third])
        assert not is_good_node(leaf, plan.corrupted)

    def test_below_third_is_good(self, setup):
        tree, _ = setup
        leaf = tree.leaves[0]
        committee = list(leaf.committee)
        below = max(0, (len(committee) - 1) // 3 - 1)
        plan = targeted_corruption(tree.n, committee[:below])
        assert is_good_node(leaf, plan.corrupted)

    def test_random_corruption_mostly_good(self, setup):
        tree, plan = setup
        report = analyze(tree, plan)
        assert report.good_path_leaf_fraction > 0.8
        assert report.root_is_good


class TestPaths:
    def test_good_path_requires_all_good(self, setup):
        tree, plan = setup
        good = good_nodes(tree, plan)
        for leaf in good_path_leaves(tree, plan):
            for node in tree.path_to_root(leaf.node_id):
                assert node.node_id in good

    def test_fraction_consistent(self, setup):
        tree, plan = setup
        fraction = good_path_fraction(tree, plan)
        assert fraction == len(good_path_leaves(tree, plan)) / len(tree.leaves)

    def test_corrupt_root_kills_all_paths(self, setup):
        tree, _ = setup
        plan = targeted_corruption(tree.n, list(tree.supreme_committee))
        assert good_path_fraction(tree, plan) == 0.0


class TestConnectivity:
    def test_isolated_complement(self, setup):
        tree, plan = setup
        connected = well_connected_parties(tree, plan)
        isolated = isolated_parties(tree, plan)
        assert connected | isolated == set(range(tree.n))
        assert not connected & isolated

    def test_mostly_connected_under_random_corruption(self, setup):
        tree, plan = setup
        assert len(well_connected_parties(tree, plan)) >= 0.9 * tree.n


class TestValidation:
    def test_honest_tree_validates(self, setup, params):
        tree, plan = setup
        validate_structure(tree, params)
        report = validate_against_plan(tree, params, plan)
        assert report.root_is_good

    def test_corrupt_root_fails_validation(self, setup, params):
        tree, _ = setup
        plan = targeted_corruption(tree.n, list(tree.supreme_committee))
        with pytest.raises(TreeError):
            validate_against_plan(tree, params, plan)

    def test_tampered_links_fail_validation(self, setup, params):
        tree, _ = setup
        # Break a parent pointer.
        leaf = tree.leaves[0]
        original = leaf.parent_id
        leaf.parent_id = tree.root_id if original != tree.root_id else None
        try:
            with pytest.raises(TreeError):
                validate_structure(tree, params)
        finally:
            leaf.parent_id = original

    def test_report_fields(self, setup):
        tree, plan = setup
        report = analyze(tree, plan)
        assert report.n == tree.n
        assert report.num_leaves == len(tree.leaves)
        assert report.height == tree.height
        assert 0 <= report.good_node_fraction <= 1
