"""Tests for Merkle trees."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.merkle import (
    MerkleProof,
    MerkleTree,
    merkle_root,
    root_from_proof,
    verify_inclusion,
)
from repro.errors import CryptoError


class TestBasics:
    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        proof = tree.prove(0)
        assert verify_inclusion(tree.root, b"only", proof)

    def test_empty_tree_has_root(self):
        assert len(MerkleTree([]).root) == 32

    def test_out_of_range_proof_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(CryptoError):
            tree.prove(2)

    def test_merkle_root_helper(self):
        assert merkle_root([b"a", b"b"]) == MerkleTree([b"a", b"b"]).root

    def test_root_differs_on_leaf_change(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])

    def test_root_order_sensitive(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_promotion_padding_not_duplication(self):
        # A 3-leaf tree must differ from the 4-leaf tree that duplicates
        # the last leaf (the Bitcoin-mutation pitfall).
        assert merkle_root([b"a", b"b", b"c"]) != merkle_root(
            [b"a", b"b", b"c", b"c"]
        )


class TestProofs:
    @given(st.lists(st.binary(min_size=1, max_size=16), min_size=1,
                    max_size=33))
    def test_all_leaves_provable(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.prove(index)
            assert verify_inclusion(tree.root, leaf, proof)

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.prove(1)
        assert not verify_inclusion(tree.root, b"x", proof)

    def test_wrong_index_proof_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        assert not verify_inclusion(tree.root, b"a", tree.prove(1))

    def test_tampered_sibling_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        proof = tree.prove(0)
        tampered = MerkleProof(
            leaf_index=0,
            siblings=tuple(
                (bytes(32), right) for _, right in proof.siblings
            ),
        )
        assert not verify_inclusion(tree.root, b"a", tampered)

    def test_root_from_proof_consistency(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
        proof = tree.prove(4)
        assert root_from_proof(b"e", proof) == tree.root

    def test_proof_size_logarithmic(self):
        tree = MerkleTree([bytes([i]) for i in range(256)])
        proof = tree.prove(100)
        assert len(proof.siblings) == 8  # log2(256)

    def test_proof_size_bytes_positive(self):
        tree = MerkleTree([b"a", b"b"])
        assert tree.prove(0).size_bytes() > 0
