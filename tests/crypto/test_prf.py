"""Tests for the PRF and the committee-selection SubsetPRF."""

import pytest

from repro.crypto.prf import SubsetPRF, prf, prf_int


class TestPrf:
    def test_deterministic(self):
        assert prf(b"k", "d", b"x") == prf(b"k", "d", b"x")

    def test_key_separation(self):
        assert prf(b"k1", "d", b"x") != prf(b"k2", "d", b"x")

    def test_domain_separation(self):
        assert prf(b"k", "d1", b"x") != prf(b"k", "d2", b"x")

    def test_output_width(self):
        assert len(prf(b"k", "d")) == 32


class TestPrfInt:
    def test_range(self):
        for upper in (1, 2, 7, 1000):
            value = prf_int(b"k", "d", upper, b"x")
            assert 0 <= value < upper

    def test_deterministic(self):
        assert prf_int(b"k", "d", 100, b"x") == prf_int(b"k", "d", 100, b"x")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            prf_int(b"k", "d", 0)

    def test_spread(self):
        from repro.utils.serialization import encode_uint

        values = {prf_int(b"k", "d", 50, encode_uint(i)) for i in range(300)}
        assert len(values) >= 40  # nearly all residues hit


class TestSubsetPRF:
    def test_subset_size_and_range(self):
        prf_family = SubsetPRF(b"seed", 100, 7)
        subset = prf_family.subset(3)
        assert len(subset) == 7
        assert len(set(subset)) == 7
        assert all(0 <= member < 100 for member in subset)

    def test_sorted_output(self):
        subset = SubsetPRF(b"seed", 100, 7).subset(3)
        assert subset == sorted(subset)

    def test_deterministic_across_instances(self):
        a = SubsetPRF(b"seed", 100, 7).subset(3)
        b = SubsetPRF(b"seed", 100, 7).subset(3)
        assert a == b

    def test_different_parties_differ(self):
        prf_family = SubsetPRF(b"seed", 1000, 10)
        assert prf_family.subset(1) != prf_family.subset(2)

    def test_different_seeds_differ(self):
        assert SubsetPRF(b"s1", 1000, 10).subset(1) != SubsetPRF(
            b"s2", 1000, 10
        ).subset(1)

    def test_contains_matches_subset(self):
        prf_family = SubsetPRF(b"seed", 50, 5)
        subset = prf_family.subset(9)
        for member in range(50):
            assert prf_family.contains(9, member) == (member in subset)

    def test_full_subset(self):
        subset = SubsetPRF(b"seed", 5, 5).subset(0)
        assert subset == [0, 1, 2, 3, 4]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SubsetPRF(b"s", 0, 1)
        with pytest.raises(ValueError):
            SubsetPRF(b"s", 10, 11)
        with pytest.raises(ValueError):
            SubsetPRF(b"s", 10, 0)
