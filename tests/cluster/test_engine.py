"""ShardEngine: parity with the runtime synchronizer, and the
save → load → resume property (satellite 3): an interrupted run resumed
from its durable checkpoint produces byte-identical outputs, metrics
tallies, and trace fingerprints versus an uninterrupted run."""

from __future__ import annotations

import pytest

from repro.cluster.engine import (
    ShardEngine,
    resume_shard_locally,
    run_shard_locally,
)
from repro.cluster.job import phase_king_parties, replay_script_parties
from repro.errors import ClusterError
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.params import ProtocolParameters
from repro.runtime.replay import apply_func_ops, tallies_equal
from repro.runtime.synchronizer import run_parties
from repro.runtime.trace import TraceRecorder
from repro.utils.randomness import Randomness

N = 16


def _phase_king_setup():
    inputs = {i: i % 2 for i in range(N)}
    byzantine = (2, 9)
    honest = tuple(i for i in range(N) if i not in byzantine)
    f = max(1, (N - 1) // 3)
    max_rounds = 3 * (f + 2) + 3
    return inputs, byzantine, honest, max_rounds


from functools import lru_cache


@lru_cache(maxsize=None)
def _pi_ba_script(scheme_name: str):
    from repro.cluster.drivers import make_scheme, record_balanced_ba_script

    params = ProtocolParameters()
    inputs = {i: i % 2 for i in range(N)}
    plan = random_corruption(
        N, params.max_corruptions(N), Randomness(11).fork("corruption")
    )
    _, script = record_balanced_ba_script(
        inputs, plan, make_scheme(scheme_name), params,
        Randomness(11).fork("protocol"),
    )
    return script


def _reference(parties, until, max_rounds):
    metrics = CommunicationMetrics()
    trace = TraceRecorder()
    result = run_parties(
        parties, metrics=metrics, trace=trace,
        until=until, max_rounds=max_rounds,
    )
    return result, metrics, trace


class TestEngineParity:
    def test_phase_king_matches_run_parties(self):
        inputs, byzantine, honest, max_rounds = _phase_king_setup()
        ref, ref_metrics, ref_trace = _reference(
            phase_king_parties(N, inputs, byzantine), honest, max_rounds
        )
        metrics = CommunicationMetrics()
        trace = TraceRecorder()
        result = run_shard_locally(
            phase_king_parties(N, inputs, byzantine),
            metrics=metrics, trace=trace, until=honest,
            max_rounds=max_rounds,
        )
        assert result.outputs == ref.outputs
        assert result.rounds == ref.rounds
        assert metrics.max_bits_per_party == ref_metrics.max_bits_per_party
        assert tallies_equal(metrics, ref_metrics, range(N))
        assert trace.fingerprint() == ref_trace.fingerprint()

    @pytest.mark.parametrize("scheme_name", ["snark", "owf"])
    def test_pi_ba_replay_matches_run_parties(self, scheme_name):
        script = _pi_ba_script(scheme_name)
        max_rounds = script.num_rounds + 2
        ref, ref_metrics, ref_trace = _reference(
            replay_script_parties(N, script), None, max_rounds
        )
        apply_func_ops(script, ref_metrics)
        metrics = CommunicationMetrics()
        trace = TraceRecorder()
        result = run_shard_locally(
            replay_script_parties(N, script),
            metrics=metrics, trace=trace, max_rounds=max_rounds,
        )
        apply_func_ops(script, metrics)
        assert result.outputs == ref.outputs
        assert metrics.max_bits_per_party == ref_metrics.max_bits_per_party
        assert tallies_equal(metrics, ref_metrics, range(N))
        assert trace.fingerprint() == ref_trace.fingerprint()

    def test_round_mismatch_rejected(self):
        inputs, byzantine, _, _ = _phase_king_setup()
        engine = ShardEngine(phase_king_parties(N, inputs, byzantine))
        with pytest.raises(ClusterError, match="round"):
            engine.step_round(5, [])

    def test_snapshot_restore_preserves_seq_counters(self):
        inputs, byzantine, honest, _ = _phase_king_setup()
        engine = ShardEngine(phase_king_parties(N, inputs, byzantine))
        out0 = engine.step_round(0, [])
        out1 = engine.step_round(1, out0)
        restored = ShardEngine.restore(engine.snapshot())
        assert restored.next_round == engine.next_round
        assert restored.party_ids == engine.party_ids
        # Sequence counters continue, keeping canonical inbox order.
        a = engine.step_round(2, out1)
        b = restored.step_round(2, out1)
        assert [
            (f.sender, f.recipient, f.seq, f.payload) for f in a
        ] == [(f.sender, f.recipient, f.seq, f.payload) for f in b]


class TestSaveLoadResume:
    """Interrupt at a checkpoint barrier, resume, compare byte-for-byte."""

    def _assert_resume_parity(
        self, build, until, max_rounds, interrupt_after
    ):
        ref, ref_metrics, ref_trace = _reference(
            build(), until, max_rounds
        )
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as raw:
            tmp = Path(raw)
            with pytest.raises(ClusterError, match="did not terminate"):
                run_shard_locally(
                    build(),
                    metrics=CommunicationMetrics(),
                    trace=TraceRecorder(),
                    until=until,
                    max_rounds=interrupt_after,
                    checkpoint_dir=tmp,
                    checkpoint_interval=2,
                    checkpoint_name="shard-0",
                )
            metrics = CommunicationMetrics()
            trace = TraceRecorder()
            result = resume_shard_locally(
                tmp, "shard-0", metrics=metrics, trace=trace,
                until=until, max_rounds=max_rounds,
            )
        assert result.outputs == ref.outputs
        assert metrics.max_bits_per_party == ref_metrics.max_bits_per_party
        assert tallies_equal(metrics, ref_metrics, range(N))
        assert trace.fingerprint() == ref_trace.fingerprint()
        assert (
            metrics.snapshot().rounds == ref_metrics.snapshot().rounds
        )

    def test_phase_king_resume_is_byte_identical(self):
        inputs, byzantine, honest, max_rounds = _phase_king_setup()
        self._assert_resume_parity(
            lambda: phase_king_parties(N, inputs, byzantine),
            honest, max_rounds, interrupt_after=5,
        )

    @pytest.mark.parametrize("scheme_name", ["snark", "owf"])
    def test_pi_ba_resume_is_byte_identical(self, scheme_name):
        script = _pi_ba_script(scheme_name)
        self._assert_resume_parity(
            lambda: replay_script_parties(N, script),
            None, script.num_rounds + 2,
            interrupt_after=script.num_rounds // 2,
        )

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(ClusterError, match="checkpoint"):
            resume_shard_locally(
                tmp_path, "shard-0",
                metrics=CommunicationMetrics(), trace=TraceRecorder(),
                until=None, max_rounds=10,
            )
