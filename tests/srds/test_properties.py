"""Property-based tests on SRDS invariants (hypothesis).

The invariants under test, for random signer subsets, batch shapes, and
aggregation orders:

* **count correctness** — the aggregate attests exactly the number of
  distinct valid contributions, however the batches are arranged;
* **threshold exactness** — verification accepts iff that count reaches
  the acceptance threshold;
* **aggregation associativity** — any batching of the same contribution
  set yields an equivalent aggregate (same count/range for SNARK; same
  encoding for OWF);
* **replay absorption** — duplicating inputs never changes the result.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness
from tests.strategies import signer_subsets

N = 60

# max_examples / deadline / derandomization inherit from the active
# Hypothesis profile (``ci`` by default; see tests/conftest.py).
_snark_settings = settings(
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def snark_deployment():
    rng = Randomness(321)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp = scheme.setup(N, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    message = b"property-message"
    signatures = {
        i: scheme.sign(pp, i, sks[i], message) for i in range(N)
    }
    return scheme, pp, vks, message, signatures


subsets = signer_subsets(N)


class TestSnarkInvariants:
    @_snark_settings
    @given(subset=subsets)
    def test_count_equals_distinct_contributions(self, snark_deployment,
                                                 subset):
        scheme, pp, vks, message, signatures = snark_deployment
        batch = [signatures[i] for i in subset]
        aggregate = scheme.aggregate(pp, vks, message, batch)
        assert aggregate.count == len(subset)
        assert aggregate.lo == min(subset)
        assert aggregate.hi == max(subset)

    @_snark_settings
    @given(subset=subsets)
    def test_threshold_exactness(self, snark_deployment, subset):
        scheme, pp, vks, message, signatures = snark_deployment
        batch = [signatures[i] for i in subset]
        aggregate = scheme.aggregate(pp, vks, message, batch)
        expected = len(subset) >= pp.acceptance_threshold
        assert scheme.verify(pp, vks, message, aggregate) == expected

    @_snark_settings
    @given(subset=subsets, data=st.data())
    def test_batching_invariance(self, snark_deployment, subset, data):
        scheme, pp, vks, message, signatures = snark_deployment
        indices = sorted(subset)
        split = data.draw(
            st.integers(min_value=0, max_value=len(indices))
        )
        left, right = indices[:split], indices[split:]
        flat = scheme.aggregate(
            pp, vks, message, [signatures[i] for i in indices]
        )
        parts = []
        if left:
            parts.append(
                scheme.aggregate(pp, vks, message,
                                 [signatures[i] for i in left])
            )
        if right:
            parts.append(
                scheme.aggregate(pp, vks, message,
                                 [signatures[i] for i in right])
            )
        recombined = scheme.aggregate(pp, vks, message, parts)
        assert recombined.count == flat.count == len(indices)
        assert (recombined.lo, recombined.hi) == (flat.lo, flat.hi)
        assert scheme.verify(pp, vks, message, recombined) == scheme.verify(
            pp, vks, message, flat
        )

    @_snark_settings
    @given(subset=subsets, copies=st.integers(min_value=2, max_value=4))
    def test_replay_absorption(self, snark_deployment, subset, copies):
        scheme, pp, vks, message, signatures = snark_deployment
        batch = [signatures[i] for i in subset] * copies
        aggregate = scheme.aggregate(pp, vks, message, batch)
        assert aggregate.count == len(subset)


@pytest.fixture(scope="module")
def owf_deployment():
    rng = Randomness(654)
    scheme = OwfSRDS(message_bits=32, sortition_factor=2)
    pp = scheme.setup(N, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    message = b"owf-property-message"
    signatures = {
        i: scheme.sign(pp, i, sks[i], message)
        for i in range(N)
        if sks[i] is not None
    }
    return scheme, pp, vks, message, signatures


class TestOwfInvariants:
    @_snark_settings
    @given(data=st.data())
    def test_count_and_threshold(self, owf_deployment, data):
        scheme, pp, vks, message, signatures = owf_deployment
        signer_ids = sorted(signatures)
        size = data.draw(
            st.integers(min_value=1, max_value=len(signer_ids))
        )
        subset = data.draw(
            st.sets(st.sampled_from(signer_ids), min_size=size,
                    max_size=size)
        )
        batch = [signatures[i] for i in subset]
        filtered = scheme.aggregate1(pp, vks, message, batch)
        assert len(filtered) == len(subset)
        aggregate = scheme.aggregate2(pp, message, filtered)
        expected = len(subset) >= pp.acceptance_threshold
        assert scheme.verify(pp, vks, message, aggregate) == expected

    @_snark_settings
    @given(data=st.data())
    def test_batching_yields_identical_encoding(self, owf_deployment, data):
        scheme, pp, vks, message, signatures = owf_deployment
        signer_ids = sorted(signatures)
        subset = data.draw(
            st.sets(st.sampled_from(signer_ids), min_size=2)
        )
        indices = sorted(subset)
        split = data.draw(
            st.integers(min_value=1, max_value=len(indices) - 1)
        )
        flat = scheme.aggregate(
            pp, vks, message, [signatures[i] for i in indices]
        )
        left = scheme.aggregate(
            pp, vks, message, [signatures[i] for i in indices[:split]]
        )
        right = scheme.aggregate(
            pp, vks, message, [signatures[i] for i in indices[split:]]
        )
        recombined = scheme.aggregate(pp, vks, message, [left, right])
        assert recombined.encode() == flat.encode()
