"""Concrete adversaries for the SRDS security experiments.

Robustness attackers try to make the root aggregate *fail* verification
(Fig. 1); forgery attackers try to make a signature on a *different*
message verify (Fig. 2).  Each class documents the attack idea and which
defense of the construction it probes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.snark import forge_random_proof
from repro.srds.base import SRDSSignature
from repro.srds.experiments import (
    ExperimentSetup,
    ForgeryAdversary,
    RobustnessAdversary,
)
from repro.utils.randomness import Randomness


class DroppingRobustnessAdversary(RobustnessAdversary):
    """Bad nodes drop their entire subtree; corrupt parties stay silent.

    The canonical robustness stressor: verification must still pass on
    the honest good-path contributions alone.
    """


class DecoyRobustnessAdversary(RobustnessAdversary):
    """Bad-path honest parties are told to sign a single common decoy.

    Probes whether a coordinated off-message block (up to the bad-path
    fraction) can starve the real message below threshold.
    """

    def choose_messages(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[bytes, Dict[int, bytes]]:
        return b"robustness-target", {}  # decoys default per party

    def corrupt_signatures(
        self,
        setup: ExperimentSetup,
        scheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Dict[int, SRDSSignature]:
        # Corrupt parties all sign a common competing message.
        competing = b"competing-message"
        signatures = {}
        for virtual_id in setup.corrupt_virtual:
            signature = scheme.sign(
                setup.pp, virtual_id, setup.signing_keys[virtual_id],
                competing,
            )
            if signature is not None:
                signatures[virtual_id] = signature
        return signatures


class GarbageRobustnessAdversary(RobustnessAdversary):
    """Bad nodes emit a syntactically valid but bogus aggregate; corrupt
    parties emit random byte noise as 'signatures'.

    Probes Aggregate1's filtering: junk must be dropped, not poison the
    honest aggregation above.
    """

    def corrupt_signatures(
        self,
        setup: ExperimentSetup,
        scheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Dict[int, SRDSSignature]:
        # Sign the *wrong* message with the real key: structurally valid,
        # semantically useless for m.
        signatures = {}
        for virtual_id in setup.corrupt_virtual:
            signature = scheme.sign(
                setup.pp, virtual_id, setup.signing_keys[virtual_id],
                b"garbage:" + message,
            )
            if signature is not None:
                signatures[virtual_id] = signature
        return signatures

    def bad_node_output(
        self,
        setup: ExperimentSetup,
        scheme,
        node,
        child_signatures: List[SRDSSignature],
        message: bytes,
        rng: Randomness,
    ) -> Optional[SRDSSignature]:
        # Re-emit one child unchanged (a lazy man-in-the-middle): the
        # parent must cope with a partial view.
        return child_signatures[0] if child_signatures else None


class ReplayRobustnessAdversary(RobustnessAdversary):
    """Bad nodes replay one child's aggregate *twice* upward.

    Probes the anti-double-counting defenses (index dedup for the OWF
    scheme, disjoint-range checks for the SNARK scheme): the duplicate
    must not inflate the count, but robustness must also survive.
    """

    def bad_node_output(
        self,
        setup: ExperimentSetup,
        scheme,
        node,
        child_signatures: List[SRDSSignature],
        message: bytes,
        rng: Randomness,
    ) -> Optional[SRDSSignature]:
        if not child_signatures:
            return None
        duplicated = list(child_signatures) + [child_signatures[0]]
        return scheme.aggregate(
            setup.pp, setup.verification_keys, message, duplicated
        )


class CoalitionForgeryAdversary(ForgeryAdversary):
    """The strongest generic forger: aim all available signatures at m'.

    Chooses S as large as the |S ∪ I| < n/3 budget allows, has everyone
    in S sign the same target m', adds the corrupt parties' signatures on
    m', aggregates — and loses exactly because a sub-n/3 coalition sits
    below the acceptance threshold.  This is the threshold-tightness
    attack; a variant with an *illegal* majority coalition (used in
    tests) succeeds, showing the experiment has teeth.
    """

    target_message = b"forged-target"

    def choose_targets(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[Set[int], bytes, Dict[int, bytes]]:
        num_virtual = setup.tree.num_virtual
        budget = max(0, (num_virtual - 1) // 3 - len(setup.corrupt_virtual))
        honest_virtual = [
            v for v in range(num_virtual) if v not in setup.corrupt_virtual
        ]
        chosen = set(honest_virtual[:budget])
        side_messages = {v: self.target_message for v in chosen}
        return chosen, b"legitimate-message", side_messages

    def forge(
        self,
        setup: ExperimentSetup,
        scheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Tuple[Optional[SRDSSignature], bytes]:
        arsenal: List[SRDSSignature] = []
        for virtual_id, signature in honest_signatures.items():
            arsenal.append(signature)
        for virtual_id in setup.corrupt_virtual:
            signature = scheme.sign(
                setup.pp, virtual_id, setup.signing_keys[virtual_id],
                self.target_message,
            )
            if signature is not None:
                arsenal.append(signature)
        if not arsenal:
            # Nothing to aggregate (e.g. no corruptions and an empty S):
            # the adversary abstains rather than feeding the scheme an
            # empty list it never promises to handle.
            return None, self.target_message
        forged = scheme.aggregate(
            setup.pp, setup.verification_keys, self.target_message, arsenal
        )
        return forged, self.target_message


class ReplayForgeryAdversary(ForgeryAdversary):
    """Tries to double-count its own coalition's signatures.

    Aggregates the coalition once, then aggregates the aggregate with
    itself (and with the loose base signatures again) hoping the count
    doubles past the threshold.  Defeated by index-dedup / disjoint-range
    checks — the ablation benchmark E7 shows this attack *succeeding*
    when those checks are disabled.
    """

    target_message = b"replayed-target"

    def choose_targets(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[Set[int], bytes, Dict[int, bytes]]:
        num_virtual = setup.tree.num_virtual
        budget = max(0, (num_virtual - 1) // 3 - len(setup.corrupt_virtual))
        honest_virtual = [
            v for v in range(num_virtual) if v not in setup.corrupt_virtual
        ]
        chosen = set(honest_virtual[:budget])
        return chosen, b"legitimate-message", {
            v: self.target_message for v in chosen
        }

    def forge(
        self,
        setup: ExperimentSetup,
        scheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Tuple[Optional[SRDSSignature], bytes]:
        coalition = list(honest_signatures.values())
        for virtual_id in setup.corrupt_virtual:
            signature = scheme.sign(
                setup.pp, virtual_id, setup.signing_keys[virtual_id],
                self.target_message,
            )
            if signature is not None:
                coalition.append(signature)
        if not coalition:
            # Empty coalition (no corruptions, empty S): abstain.
            return None, self.target_message
        once = scheme.aggregate(
            setup.pp, setup.verification_keys, self.target_message, coalition
        )
        if once is None:
            return None, self.target_message
        # Feed the aggregate back in together with the originals, twice.
        doubled = scheme.aggregate(
            setup.pp,
            setup.verification_keys,
            self.target_message,
            [once, once] + coalition,
        )
        return doubled, self.target_message


class RandomProofForgeryAdversary(ForgeryAdversary):
    """Emits a random proof tag for an inflated statement (SNARK scheme).

    Probes the argument system's soundness directly: succeeds only with
    probability 2^-256.  For the OWF scheme this adversary effectively
    plays random Lamport preimages and fails for the same reason.
    """

    target_message = b"random-proof-target"

    def choose_targets(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[Set[int], bytes, Dict[int, bytes]]:
        return set(), b"legitimate-message", {}

    def forge(
        self,
        setup: ExperimentSetup,
        scheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Tuple[Optional[SRDSSignature], bytes]:
        from repro.srds.snark_based import (
            SnarkAggregateSignature,
            SnarkSRDS,
            _cached_vk_tree,
        )
        from repro.crypto.hashing import hash_domain

        if not isinstance(scheme, SnarkSRDS):
            return None, self.target_message
        tree = _cached_vk_tree(setup.pp, setup.verification_keys)
        forged = SnarkAggregateSignature(
            count=setup.pp.num_parties,  # claim everyone signed
            lo=0,
            hi=setup.pp.num_parties - 1,
            digest=rng.random_bytes(32),
            vk_root=tree.root,
            message_tag=hash_domain("srds/message-tag", self.target_message),
            proof=forge_random_proof("srds/internal-sum", rng),
        )
        return forged, self.target_message
