"""The linter applied to this repository itself.

Two guarantees, mirroring the acceptance criteria:

* the committed tree is clean under the committed baseline (new
  invariant-breaking code cannot merge), and
* *seeding* a violation — the canonical example is a ``time.time()``
  call added to ``protocols/balanced_ba.py`` — flips the run to
  failing, demonstrated on a copy of the real module so the test never
  mutates the working tree.
"""

import shutil

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, default_config
from repro.lint.engine import run_lint
from repro.lint.model import Severity
from tests.lint.conftest import REPO_ROOT


def _repo_result():
    config = default_config(REPO_ROOT)
    return run_lint(config)


def test_repo_src_is_clean_under_committed_baseline():
    result = _repo_result()
    baseline = Baseline.load(
        default_config(REPO_ROOT).resolved_baseline_path()
    )
    outcome = baseline.apply(result.violations)
    assert outcome.new == [], "\n".join(v.format() for v in outcome.new)
    meta_errors = [
        v for v in result.meta_violations if v.severity is Severity.ERROR
    ]
    assert meta_errors == [], "\n".join(v.format() for v in meta_errors)
    assert result.files_checked > 50  # sanity: the walk saw the real tree


def test_committed_baseline_has_no_stale_entries():
    result = _repo_result()
    baseline = Baseline.load(
        default_config(REPO_ROOT).resolved_baseline_path()
    )
    outcome = baseline.apply(result.violations)
    assert outcome.stale == [], [entry.key for entry in outcome.stale]


def test_every_repo_suppression_carries_a_reason():
    result = _repo_result()
    assert result.suppressed, "expected the known wall-clock pragmas"
    for violation, pragma in result.suppressed:
        assert pragma.reason.strip(), violation.format()


def test_seeded_wall_clock_in_balanced_ba_fails_the_gate(tmp_path):
    src = REPO_ROOT / "src" / "repro" / "protocols" / "balanced_ba.py"
    dst = tmp_path / "src" / "repro" / "protocols" / "balanced_ba.py"
    dst.parent.mkdir(parents=True)
    shutil.copy(src, dst)

    config = LintConfig(root=tmp_path, paths=("src",))
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")

    # Pristine copy: clean.
    before = baseline.apply(run_lint(config).violations)
    assert before.new == []

    # Seed the violation the gate exists to catch.
    text = dst.read_text(encoding="utf-8")
    import_anchor = "from dataclasses import dataclass"
    def_anchor = "def run_balanced_ba("
    assert import_anchor in text and def_anchor in text
    seeded = text.replace(
        import_anchor, f"import time\n\n{import_anchor}", 1,
    ).replace(
        def_anchor,
        f"def _seeded_probe():\n    return time.time()\n\n\n{def_anchor}",
        1,
    )
    dst.write_text(seeded, encoding="utf-8")

    after = baseline.apply(run_lint(config).violations)
    assert len(after.new) == 1
    violation = after.new[0]
    assert violation.rule_id == "DET002"
    assert "time.time" in violation.message
    assert violation.symbol == "_seeded_probe"


def _meshwire_copy(tmp_path):
    src = REPO_ROOT / "src" / "repro" / "cluster" / "meshwire.py"
    dst = tmp_path / "src" / "repro" / "cluster" / "meshwire.py"
    dst.parent.mkdir(parents=True)
    shutil.copy(src, dst)
    return dst, LintConfig(root=tmp_path, paths=("src",))


def test_deleting_one_mesh_validation_guard_fails_tru001(tmp_path):
    # The acceptance mutation: drop the chunk_index range check from the
    # mesh chunk decoder and the trust-boundary gate must bite.
    dst, config = _meshwire_copy(tmp_path)
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert baseline.apply(run_lint(config).violations).new == []

    text = dst.read_text(encoding="utf-8")
    guard = (
        "    if chunk_index >= num_chunks:\n"
        "        raise SerializationError(\n"
        '            f"chunk index {chunk_index} out of range "\n'
        '            f"(num_chunks={num_chunks})"\n'
        "        )\n"
    )
    assert guard in text
    dst.write_text(text.replace(guard, "", 1), encoding="utf-8")

    after = baseline.apply(run_lint(config).violations)
    assert [v.rule_id for v in after.new] == ["TRU001"]
    assert "chunk_index" in after.new[0].message
    assert "escape" in after.new[0].message


def test_reordering_one_frame_pack_field_fails_sch001(tmp_path):
    # The acceptance mutation: swap sender/recipient in the mesh frame
    # encoder and the schema-drift gate must bite on both positions.
    dst, config = _meshwire_copy(tmp_path)
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert baseline.apply(run_lint(config).violations).new == []

    text = dst.read_text(encoding="utf-8")
    ordered = (
        "            _FRAME.pack(\n"
        "                frame.sender,\n"
        "                frame.recipient,\n"
    )
    swapped = (
        "            _FRAME.pack(\n"
        "                frame.recipient,\n"
        "                frame.sender,\n"
    )
    assert ordered in text
    dst.write_text(text.replace(ordered, swapped, 1), encoding="utf-8")

    after = baseline.apply(run_lint(config).violations)
    assert [v.rule_id for v in after.new] == ["SCH001", "SCH001"]
    messages = " | ".join(v.message for v in after.new)
    assert "field order drift" in messages
    assert "'recipient'" in messages and "'sender'" in messages


def test_fixture_tree_is_excluded_from_the_repo_run():
    # The deliberately-bad fixtures must never pollute the repo gate.
    result = _repo_result()
    assert all("fixtures" not in v.path for v in result.violations)
