"""Per-party communication accounting.

This is the measurement instrument for the paper's headline quantity:
*maximum bits communicated by any single party*.  Every wire transfer in
the simulator (and every charge made by a hybrid-model functionality) is
recorded here, per party, as sent/received bits, message counts, and the
set of distinct peers (communication locality, à la Boyle et al. [13]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import NetworkError


@dataclass
class PartyTally:
    """Mutable per-party counters."""

    bits_sent: int = 0
    bits_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    peers_sent_to: Set[int] = field(default_factory=set)
    peers_received_from: Set[int] = field(default_factory=set)

    @property
    def bits_total(self) -> int:
        """Bits communicated (sent + received)."""
        return self.bits_sent + self.bits_received

    @property
    def locality(self) -> int:
        """Number of distinct parties this party exchanged messages with."""
        return len(self.peers_sent_to | self.peers_received_from)


class CommunicationMetrics:
    """The ledger of all communication in one protocol execution.

    Charges come from two sources that are deliberately kept in one
    ledger: actual envelopes routed by the simulator, and analytic charges
    made by hybrid-model functionalities (whose realizations' costs are
    documented in §3.1 of the paper).  Benchmarks read the aggregate
    properties; tests can inspect individual tallies.
    """

    def __init__(self) -> None:
        self._tallies: Dict[int, PartyTally] = {}
        self._round_bits: List[int] = []
        self._current_round_bits = 0
        self.rounds_completed = 0

    def _tally(self, party_id: int) -> PartyTally:
        tally = self._tallies.get(party_id)
        if tally is None:
            tally = PartyTally()
            self._tallies[party_id] = tally
        return tally

    # -- recording -----------------------------------------------------------

    def record_message(self, sender: int, recipient: int, num_bits: int) -> None:
        """Charge one point-to-point message of ``num_bits`` bits."""
        if num_bits < 0:
            raise NetworkError("message size cannot be negative")
        sender_tally = self._tally(sender)
        recipient_tally = self._tally(recipient)
        sender_tally.bits_sent += num_bits
        sender_tally.messages_sent += 1
        sender_tally.peers_sent_to.add(recipient)
        recipient_tally.bits_received += num_bits
        recipient_tally.messages_received += 1
        recipient_tally.peers_received_from.add(sender)
        self._current_round_bits += num_bits

    def charge_functionality(
        self,
        participants: Iterable[int],
        bits_per_party: int,
        peers_per_party: int,
        rounds: int = 1,
        peer_pool: Optional[Iterable[int]] = None,
    ) -> None:
        """Charge a hybrid-model functionality invocation.

        Every participant is charged ``bits_per_party`` of communication
        (half sent, half received — so per-party ``bits_total`` grows by
        exactly ``bits_per_party``, while the single-counted aggregates
        ``total_bits`` and :attr:`round_bits` grow by the sent halves,
        exactly as they would if the same traffic had flowed through
        :meth:`record_message`) and its
        locality is widened by ``peers_per_party`` synthetic peer slots
        drawn from ``peer_pool`` (default: the other participants — pass
        an explicit pool when the charged traffic touches parties outside
        the participant list, e.g. a central hub serving everyone).

        The paper's protocol (Fig. 3) is stated in the (f_ae-comm, f_ba,
        f_ct, f_aggr-sig)-hybrid model with the realizations' costs pinned
        in §3.1; this method is how those costs enter the ledger when a
        functionality is executed functionally rather than as messages.
        """
        participant_list = list(participants)
        pool = list(peer_pool) if peer_pool is not None else participant_list
        for party_id in participant_list:
            tally = self._tally(party_id)
            tally.bits_sent += bits_per_party - bits_per_party // 2
            tally.bits_received += bits_per_party // 2
            tally.messages_sent += max(1, peers_per_party)
            tally.messages_received += max(1, peers_per_party)
            # Synthetic peers are drawn from the pool, clipped to the
            # requested locality widening.
            others = [p for p in pool if p != party_id]
            tally.peers_sent_to.update(others[:peers_per_party])
            tally.peers_received_from.update(others[:peers_per_party])
        # Round accounting follows the record_message convention: each
        # wire transfer is counted once, at the sender.  A participant's
        # sent half is ``bits_per_party - bits_per_party // 2``, so the
        # round total is the sum of sent halves — matching exactly what
        # :attr:`total_bits` (which sums ``bits_sent``) accrues from this
        # charge.  (Historically this line added the *full* per-party
        # charge, double-counting hybrid traffic relative to the wire
        # path.)
        self._current_round_bits += sum(
            bits_per_party - bits_per_party // 2 for _ in participant_list
        )
        self.rounds_completed += rounds

    def end_round(self) -> None:
        """Close the current round's tally (called by the simulator)."""
        self._round_bits.append(self._current_round_bits)
        self._current_round_bits = 0
        self.rounds_completed += 1

    # -- aggregate queries ----------------------------------------------------

    def tally_of(self, party_id: int) -> PartyTally:
        """The (possibly empty) tally of one party."""
        return self._tallies.get(party_id, PartyTally())

    @property
    def round_bits(self) -> List[int]:
        """Closed per-round wire-bit totals (record_message convention:
        every transfer counted once, at the sender)."""
        return list(self._round_bits)

    @property
    def current_round_bits(self) -> int:
        """Bits accrued in the still-open round."""
        return self._current_round_bits

    @property
    def party_ids(self) -> List[int]:
        """All parties that ever communicated."""
        return sorted(self._tallies)

    @property
    def total_bits(self) -> int:
        """Total bits over all parties (each message counted once)."""
        return sum(t.bits_sent for t in self._tallies.values())

    @property
    def max_bits_per_party(self) -> int:
        """The paper's headline metric: worst-case per-party communication."""
        if not self._tallies:
            return 0
        return max(t.bits_total for t in self._tallies.values())

    @property
    def mean_bits_per_party(self) -> float:
        """Average per-party communication (amortized metric)."""
        if not self._tallies:
            return 0.0
        return sum(t.bits_total for t in self._tallies.values()) / len(self._tallies)

    @property
    def max_locality(self) -> int:
        """Worst-case communication locality (distinct peers)."""
        if not self._tallies:
            return 0
        return max(t.locality for t in self._tallies.values())

    @property
    def max_messages_per_party(self) -> int:
        """Worst-case number of messages sent by one party."""
        if not self._tallies:
            return 0
        return max(t.messages_sent for t in self._tallies.values())

    def imbalance(self) -> float:
        """Ratio max/mean bits per party — 1.0 means perfectly balanced.

        This is the quantity behind the paper's title: protocols with
        amortized Õ(1) but Ω(n) "central parties" have imbalance Θ(n) /
        polylog, whereas the SRDS-based protocol stays polylog-flat.
        """
        mean = self.mean_bits_per_party
        if mean == 0:
            return 1.0
        return self.max_bits_per_party / mean

    def snapshot(self) -> "MetricsSnapshot":
        """An immutable summary for benchmark result tables."""
        return MetricsSnapshot(
            total_bits=self.total_bits,
            max_bits_per_party=self.max_bits_per_party,
            mean_bits_per_party=self.mean_bits_per_party,
            max_locality=self.max_locality,
            max_messages_per_party=self.max_messages_per_party,
            rounds=self.rounds_completed,
            num_parties=len(self._tallies),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable aggregate communication summary of one execution."""

    total_bits: int
    max_bits_per_party: int
    mean_bits_per_party: float
    max_locality: int
    max_messages_per_party: int
    rounds: int
    num_parties: int

    @property
    def imbalance(self) -> float:
        """max/mean per-party bits (1.0 = perfectly balanced)."""
        if self.mean_bits_per_party == 0:
            return 1.0
        return self.max_bits_per_party / self.mean_bits_per_party
