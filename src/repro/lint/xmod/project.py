"""Per-module fact extraction and the assembled :class:`ProjectUnit`.

The cross-module rules never touch raw ASTs: each file is distilled —
once, cacheably — into a :class:`ModuleFacts` record containing only
JSON-serializable data:

* every function/method with its **calls** (callee dotted names resolved
  through the module's own imports — the only resolution that is safe to
  do per-file and therefore safe to cache),
* an **origin DAG** per function: each call site is a node carrying the
  taint origins of its arguments/receiver, where an origin is either a
  parameter (``p0``) or another call's result (``c<line>:<col>``).  The
  TRU001 rule replays policy (which callees are sources, sanitizers,
  sinks) over this DAG without re-walking the AST,
* **guard events** (names tested by an ``if``/``while``/``assert`` whose
  body raises, with the raised exception names) — the linter's notion of
  a validation/narrowing point,
* **struct codec uses** (``pack``/``unpack`` calls with per-position
  identifiers) and module-level ``struct.Struct`` constants for SCH001,
* **class inventories** (lock attributes, shared container attributes,
  thread/task entry points, container mutations with the locks held at
  each site) for ASY002.

Extraction is deliberately *policy-free*: nothing in this module knows
what a taint source or a lock rule is.  That keeps the cache valid
across rule-knob changes (the cache key fingerprints config anyway) and
keeps every rule testable against hand-built facts.

The dataflow model is flow-ordered but not path-sensitive: statements
are walked in source order, branch bodies sequentially, and a guard
event records the origins a name held *when guarded*.  Rebinding a name
replaces its origins (so ``rows = validate(rows)`` starts a fresh,
sanitizable origin).  This is the standard advisory-linter trade-off:
false negatives are possible in pathological control flow, silent
false positives are not — every report points at a concrete call site.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.lint.model import ModuleUnit

#: Lock-ish constructors recognized for ASY002 class inventories.
_LOCK_TYPES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

#: Container constructors whose instances count as shared mutable state.
_CONTAINER_TYPES = {
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
}

#: Method names that mutate a container in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "appendleft",
}

#: Method names that absorb their arguments into the receiver (the
#: receiver's taint origins grow by the argument's).
_ABSORB_METHODS = {"append", "extend", "add", "insert", "update",
                   "appendleft", "setdefault"}

_STRUCT_METHODS = {"pack", "pack_into", "unpack", "unpack_from",
                   "iter_unpack"}


def module_name_for(rel: str) -> str:
    """Dotted module name for a root-relative posix path.

    ``src/repro/lint/engine.py`` -> ``repro.lint.engine``;
    ``pkg/sub/__init__.py`` -> ``pkg.sub``.  A leading ``src/`` segment
    is dropped so names match the import system's view of the tree.
    """
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def content_hash(source: str) -> str:
    """Stable content key for the facts cache."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# -- fact records -------------------------------------------------------------


@dataclass
class CallNode:
    """One call site, as the taint DAG and call graph see it."""

    id: str                      #: ``"<line>:<col>"`` — unique per function
    callee: str                  #: import-resolved dotted name, ``self.m``,
    #: ``<local>.m`` for calls on locals, or a bare name for unresolved ids
    line: int
    col: int
    arg_origins: List[List[str]] = field(default_factory=list)
    arg_roots: List[Optional[str]] = field(default_factory=list)
    arg_idents: List[Optional[str]] = field(default_factory=list)
    arg_kinds: List[str] = field(default_factory=list)
    arg_lines: List[int] = field(default_factory=list)
    kw_origins: Dict[str, List[str]] = field(default_factory=dict)
    kw_roots: Dict[str, Optional[str]] = field(default_factory=dict)
    kw_idents: Dict[str, Optional[str]] = field(default_factory=dict)
    kw_lines: Dict[str, int] = field(default_factory=dict)
    receiver_origins: List[str] = field(default_factory=list)
    receiver_root: Optional[str] = None
    assigned_to: List[str] = field(default_factory=list)
    try_handlers: List[str] = field(default_factory=list)


@dataclass
class GuardFact:
    """A name tested by a raising (or asserting) conditional."""

    name: str
    origins: List[str]
    raised: List[str]
    line: int


@dataclass
class ReturnFact:
    origins: List[str]
    roots: List[str]
    line: int


@dataclass
class UnpackFact:
    """One ``Struct.unpack*`` binding inside a function."""

    fields: List[str]
    callee: str
    line: int


@dataclass
class FunctionFacts:
    qualname: str
    name: str
    line: int
    end_line: int
    is_async: bool
    params: List[str]
    class_name: Optional[str]
    calls: List[CallNode] = field(default_factory=list)
    guards: List[GuardFact] = field(default_factory=list)
    raises: List[str] = field(default_factory=list)
    returns: List[ReturnFact] = field(default_factory=list)
    unpacks: List[UnpackFact] = field(default_factory=list)
    nested_raises: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class MutationFact:
    attr: str
    method: str
    line: int
    locks: List[str]
    kind: str  # "subscript" | "method:<name>" | "rebind" | "del"


@dataclass
class ClassFacts:
    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    is_dataclass: bool = False
    fields: List[Tuple[str, int]] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    lock_attrs: List[str] = field(default_factory=list)
    container_attrs: List[str] = field(default_factory=list)
    thread_entries: List[str] = field(default_factory=list)
    task_entries: List[str] = field(default_factory=list)
    mutations: List[MutationFact] = field(default_factory=list)
    self_reads: Dict[str, List[str]] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    """Everything the cross-module rules need from one file."""

    module: str
    rel: str
    sha: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionFacts] = field(default_factory=list)
    classes: List[ClassFacts] = field(default_factory=list)
    struct_consts: Dict[str, str] = field(default_factory=dict)
    toplevel: List[str] = field(default_factory=list)

    # -- (de)serialization for the cache ------------------------------------

    def to_json(self) -> Dict[str, Any]:
        def call(c: CallNode) -> Dict[str, Any]:
            return {
                "id": c.id, "callee": c.callee, "line": c.line,
                "col": c.col, "ao": c.arg_origins, "ar": c.arg_roots,
                "ai": c.arg_idents, "ak": c.arg_kinds, "al": c.arg_lines,
                "ko": c.kw_origins, "kr": c.kw_roots, "ki": c.kw_idents,
                "kl": c.kw_lines, "ro": c.receiver_origins,
                "rr": c.receiver_root, "as": c.assigned_to,
                "th": c.try_handlers,
            }

        return {
            "module": self.module, "rel": self.rel, "sha": self.sha,
            "imports": self.imports,
            "toplevel": self.toplevel,
            "struct_consts": self.struct_consts,
            "functions": [
                {
                    "qualname": f.qualname, "name": f.name, "line": f.line,
                    "end_line": f.end_line, "is_async": f.is_async,
                    "params": f.params, "class_name": f.class_name,
                    "calls": [call(c) for c in f.calls],
                    "guards": [
                        {"name": g.name, "origins": g.origins,
                         "raised": g.raised, "line": g.line}
                        for g in f.guards
                    ],
                    "raises": f.raises,
                    "returns": [
                        {"origins": r.origins, "roots": r.roots,
                         "line": r.line}
                        for r in f.returns
                    ],
                    "unpacks": [
                        {"fields": u.fields, "callee": u.callee,
                         "line": u.line}
                        for u in f.unpacks
                    ],
                    "nested_raises": f.nested_raises,
                }
                for f in self.functions
            ],
            "classes": [
                {
                    "name": k.name, "line": k.line, "bases": k.bases,
                    "is_dataclass": k.is_dataclass,
                    "fields": [[n, ln] for n, ln in k.fields],
                    "methods": k.methods,
                    "lock_attrs": k.lock_attrs,
                    "container_attrs": k.container_attrs,
                    "thread_entries": k.thread_entries,
                    "task_entries": k.task_entries,
                    "mutations": [
                        {"attr": m.attr, "method": m.method,
                         "line": m.line, "locks": m.locks, "kind": m.kind}
                        for m in k.mutations
                    ],
                    "self_reads": k.self_reads,
                }
                for k in self.classes
            ],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "ModuleFacts":
        def call(raw: Dict[str, Any]) -> CallNode:
            return CallNode(
                id=raw["id"], callee=raw["callee"], line=raw["line"],
                col=raw["col"], arg_origins=raw["ao"], arg_roots=raw["ar"],
                arg_idents=raw["ai"], arg_kinds=raw["ak"],
                arg_lines=raw["al"], kw_origins=raw["ko"],
                kw_roots=raw["kr"], kw_idents=raw["ki"],
                kw_lines=raw["kl"], receiver_origins=raw["ro"],
                receiver_root=raw["rr"], assigned_to=raw["as"],
                try_handlers=raw["th"],
            )

        return cls(
            module=payload["module"], rel=payload["rel"],
            sha=payload["sha"], imports=dict(payload["imports"]),
            toplevel=list(payload["toplevel"]),
            struct_consts=dict(payload["struct_consts"]),
            functions=[
                FunctionFacts(
                    qualname=f["qualname"], name=f["name"], line=f["line"],
                    end_line=f["end_line"], is_async=f["is_async"],
                    params=f["params"], class_name=f["class_name"],
                    calls=[call(c) for c in f["calls"]],
                    guards=[
                        GuardFact(name=g["name"], origins=g["origins"],
                                  raised=g["raised"], line=g["line"])
                        for g in f["guards"]
                    ],
                    raises=f["raises"],
                    returns=[
                        ReturnFact(origins=r["origins"], roots=r["roots"],
                                   line=r["line"])
                        for r in f["returns"]
                    ],
                    unpacks=[
                        UnpackFact(fields=u["fields"], callee=u["callee"],
                                   line=u["line"])
                        for u in f["unpacks"]
                    ],
                    nested_raises=dict(f["nested_raises"]),
                )
                for f in payload["functions"]
            ],
            classes=[
                ClassFacts(
                    name=k["name"], line=k["line"], bases=k["bases"],
                    is_dataclass=k["is_dataclass"],
                    fields=[(n, ln) for n, ln in k["fields"]],
                    methods=k["methods"],
                    lock_attrs=k["lock_attrs"],
                    container_attrs=k["container_attrs"],
                    thread_entries=k["thread_entries"],
                    task_entries=k["task_entries"],
                    mutations=[
                        MutationFact(attr=m["attr"], method=m["method"],
                                     line=m["line"], locks=m["locks"],
                                     kind=m["kind"])
                        for m in k["mutations"]
                    ],
                    self_reads=dict(k["self_reads"]),
                )
                for k in payload["classes"]
            ],
        )


# -- extraction ---------------------------------------------------------------


def _dotted(node: ast.AST) -> Optional[Tuple[str, List[str]]]:
    """(root name, attribute chain) of a Name/Attribute expression."""
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    return current.id, list(reversed(chain))


def _exception_names(node: Optional[ast.expr]) -> List[str]:
    """Exception identifiers named by a handler type or raise expr."""
    if node is None:
        return []
    names: List[str] = []
    targets: List[ast.expr] = (
        list(node.elts) if isinstance(node, ast.Tuple) else [node]
    )
    for target in targets:
        if isinstance(target, ast.Call):
            target = target.func
        dotted = _dotted(target)
        if dotted is not None:
            root, chain = dotted
            names.append(chain[-1] if chain else root)
    return names


def _arg_shape(node: ast.expr) -> Tuple[Optional[str], Optional[str], str]:
    """(root name, trailing identifier, kind) of one argument expression.

    The *root* feeds taint lookups (``frame.sender`` taints via
    ``frame``); the *identifier* feeds SCH001's positional field-name
    pairing (``frame.sender`` pairs against an unpack target named
    ``sender``); *kind* lets SCH001 skip positions that are constants or
    computed expressions.
    """
    if isinstance(node, ast.Starred):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, node.id, "name"
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        root = dotted[0] if dotted else None
        return root, node.attr, "attr"
    if isinstance(node, ast.Constant):
        return None, None, "const"
    if isinstance(node, ast.Call):
        return None, None, "call"
    return None, None, "expr"


class _FunctionExtractor:
    """Walks one function body in source order, building its facts."""

    def __init__(
        self,
        facts: FunctionFacts,
        resolver: "_ModuleResolver",
        class_ctx: Optional[ClassFacts],
    ) -> None:
        self.facts = facts
        self.resolver = resolver
        self.class_ctx = class_ctx
        self.env: Dict[str, FrozenSet[str]] = {
            param: frozenset({f"p{index}"})
            for index, param in enumerate(facts.params)
        }
        self.try_stack: List[List[str]] = []
        self.lock_stack: List[str] = []

    # -- expression origins -------------------------------------------------

    def origins_of(self, node: ast.expr) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            dotted = _dotted(node if isinstance(node, ast.Attribute)
                             else node.value)
            if dotted is not None:
                return self.env.get(dotted[0], frozenset())
            inner = node.value
            return self.origins_of(inner) if isinstance(
                inner, ast.expr) else frozenset()
        if isinstance(node, ast.Call):
            call = self.record_call(node)
            return frozenset({call.id})
        if isinstance(node, ast.Await):
            return self.origins_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            merged: FrozenSet[str] = frozenset()
            for element in node.elts:
                merged |= self.origins_of(element)
            return merged
        if isinstance(node, ast.Dict):
            merged = frozenset()
            for value in list(node.keys) + list(node.values):
                if value is not None:
                    merged |= self.origins_of(value)
            return merged
        if isinstance(node, ast.BoolOp):
            merged = frozenset()
            for value in node.values:
                merged |= self.origins_of(value)
            return merged
        if isinstance(node, ast.BinOp):
            return self.origins_of(node.left) | self.origins_of(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.origins_of(node.operand)
        if isinstance(node, ast.Compare):
            merged = self.origins_of(node.left)
            for comparator in node.comparators:
                merged |= self.origins_of(comparator)
            return merged
        if isinstance(node, ast.IfExp):
            return self.origins_of(node.body) | self.origins_of(node.orelse)
        if isinstance(node, ast.Starred):
            return self.origins_of(node.value)
        if isinstance(node, ast.JoinedStr):
            merged = frozenset()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    merged |= self.origins_of(value.value)
            return merged
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            merged = frozenset()
            for generator in node.generators:
                merged |= self.origins_of(generator.iter)
            return merged
        return frozenset()

    # -- call recording ------------------------------------------------------

    def record_call(self, node: ast.Call) -> CallNode:
        callee, receiver_root = self.resolver.callee_of(
            node.func, self.class_ctx
        )
        call = CallNode(
            id=f"{node.lineno}:{node.col_offset}",
            callee=callee,
            line=node.lineno,
            col=node.col_offset,
            receiver_root=receiver_root,
            try_handlers=sorted(
                {name for frame in self.try_stack for name in frame}
            ),
        )
        if receiver_root is not None:
            call.receiver_origins = sorted(
                self.env.get(receiver_root, frozenset())
            )
        for arg in node.args:
            root, ident, kind = _arg_shape(arg)
            call.arg_roots.append(root)
            call.arg_idents.append(ident)
            call.arg_kinds.append(kind)
            call.arg_lines.append(getattr(arg, "lineno", node.lineno))
            call.arg_origins.append(sorted(self.origins_of(arg)))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            root, ident, _kind = _arg_shape(keyword.value)
            call.kw_roots[keyword.arg] = root
            call.kw_idents[keyword.arg] = ident
            call.kw_lines[keyword.arg] = getattr(
                keyword.value, "lineno", node.lineno
            )
            call.kw_origins[keyword.arg] = sorted(
                self.origins_of(keyword.value)
            )
        # A mutator method grows its receiver's origins by what it
        # absorbed (`frames.append(Frame(...))` -> `frames` carries the
        # constructor's origins, so `return frames` reports them).
        method = callee.rsplit(".", 1)[-1]
        if (
            receiver_root is not None
            and method in _ABSORB_METHODS
        ):
            absorbed: FrozenSet[str] = frozenset({call.id})
            for origins in call.arg_origins:
                absorbed |= frozenset(origins)
            self.env[receiver_root] = (
                self.env.get(receiver_root, frozenset()) | absorbed
            )
        self.facts.calls.append(call)
        # Mutation bookkeeping must happen here, while the enclosing
        # `with` contexts are still on the lock stack.
        self.record_method_mutation(call)
        return call

    # -- statement walk ------------------------------------------------------

    def walk(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self.statement(stmt)

    def statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raised = [
                name
                for node in ast.walk(stmt)
                if isinstance(node, ast.Raise)
                for name in _exception_names(node.exc)
            ]
            self.facts.nested_raises[stmt.name] = raised
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assignment(stmt)
            return
        if isinstance(stmt, ast.Expr):
            self.origins_of(stmt.value)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                origins = self.origins_of(stmt.value)
                roots = [
                    node.id for node in ast.walk(stmt.value)
                    if isinstance(node, ast.Name)
                ]
                self.facts.returns.append(ReturnFact(
                    origins=sorted(origins), roots=sorted(set(roots)),
                    line=stmt.lineno,
                ))
            return
        if isinstance(stmt, ast.Raise):
            for name in _exception_names(stmt.exc):
                if name not in self.facts.raises:
                    self.facts.raises.append(name)
            if stmt.exc is not None:
                self.origins_of(stmt.exc)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._guarded_test(stmt.test, stmt.body)
            self.origins_of(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, ast.Assert):
            self._record_guards(stmt.test, ["AssertionError"],
                                stmt.lineno)
            self.origins_of(stmt.test)
            return
        if isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            origins = self.origins_of(stmt.iter)
            self._bind_target(stmt.target, origins)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                self.origins_of(item.context_expr)
                lock = self._lock_label(item.context_expr)
                if lock is not None:
                    self.lock_stack.append(lock)
                    pushed += 1
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars,
                        self.origins_of(item.context_expr),
                    )
            self.walk(stmt.body)
            for _ in range(pushed):
                self.lock_stack.pop()
            return
        if isinstance(stmt, ast.Try) or isinstance(
            stmt, getattr(ast, "TryStar", ())
        ):
            handler_names = [
                name
                for handler in stmt.handlers
                for name in _exception_names(handler.type)
            ]
            self.try_stack.append(handler_names)
            self.walk(stmt.body)
            self.try_stack.pop()
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_mutation_target(target, "del")
            return
        # Remaining statements (pass, imports, global, ...) carry no flow.

    def _assignment(self, stmt: ast.stmt) -> None:
        value: Optional[ast.expr]
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            value, targets = stmt.value, [stmt.target]
        else:  # AugAssign
            assert isinstance(stmt, ast.AugAssign)
            value, targets = stmt.value, [stmt.target]
        origins = self.origins_of(value) if value is not None else frozenset()
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            origins |= self.env.get(stmt.target.id, frozenset())
        if (
            value is not None
            and isinstance(value, ast.Call)
            and self.facts.calls
        ):
            call = self.facts.calls[-1]
            if call.id == f"{value.lineno}:{value.col_offset}":
                call.assigned_to = [
                    name for target in targets
                    for name in self._target_names(target)
                ]
                self._maybe_unpack(call, targets, value.lineno)
        elif value is not None and isinstance(value, ast.Name):
            # Two-step pattern: `header = S.unpack_from(...)` then
            # `(a, b, c) = header` — still one unpack binding.
            calls_by_id = {c.id: c for c in self.facts.calls}
            held = [
                calls_by_id[origin] for origin in origins
                if origin in calls_by_id
            ]
            if len(held) == 1:
                self._maybe_unpack(held[0], targets, stmt.lineno)
        for target in targets:
            self._bind_target(target, origins)
            self._record_mutation_target(
                target,
                "subscript" if isinstance(target, ast.Subscript)
                else "rebind",
            )

    def _maybe_unpack(self, call: CallNode, targets: List[ast.expr],
                      line: int) -> None:
        """Record a ``Struct.unpack*`` binding with tuple targets."""
        method = call.callee.rsplit(".", 1)[-1]
        if method not in ("unpack", "unpack_from"):
            return
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Tuple):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
                    elif isinstance(element, ast.Starred) and isinstance(
                        element.value, ast.Name
                    ):
                        names.append(element.value.id)
        if names:
            self.facts.unpacks.append(UnpackFact(
                fields=names, callee=call.callee, line=line,
            ))

    def _target_names(self, target: ast.expr) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in target.elts:
                names.extend(self._target_names(element))
            return names
        if isinstance(target, ast.Starred):
            return self._target_names(target.value)
        return []

    def _bind_target(self, target: ast.expr,
                     origins: FrozenSet[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = origins
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, origins)
            return
        if isinstance(target, ast.Starred):
            self._bind_target(target.value, origins)
            return
        if isinstance(target, ast.Subscript):
            dotted = _dotted(target.value) if isinstance(
                target.value, (ast.Name, ast.Attribute)) else None
            if dotted is not None and not dotted[1]:
                root = dotted[0]
                self.env[root] = self.env.get(root, frozenset()) | origins

    # -- guards --------------------------------------------------------------

    def _guarded_test(self, test: ast.expr,
                      body: List[ast.stmt]) -> None:
        # Only raises at the immediate body level count: `if bad:
        # raise X` is a guard on the tested names; a raise nested in a
        # deeper conditional is guarding something else.
        raised = [
            name
            for node in body
            if isinstance(node, ast.Raise)
            for name in _exception_names(node.exc)
        ]
        if raised:
            self._record_guards(test, raised, test.lineno)

    def _record_guards(self, test: ast.expr, raised: List[str],
                       line: int) -> None:
        for node in ast.walk(test):
            if isinstance(node, ast.Name):
                self.facts.guards.append(GuardFact(
                    name=node.id,
                    origins=sorted(self.env.get(node.id, frozenset())),
                    raised=sorted(set(raised)),
                    line=line,
                ))

    # -- ASY002 hooks --------------------------------------------------------

    def _lock_label(self, expr: ast.expr) -> Optional[str]:
        """The ``self``-rooted lock a with-statement holds, if any.

        ``with self._cond:`` labels ``_cond``; ``with
        self._peer_lock(i):`` labels ``_peer_lock()`` (a lock-returning
        accessor, recognized by name).  Non-``self`` contexts are not
        lock evidence for the *class's* shared state.
        """
        call_suffix = ""
        if isinstance(expr, ast.Call):
            expr, call_suffix = expr.func, "()"
        dotted = _dotted(expr)
        if dotted is None:
            return None
        root, chain = dotted
        if root != "self" or len(chain) != 1:
            return None
        return chain[0] + call_suffix

    def _record_mutation_target(self, target: ast.expr, kind: str) -> None:
        if self.class_ctx is None or self.facts.name == "__init__":
            return
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._record_mutation_target(element, kind)
            return
        dotted = _dotted(node) if isinstance(
            node, (ast.Name, ast.Attribute)) else None
        if dotted is None:
            return
        root, chain = dotted
        if root != "self" or len(chain) != 1:
            return
        self.class_ctx.mutations.append(MutationFact(
            attr=chain[0],
            method=self.facts.name,
            line=target.lineno,
            locks=list(self.lock_stack),
            kind=kind,
        ))

    def record_method_mutation(self, call: CallNode) -> None:
        """Register ``self.attr.mutator(...)`` calls for ASY002."""
        if self.class_ctx is None or self.facts.name == "__init__":
            return
        method = call.callee.rsplit(".", 1)[-1]
        if method not in MUTATOR_METHODS:
            return
        if call.receiver_root != "self":
            return
        # callee looks like "self.<attr>.<mutator>"
        parts = call.callee.split(".")
        if len(parts) != 3 or parts[0] != "self":
            return
        self.class_ctx.mutations.append(MutationFact(
            attr=parts[1],
            method=self.facts.name,
            line=call.line,
            locks=list(self.lock_stack),
            kind=f"method:{method}",
        ))


class _ModuleResolver:
    """Per-module name resolution (imports + top-level definitions)."""

    def __init__(self, module: str, imports: Dict[str, str],
                 toplevel: Dict[str, str]) -> None:
        self.module = module
        self.imports = imports
        self.toplevel = toplevel  # name -> "func" | "class" | "const"

    def callee_of(
        self, func: ast.expr, class_ctx: Optional[ClassFacts]
    ) -> Tuple[str, Optional[str]]:
        """(callee string, receiver root) for a call's func expression."""
        dotted = _dotted(func)
        if dotted is None:
            return "<expr>", None
        root, chain = dotted
        if not chain:
            if root in self.toplevel:
                return f"{self.module}.{root}", None
            if root in self.imports:
                return self.imports[root], None
            return root, None
        if root == "self":
            return "self." + ".".join(chain), "self"
        if root in self.imports:
            return self.imports[root] + "." + ".".join(chain), None
        if root in self.toplevel:
            return f"{self.module}.{root}." + ".".join(chain), None
        return root + "." + ".".join(chain), root


def _resolve_base(base: ast.expr, imports: Dict[str, str],
                  module: str, toplevel: Dict[str, str]) -> Optional[str]:
    dotted = _dotted(base)
    if dotted is None:
        return None
    root, chain = dotted
    if not chain:
        if root in toplevel:
            return f"{module}.{root}"
        return imports.get(root, root)
    if root in imports:
        return imports[root] + "." + ".".join(chain)
    return root + "." + ".".join(chain)


def _is_dataclass_class(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        dotted = _dotted(target)
        if dotted and (dotted[1][-1:] == ["dataclass"]
                       or dotted[0] == "dataclass"):
            return True
    return False


def extract_facts(module: ModuleUnit) -> ModuleFacts:
    """Distill one parsed module into its cacheable facts."""
    modname = module_name_for(module.rel)
    imports = dict(module.import_map)
    toplevel: Dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            toplevel[node.name] = "func"
        elif isinstance(node, ast.ClassDef):
            toplevel[node.name] = "class"
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    toplevel[target.id] = "const"
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            toplevel[node.target.id] = "const"

    facts = ModuleFacts(
        module=modname, rel=module.rel,
        sha=content_hash(module.source),
        imports=imports, toplevel=sorted(toplevel),
    )
    resolver = _ModuleResolver(modname, imports, toplevel)

    # Module-level struct.Struct constants.
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        callee, _ = resolver.callee_of(value.func, None)
        if callee in ("struct.Struct",) and value.args and isinstance(
            value.args[0], ast.Constant
        ) and isinstance(value.args[0].value, str):
            facts.struct_consts[target.id] = value.args[0].value

    def extract_function(
        node: ast.stmt, class_ctx: Optional[ClassFacts],
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = [arg.arg for arg in (
            list(node.args.posonlyargs) + list(node.args.args)
        )]
        if class_ctx is not None and params and params[0] in (
            "self", "cls",
        ):
            params = params[1:]
        qualname = (
            f"{class_ctx.name}.{node.name}" if class_ctx else node.name
        )
        function = FunctionFacts(
            qualname=qualname,
            name=node.name,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno) or node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            params=params,
            class_name=class_ctx.name if class_ctx else None,
        )
        extractor = _FunctionExtractor(function, resolver, class_ctx)
        extractor.walk(node.body)
        facts.functions.append(function)

    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, None)
        elif isinstance(node, ast.ClassDef):
            klass = ClassFacts(
                name=node.name, line=node.lineno,
                bases=[
                    base_name
                    for base in node.bases
                    if (base_name := _resolve_base(
                        base, imports, modname, toplevel)) is not None
                ],
                is_dataclass=_is_dataclass_class(node),
            )
            for member in node.body:
                if isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    klass.fields.append(
                        (member.target.id, member.lineno)
                    )
                elif isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    klass.methods.append(member.name)
            facts.classes.append(klass)
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    extract_function(member, klass)
            _inventory_class(klass, facts, node)
    return facts


def _inventory_class(klass: ClassFacts, facts: ModuleFacts,
                     node: ast.ClassDef) -> None:
    """Fill the ASY002/SCH001 inventories from the class's functions."""
    for member in node.body:
        if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if member.name == "__init__":
            for stmt in ast.walk(member):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                value = stmt.value
                for target in targets:
                    dotted = _dotted(target) if isinstance(
                        target, ast.Attribute) else None
                    if (
                        dotted is None or dotted[0] != "self"
                        or len(dotted[1]) != 1
                    ):
                        continue
                    attr = dotted[1][0]
                    label = _constructor_label(value, facts)
                    if label in _LOCK_TYPES:
                        if attr not in klass.lock_attrs:
                            klass.lock_attrs.append(attr)
                    elif label in _CONTAINER_TYPES or isinstance(
                        value, (ast.Dict, ast.List, ast.Set)
                    ):
                        if attr not in klass.container_attrs:
                            klass.container_attrs.append(attr)
        reads: List[str] = []
        for sub in ast.walk(member):
            if isinstance(sub, ast.Attribute) and isinstance(
                sub.value, ast.Name
            ) and sub.value.id == "self":
                if sub.attr not in reads:
                    reads.append(sub.attr)
            if isinstance(sub, ast.Call):
                _entry_points(sub, klass, facts)
        klass.self_reads[member.name] = reads


def _constructor_label(value: Optional[ast.expr],
                       facts: ModuleFacts) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    dotted = _dotted(value.func)
    if dotted is None:
        return None
    root, chain = dotted
    origin = facts.imports.get(root, root)
    return ".".join([origin] + chain) if chain else origin


def _entry_points(call: ast.Call, klass: ClassFacts,
                  facts: ModuleFacts) -> None:
    """Record ``self.<m>`` handed to threads/executors/task spawners."""
    dotted = _dotted(call.func)
    if dotted is None:
        return
    root, chain = dotted
    origin = facts.imports.get(root, root)
    full = ".".join([origin] + chain) if chain else origin
    tail = chain[-1] if chain else origin

    def self_method(expr: ast.expr) -> Optional[str]:
        d = _dotted(expr)
        if d is not None and d[0] == "self" and len(d[1]) == 1:
            return d[1][0]
        if isinstance(expr, ast.Call):
            return self_method(expr.func)
        return None

    if full in ("threading.Thread",):
        for keyword in call.keywords:
            if keyword.arg == "target":
                method = self_method(keyword.value)
                if method and method not in klass.thread_entries:
                    klass.thread_entries.append(method)
    elif tail in ("submit", "run_in_executor"):
        # submit(fn, *args) / run_in_executor(executor, fn, *args):
        # only the callable position is an entry point.
        position = 0 if tail == "submit" else 1
        if len(call.args) > position:
            method = self_method(call.args[position])
            if method and method not in klass.thread_entries:
                klass.thread_entries.append(method)
    elif tail in ("create_task", "ensure_future"):
        for arg in call.args:
            method = self_method(arg)
            if method and method not in klass.task_entries:
                klass.task_entries.append(method)


# -- the project view ---------------------------------------------------------


class ProjectUnit:
    """Every module's facts plus the cross-module indexes rules query."""

    def __init__(self, facts: Dict[str, ModuleFacts],
                 reanalyzed: Optional[List[str]] = None) -> None:
        self.facts = facts
        #: Module names whose facts were (re)extracted this run — the
        #: cache-effectiveness observable the invalidation tests pin.
        self.reanalyzed = sorted(reanalyzed) if reanalyzed is not None \
            else sorted(facts)
        self.functions: Dict[str, Tuple[str, FunctionFacts]] = {}
        self.classes: Dict[str, Tuple[str, ClassFacts]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.struct_consts: Dict[str, str] = {}
        for modname, mod in facts.items():
            for function in mod.functions:
                qualified = f"{modname}.{function.qualname}"
                self.functions[qualified] = (modname, function)
                if function.class_name is not None:
                    self.methods_by_name.setdefault(
                        function.name, []
                    ).append(qualified)
            for klass in mod.classes:
                self.classes[f"{modname}.{klass.name}"] = (modname, klass)
            for const, fmt in mod.struct_consts.items():
                self.struct_consts[f"{modname}.{const}"] = fmt

    @classmethod
    def from_modules(cls, modules: Iterable[ModuleUnit]) -> "ProjectUnit":
        return cls({
            (extracted := extract_facts(module)).module: extracted
            for module in modules
        })

    def module_rel(self, modname: str) -> str:
        return self.facts[modname].rel

    def function(self, qualified: str) -> Optional[FunctionFacts]:
        entry = self.functions.get(qualified)
        return entry[1] if entry else None

    def resolve_call(
        self, modname: str, function: FunctionFacts, call: CallNode,
    ) -> Optional[str]:
        """Fully-qualified callee of a call fact, when determinable.

        Handles ``self.m`` through the class's base chain and falls back
        to unique-method-name resolution for calls on untyped locals
        (``message.payload()`` resolves iff exactly one project class
        defines ``payload``).
        """
        callee = call.callee
        if callee.startswith("self."):
            chain = callee.split(".")[1:]
            if len(chain) == 1 and function.class_name is not None:
                owner = f"{modname}.{function.class_name}"
                resolved = self._resolve_method(owner, chain[0])
                if resolved is not None:
                    return resolved
            return None
        if callee in self.functions:
            return callee
        if "." in callee:
            # A dotted name may already be fully qualified (imported
            # function/classmethod) or a call on a local object.
            if callee in self.struct_consts:
                return callee
            head, tail = callee.rsplit(".", 1)
            if head in self.classes:
                return self._resolve_method(head, tail) or callee
            if call.receiver_root is not None:
                candidates = self.methods_by_name.get(tail, [])
                if len(candidates) == 1:
                    return candidates[0]
            return callee if callee in self.functions else None
        return None

    def _resolve_method(self, owner: str, method: str,
                        depth: int = 0) -> Optional[str]:
        if depth > 8 or owner not in self.classes:
            return None
        modname, klass = self.classes[owner]
        if method in klass.methods:
            return f"{owner}.{method}"
        for base in klass.bases:
            resolved = self._resolve_method(base, method, depth + 1)
            if resolved is not None:
                return resolved
        return None

    def dataclass_fields(self, qualified: str) -> List[Tuple[str, int]]:
        entry = self.classes.get(qualified)
        if entry is None or not entry[1].is_dataclass:
            return []
        return list(entry[1].fields)
