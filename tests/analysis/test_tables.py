"""Tests for Table-1 rendering."""

from repro.analysis.tables import Table1Row, format_bits, render_series, render_table


class TestFormatBits:
    def test_units(self):
        assert format_bits(100) == "100.0b"
        assert format_bits(2048) == "2.0Kb"
        assert format_bits(3 * 1024 * 1024) == "3.0Mb"

    def test_huge(self):
        assert format_bits(2 ** 50).endswith("Tb")


class TestRenderTable:
    def _row(self):
        return Table1Row(
            protocol="this work (snark)",
            paper_claim="Õ(1)",
            setup="pki+crs",
            assumptions="snarks*+crh",
            ns=[64, 256],
            max_bits_per_party=[1000, 2000],
            fitted_exponent=0.12,
            growth_class="polylog",
        )

    def test_contains_fields(self):
        rendered = render_table([self._row()])
        assert "this work (snark)" in rendered
        assert "Õ(1)" in rendered
        assert "+0.12" in rendered
        assert "polylog" in rendered

    def test_multiple_rows(self):
        rows = [self._row(), self._row()]
        rendered = render_table(rows)
        assert rendered.count("this work") == 2

    def test_missing_exponent(self):
        row = Table1Row(
            protocol="x", paper_claim="y", setup="s", assumptions="a",
            ns=[64], max_bits_per_party=[100],
        )
        assert "n/a" in render_table([row])


def test_render_series():
    line = render_series("bits", [64, 128], [1000.0, 2000.0], unit="b")
    assert "n=64" in line and "2,000b" in line
