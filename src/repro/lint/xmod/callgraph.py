"""Cross-module call graph and import-SCC decomposition.

Built on top of :class:`~repro.lint.xmod.project.ProjectUnit`: every
function fact's call sites are resolved to fully-qualified project
functions where possible (imports were already resolved per-module at
extraction time; this layer adds ``self.``-method dispatch through base
classes and unique-method-name resolution for calls on untyped locals).

Two consumers:

* ``python -m repro lint graph`` exports the graph as schema-versioned
  JSON (:data:`CALLGRAPH_SCHEMA`) — one node per function/method, one
  edge per resolved call site, plus the module-level import graph and
  its strongly-connected components;
* the facts cache invalidates by import-SCC: when a file changes, the
  modules whose facts may embed assumptions about it are exactly its
  SCC in the import graph (mutual imports re-extract together).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.xmod.project import ProjectUnit

#: Version tag stamped into every ``lint graph`` export.  Bump when the
#: JSON shape changes so downstream tooling can detect drift.
CALLGRAPH_SCHEMA = "repro-lint-callgraph/1"


def import_graph(project: ProjectUnit) -> Dict[str, Set[str]]:
    """Module-level dependency edges restricted to project modules.

    An edge ``a -> b`` means ``a`` imports a name whose origin lives in
    module ``b`` (prefix-matched, so ``from repro.cluster.wire import
    Message`` links to ``repro.cluster.wire``).
    """
    modules = set(project.facts)
    edges: Dict[str, Set[str]] = {name: set() for name in modules}
    for name, facts in project.facts.items():
        for origin in facts.imports.values():
            target = _owning_module(origin, modules)
            if target is not None and target != name:
                edges[name].add(target)
    return edges


def _owning_module(dotted: str, modules: Set[str]) -> Optional[str]:
    """Longest project module that is a prefix of ``dotted``."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        candidate = ".".join(parts[:cut])
        if candidate in modules:
            return candidate
    return None


def strongly_connected(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC over the import graph, iteratively (deep trees are
    real: ``repro.__init__`` sits atop every module)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(edges.get(node, ()))
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def scc_of(module: str, components: List[List[str]]) -> List[str]:
    for component in components:
        if module in component:
            return component
    return [module]


class CallGraph:
    """Resolved function-level call edges over a :class:`ProjectUnit`."""

    def __init__(self, project: ProjectUnit) -> None:
        self.project = project
        #: caller qualified name -> sorted list of (callee, line)
        self.edges: Dict[str, List[Tuple[str, int]]] = {}
        #: callee qualified name -> callers
        self.reverse: Dict[str, Set[str]] = {}
        for qualified, (modname, function) in project.functions.items():
            resolved: Set[Tuple[str, int]] = set()
            for call in function.calls:
                target = project.resolve_call(modname, function, call)
                if target is not None and target in project.functions:
                    resolved.add((target, call.line))
                    self.reverse.setdefault(target, set()).add(qualified)
            self.edges[qualified] = sorted(resolved)

    def callees(self, qualified: str) -> List[str]:
        return sorted({target for target, _ in self.edges.get(qualified, ())})

    def callers(self, qualified: str) -> List[str]:
        return sorted(self.reverse.get(qualified, ()))

    def reachable(self, roots: List[str], depth: int) -> Set[str]:
        """Functions reachable from ``roots`` within ``depth`` calls."""
        seen: Set[str] = set(roots)
        frontier = list(roots)
        for _ in range(depth):
            next_frontier: List[str] = []
            for node in frontier:
                for target in self.callees(node):
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
            if not frontier:
                break
        return seen

    # -- export --------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The ``lint graph`` document: modules, functions, edges, SCCs."""
        imports = import_graph(self.project)
        components = strongly_connected(imports)
        nodes = []
        for qualified in sorted(self.project.functions):
            modname, function = self.project.functions[qualified]
            nodes.append({
                "id": qualified,
                "module": modname,
                "name": function.qualname,
                "line": function.line,
                "is_async": function.is_async,
                "class": function.class_name,
            })
        edges = [
            {"caller": caller, "callee": callee, "line": line}
            for caller in sorted(self.edges)
            for callee, line in self.edges[caller]
        ]
        return {
            "schema": CALLGRAPH_SCHEMA,
            "modules": [
                {
                    "name": name,
                    "path": facts.rel,
                    "sha256": facts.sha,
                    "imports": sorted(imports.get(name, ())),
                }
                for name, facts in sorted(self.project.facts.items())
            ],
            "functions": nodes,
            "edges": edges,
            "sccs": [component for component in components
                     if len(component) > 1] or [],
        }
