"""SCH001 fixture (ok): constructors use declared fields only."""

from xmod_sch_ok.codec import Ticket


def build_ticket():
    return Ticket(kind=1, charge_bits=2)
