"""T1 — regenerate Table 1: max communication per party, measured.

For every protocol row we can execute, sweep n, measure max bits per
party on the shared ledger, fit the growth exponent, and render the
measured table next to the paper's claims.  The assertions pin the
*shape*: the paper's two protocols grow strictly slower than the
sqrt-boost, which grows strictly slower than the Theta(n) rows.
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.scaling import classify_growth, fit_power_law
from repro.analysis.tables import Table1Row, render_table
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import run_balanced_ba
from repro.protocols.baselines import (
    MultisigScheme,
    all_to_all_ba,
    central_party_boost,
    ks09_boost,
    sqrt_boost,
)
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.registered import RegisteredSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

PI_BA_NS = [64, 128, 256, 512]
BASELINE_NS = [64, 128, 256, 512, 1024, 2048, 4096]
PARAMS = ProtocolParameters()


def _run_pi_ba(scheme_factory, ns):
    series = []
    rng = Randomness(1)
    for n in ns:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        result = run_balanced_ba(
            {i: 1 for i in range(n)}, plan, scheme_factory(), PARAMS,
            rng.fork(f"r{n}"),
        )
        assert result.agreement and result.validity
        series.append(result.metrics.max_bits_per_party)
    return series


def _run_boost(boost, ns):
    series = []
    rng = Randomness(2)
    for n in ns:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        isolated = set(range(n - max(1, n // 50), n))
        result = boost(1, isolated, plan, rng.fork(f"r{n}"))
        assert result.agreement
        series.append(result.metrics.max_bits_per_party)
    return series


def _collect_rows():
    rows = []

    snark = _run_pi_ba(
        lambda: SnarkSRDS(base_scheme=HashRegistryBase()), PI_BA_NS
    )
    rows.append(("this work (snark srds)", "Õ(1)", "pki+crs",
                 "snarks*+crh", PI_BA_NS, snark))

    owf = _run_pi_ba(lambda: OwfSRDS(message_bits=64), PI_BA_NS)
    rows.append(("this work (owf srds)", "Õ(1)", "trusted pki",
                 "owf", PI_BA_NS, owf))

    registered = _run_pi_ba(lambda: RegisteredSRDS(), PI_BA_NS)
    rows.append(("natural approach (registered)", "Õ(1)",
                 "registered-pki", "multisig+snarg", PI_BA_NS, registered))

    multisig = _run_pi_ba(lambda: MultisigScheme(), PI_BA_NS)
    rows.append(("BGT'13 (multisig certs)", "Õ(n)", "pki",
                 "owf", PI_BA_NS, multisig))

    sqrt_series = _run_boost(sqrt_boost, BASELINE_NS)
    rows.append(("KS'11/KLST'11 (sqrt polling)", "Õ(sqrt n)", "-",
                 "-", BASELINE_NS, sqrt_series))

    ks09 = _run_boost(ks09_boost, BASELINE_NS)
    rows.append(("KS'09 (quorum relay)", "Õ(n·sqrt n)", "-",
                 "-", BASELINE_NS, ks09))

    central = _run_boost(central_party_boost, BASELINE_NS)
    rows.append(("CM'19/ACD+'19 (central committee)", "Õ(n)",
                 "trusted-pki", "ro/vrf/...", BASELINE_NS, central))

    all_to_all = []
    rng = Randomness(3)
    for n in BASELINE_NS:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        result = all_to_all_ba({i: 1 for i in range(n)}, plan,
                               rng.fork(f"r{n}"))
        assert result.agreement
        all_to_all.append(result.metrics.max_bits_per_party)
    rows.append(("full-network phase-king", "Theta(n·t)", "-", "-",
                 BASELINE_NS, all_to_all))

    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_reproduction(benchmark, results_dir):
    raw_rows = benchmark.pedantic(_collect_rows, rounds=1, iterations=1)

    table_rows = []
    fits = {}
    for name, claim, setup, assumptions, ns, series in raw_rows:
        fit = fit_power_law(ns, series)
        fits[name] = fit
        table_rows.append(
            Table1Row(
                protocol=name,
                paper_claim=claim,
                setup=setup,
                assumptions=assumptions,
                ns=ns,
                max_bits_per_party=series,
                fitted_exponent=fit.exponent,
                growth_class=classify_growth(ns, series),
            )
        )

    rendered = render_table(table_rows)
    write_result(results_dir, "table1", rendered)

    # Shape assertions — the paper's ordering of the max-com column.
    #
    # On a finite n-window a polylog series masquerades as a small power
    # law (log^4 n fits n^0.8 over [64, 512]), so raw exponent
    # comparison against the sqrt row would be meaningless.  The shape
    # tests are therefore: (1) model classification — the polylog model
    # fits this work's rows strictly better than any power law, while
    # every baseline classifies as its claimed power; (2) local-slope
    # decay — polylog series flatten as n grows, power laws do not;
    # (3) endpoint ordering at the largest common n.
    classes = {row.protocol: row.growth_class for row in table_rows}
    assert classes["this work (snark srds)"] == "polylog"
    assert classes["this work (owf srds)"] == "polylog"
    assert classes["natural approach (registered)"] == "polylog"
    assert classes["KS'11/KLST'11 (sqrt polling)"] == "sqrt-like"
    assert classes["CM'19/ACD+'19 (central committee)"] == "linear"
    assert classes["BGT'13 (multisig certs)"] == "superlinear"
    assert classes["KS'09 (quorum relay)"] in ("linear", "superlinear")
    assert classes["full-network phase-king"] == "superlinear"

    def local_slope(ns, series, first, second):
        import math

        return (
            math.log(series[second] / series[first])
            / math.log(ns[second] / ns[first])
        )

    for name in ("this work (snark srds)", "this work (owf srds)"):
        _, _, _, _, ns, series = next(r for r in raw_rows if r[0] == name)
        early = local_slope(ns, series, 0, 1)
        late = local_slope(ns, series, len(ns) - 2, len(ns) - 1)
        assert late < early, f"{name} slope should decay (polylog)"

    # Endpoint ordering at n = 512: pi_ba/SNARK already beats the
    # multisig-certificate variant by a wide factor.
    by_name = {r[0]: r[5] for r in raw_rows}
    n_index = PI_BA_NS.index(512)
    assert (
        by_name["BGT'13 (multisig certs)"][n_index]
        > 3 * by_name["this work (snark srds)"][n_index]
    )
    # Theta(n)-class baselines grow with n; their exponents are near 1+.
    assert fits["CM'19/ACD+'19 (central committee)"].exponent > 0.85
    assert fits["KS'09 (quorum relay)"].exponent > 1.2
    assert fits["full-network phase-king"].exponent > 1.2
    assert 0.35 < fits["KS'11/KLST'11 (sqrt polling)"].exponent < 0.8
