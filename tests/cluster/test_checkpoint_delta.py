"""Delta trace checkpoints: segment replay, durability edges, legacy form.

``_save_trace_segments`` appends one pickled ``(start_index, events)``
chunk per party per checkpoint to ``trace-<pid>.seg``; the manifest
carries only per-party event *counts* and :func:`read_state`
materializes the streams back.  These tests pin the replay algebra —
truncate-to-start then extend, manifest count authoritative — including
the crash window between the segment fsync and the manifest rename
(a re-appended chunk must resolve identically).  No worker processes
are involved, so the suite stays tier-1.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cluster.supervisor import (
    STATE_FILE,
    STATE_FORMAT,
    _read_trace_segments,
    read_state,
)
from repro.errors import ClusterError


def _event(party_id: int, seq: int) -> dict:
    return {"party": party_id, "seq": seq, "kind": "round"}


def _append_chunk(run_dir, party_id: int, start: int, events: list) -> None:
    with (run_dir / f"trace-{party_id}.seg").open("ab") as handle:
        pickle.dump((start, events), handle, protocol=pickle.HIGHEST_PROTOCOL)


def _write_manifest(run_dir, **entries) -> None:
    state = {"format": STATE_FORMAT}
    state.update(entries)
    with (run_dir / STATE_FILE).open("wb") as handle:
        pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)


class TestSegmentReplay:
    def test_chunks_concatenate_into_the_stream(self, tmp_path):
        events = [_event(0, i) for i in range(7)]
        _append_chunk(tmp_path, 0, 0, events[:3])
        _append_chunk(tmp_path, 0, 3, events[3:])
        assert _read_trace_segments(tmp_path, {0: 7}) == {0: events}

    def test_reappended_chunk_resolves_identically(self, tmp_path):
        # Crash window: the chunk hit disk but the manifest rename did
        # not; the next checkpoint re-appends the same delta.
        events = [_event(1, i) for i in range(5)]
        _append_chunk(tmp_path, 1, 0, events[:2])
        _append_chunk(tmp_path, 1, 2, events[2:])
        _append_chunk(tmp_path, 1, 2, events[2:])  # the re-append
        assert _read_trace_segments(tmp_path, {1: 5}) == {1: events}

    def test_manifest_count_trims_unacknowledged_tail(self, tmp_path):
        # A chunk whose manifest never landed leaves extra events; the
        # count is authoritative and the tail is trimmed.
        events = [_event(0, i) for i in range(6)]
        _append_chunk(tmp_path, 0, 0, events[:4])
        _append_chunk(tmp_path, 0, 4, events[4:])
        assert _read_trace_segments(tmp_path, {0: 4}) == {0: events[:4]}

    def test_missing_events_are_loud(self, tmp_path):
        _append_chunk(tmp_path, 0, 0, [_event(0, 0)])
        with pytest.raises(ClusterError, match="manifest expects"):
            _read_trace_segments(tmp_path, {0: 5})

    def test_missing_segment_file_is_loud_when_count_positive(self, tmp_path):
        with pytest.raises(ClusterError, match="manifest expects"):
            _read_trace_segments(tmp_path, {3: 2})

    def test_corrupt_segment_is_loud(self, tmp_path):
        (tmp_path / "trace-0.seg").write_bytes(b"\x80\x05garbage")
        with pytest.raises(ClusterError, match="corrupt trace segment"):
            _read_trace_segments(tmp_path, {0: 1})

    def test_empty_manifest_reads_empty(self, tmp_path):
        assert _read_trace_segments(tmp_path, {}) == {}
        assert _read_trace_segments(tmp_path, {0: 0}) == {0: []}


class TestReadState:
    def test_materializes_trace_events_from_segments(self, tmp_path):
        events = {0: [_event(0, 0), _event(0, 1)], 1: [_event(1, 0)]}
        for party_id, stream in events.items():
            _append_chunk(tmp_path, party_id, 0, stream)
        _write_manifest(
            tmp_path,
            trace_segments={p: len(s) for p, s in events.items()},
        )
        state = read_state(tmp_path)
        assert state is not None
        assert state["trace_events"] == events

    def test_legacy_inline_manifest_is_honored_untouched(self, tmp_path):
        inline = {0: [_event(0, 0)]}
        # A stale segment file must NOT override the inline stream.
        _append_chunk(tmp_path, 0, 0, [_event(0, 99)])
        _write_manifest(tmp_path, trace_events=inline)
        state = read_state(tmp_path)
        assert state is not None
        assert state["trace_events"] == inline

    def test_absent_state_is_none(self, tmp_path):
        assert read_state(tmp_path) is None

    def test_wrong_format_is_loud(self, tmp_path):
        with (tmp_path / STATE_FILE).open("wb") as handle:
            pickle.dump({"format": "alien/9"}, handle)
        with pytest.raises(ClusterError, match="supervisor state"):
            read_state(tmp_path)

    def test_corrupt_state_is_loud(self, tmp_path):
        (tmp_path / STATE_FILE).write_bytes(b"not a pickle")
        with pytest.raises(ClusterError, match="corrupt supervisor state"):
            read_state(tmp_path)
