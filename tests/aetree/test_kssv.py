"""Tests for the election-driven tree builder."""

import pytest

from repro.aetree.analysis import analyze, validate_structure
from repro.aetree.kssv import build_tree_via_elections
from repro.aetree.tree import build_tree
from repro.errors import TreeError
from repro.net.adversary import random_corruption, targeted_corruption
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

N = 256


@pytest.fixture
def setup(params, rng):
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    tree = build_tree_via_elections(N, params, plan, rng.fork("t"))
    return tree, plan


class TestStructure:
    def test_structurally_valid(self, setup, params):
        tree, _ = setup
        validate_structure(tree, params)

    def test_root_two_thirds_honest(self, setup):
        tree, plan = setup
        corrupt = sum(
            1 for member in tree.supreme_committee
            if plan.is_corrupt(member)
        )
        assert 3 * corrupt < len(tree.supreme_committee)

    def test_committee_sizes(self, setup, params):
        tree, _ = setup
        target = params.committee_size(N)
        for node in tree.nodes.values():
            if node.level >= 2:
                assert len(node.committee) <= target + 1

    def test_committees_drawn_from_subtrees(self, setup):
        tree, _ = setup
        for node in tree.nodes.values():
            if node.level < 2 or not node.children:
                continue
            subtree_members = set()
            for child_id in node.children:
                subtree_members.update(tree.nodes[child_id].committee)
            assert set(node.committee) <= subtree_members


class TestGoodness:
    def test_goodness_comparable_to_sampled_builder(self, params, rng):
        plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
        elected = build_tree_via_elections(
            N, params, plan, rng.fork("e")
        )
        sampled = build_tree(
            N, params, rng.fork("s"), honest_root_hint=plan.honest
        )
        elected_report = analyze(elected, plan)
        sampled_report = analyze(sampled, plan)
        assert elected_report.root_is_good
        # Elections keep goodness within the same ballpark as sampling.
        assert (
            elected_report.good_path_leaf_fraction
            >= sampled_report.good_path_leaf_fraction - 0.25
        )
        assert elected_report.well_connected_fraction >= 0.75

    def test_impossible_corruption_raises(self, params, rng):
        plan = targeted_corruption(N, list(range(N - 4)))
        with pytest.raises(Exception):
            build_tree_via_elections(N, params, plan, rng)


class TestDeterminism:
    def test_same_seed_same_tree(self, params):
        plan = random_corruption(N, params.max_corruptions(N), Randomness(3))
        a = build_tree_via_elections(N, params, plan, Randomness(9))
        b = build_tree_via_elections(N, params, plan, Randomness(9))
        assert a.root.committee == b.root.committee
