"""Transport abstractions for the event-driven runtime.

The synchronous simulator (:mod:`repro.net.simulator`) moves envelopes by
appending to in-memory lists inside one big loop.  The runtime replaces
that with a :class:`Transport`: an asyncio message-moving layer with two
implementations —

* :class:`AsyncLocalTransport` — in-process delivery over per-party
  buffers guarded by the event loop (the fast path for experiments);
* :class:`TcpTransport` — real loopback TCP sockets with length-prefixed
  frames routed through a central authenticated router (the fidelity
  path: every message crosses a kernel socket twice).

Both implementations charge every delivered frame to the same
:class:`~repro.net.metrics.CommunicationMetrics` ledger the synchronous
simulator uses, so the paper's headline quantity (max bits per party) is
measured identically regardless of execution substrate.

Authentication is a *transport* property, exactly as in the simulator:
the sending endpoint/router stamps the true sender id on every frame, so
a Byzantine party may lie in its payload but cannot spoof the channel.
"""

from __future__ import annotations

import abc
import asyncio
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import NetworkError
from repro.net.bind import start_asyncio_server
from repro.net.metrics import CommunicationMetrics
from repro.obs.flow import flow_tags
from repro.obs.registry import MetricsRegistry
from repro.utils.randomness import Randomness

_HEADER = struct.Struct(">BIIIII")  # type, sender, recipient, sent, deliver, charge
_LENGTH = struct.Struct(">I")
_TYPE_HELLO = 0
_TYPE_DATA = 1
_MAX_FRAME = 1 << 24


@dataclass(frozen=True)
class Frame:
    """One message in flight on a runtime transport.

    ``sent_round`` is the round the sender emitted it in; ``deliver_round``
    is the earliest round barrier at which the synchronizer hands it to
    the recipient (``sent_round + 1`` plus any fault-plan delay).
    ``charge_bits`` is what the metrics ledger is charged — normally
    ``8 * len(payload)``, but replayed executions may carry exact analytic
    bit counts that are not byte multiples.
    ``seq`` is the per-sender emission sequence number; together with the
    sender id it defines the canonical (simulator-identical) inbox order.
    ``phase`` is the obs span active when the frame was shipped — pure
    flow-ledger attribution metadata: it rides the wire (so attribution
    survives the TCP transport's cross-task delivery) but is **never**
    part of ``charge_bits``, which stays exactly the analytic size the
    protocol declared.
    """

    sender: int
    recipient: int
    payload: bytes
    sent_round: int = 0
    deliver_round: int = 1
    charge_bits: int = -1
    seq: int = 0
    phase: str = ""

    def bits(self) -> int:
        """Bits charged to the ledger for this frame."""
        return self.charge_bits if self.charge_bits >= 0 else 8 * len(self.payload)

    def encode(self) -> bytes:
        """Length-prefixed wire encoding (used by :class:`TcpTransport`)."""
        phase_bytes = self.phase.encode("utf-8")
        body = (
            _HEADER.pack(
                _TYPE_DATA, self.sender, self.recipient, self.sent_round,
                self.deliver_round, self.bits(),
            )
            + _LENGTH.pack(self.seq)
            + _LENGTH.pack(len(phase_bytes)) + phase_bytes
            + self.payload
        )
        if len(body) > _MAX_FRAME:
            raise NetworkError(f"frame exceeds {_MAX_FRAME} bytes")
        return _LENGTH.pack(len(body)) + body

    @staticmethod
    def decode(body: bytes) -> "Frame":
        """Inverse of :meth:`encode` (without the length prefix)."""
        if len(body) < _HEADER.size + 2 * _LENGTH.size:
            raise NetworkError("short frame")
        kind, sender, recipient, sent, deliver, charge = _HEADER.unpack_from(body)
        if kind != _TYPE_DATA:
            raise NetworkError(f"unexpected frame type {kind}")
        if deliver <= sent:
            raise NetworkError(
                f"frame claims delivery round {deliver} on or before "
                f"its send round {sent}"
            )
        (seq,) = _LENGTH.unpack_from(body, _HEADER.size)
        (phase_len,) = _LENGTH.unpack_from(body, _HEADER.size + _LENGTH.size)
        phase_start = _HEADER.size + 2 * _LENGTH.size
        if len(body) < phase_start + phase_len:
            raise NetworkError("short frame (truncated phase)")
        try:
            phase = body[phase_start:phase_start + phase_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise NetworkError(f"frame phase is not UTF-8: {exc}") from exc
        payload = body[phase_start + phase_len:]
        return Frame(
            # lint: allow[TRU001] reason=party ids are checked against staged routing tables by the supervisor before any delivery or ledger charge
            sender=sender,
            recipient=recipient,  # lint: allow[TRU001] reason=recipient is checked against staged routing tables before any delivery or ledger charge
            payload=payload,
            sent_round=sent,
            deliver_round=deliver,
            charge_bits=charge,  # lint: allow[TRU001] reason=unsigned by wire format; replayed charges are cross-checked by mesh/relay ledger parity gates
            seq=seq,  # lint: allow[TRU001] reason=seq is an opaque reconnect-dedup tag; the replay consumer tolerates arbitrary values
            phase=phase,
        )


def backoff_schedule(
    attempts: int,
    base: float,
    cap: float,
    rng: Randomness,
) -> List[float]:
    """Bounded exponential backoff with seeded jitter.

    Attempt ``i`` waits ``min(cap, base * 2**i)`` scaled by a jitter
    factor drawn uniformly from ``[0.5, 1.5)`` — seeded through the
    repo's :class:`~repro.utils.randomness.Randomness` wrapper, so a
    retry storm replays identically under the same seed.  Returns the
    full list of delays (empty when ``attempts <= 0``).
    """
    if base < 0 or cap < 0:
        raise NetworkError("backoff delays cannot be negative")
    delays: List[float] = []
    for attempt in range(max(0, attempts)):
        nominal = min(cap, base * (2 ** attempt))
        jitter = 0.5 + rng.random_int(1000) / 1000.0
        delays.append(nominal * jitter)
    return delays


class Transport(abc.ABC):
    """Moves frames between party endpoints, charging the shared ledger.

    Lifecycle: ``await start()`` → any number of ``await send(...)`` /
    ``collect(...)`` cycles (with ``await flush()`` between a send burst
    and the collect that must observe it) → ``await stop()``.
    """

    def __init__(
        self,
        party_ids: Sequence[int],
        metrics: Optional[CommunicationMetrics] = None,
    ) -> None:
        self.party_ids = sorted(set(party_ids))
        if len(self.party_ids) != len(list(party_ids)):
            raise NetworkError("duplicate party id in transport registry")
        self.metrics = metrics if metrics is not None else CommunicationMetrics()
        self._arrived: Dict[int, List[Frame]] = {p: [] for p in self.party_ids}
        self._sent = 0
        self._delivered = 0
        self._registry: Optional[MetricsRegistry] = None
        #: Successful endpoint re-dials (only the TCP transport moves it).
        self.reconnects = 0

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Feed operational gauges/counters into an obs registry.

        Registers ``repro_transport_frames_sent_total``,
        ``repro_transport_frames_delivered_total``,
        ``repro_transport_in_flight``,
        ``repro_transport_queue_depth_max`` (high-water arrived-buffer
        depth per party, labeled) and
        ``repro_transport_reconnects_total`` (successful endpoint
        re-dials after a lost router connection — always 0 on the local
        transport).
        """
        self._registry = registry
        self._frames_sent = registry.counter(
            "repro_transport_frames_sent_total",
            "Frames accepted by the transport for delivery",
        )
        self._reconnects_counter = registry.counter(
            "repro_transport_reconnects_total",
            "Endpoint reconnects after a lost router connection",
        )
        self._frames_delivered = registry.counter(
            "repro_transport_frames_delivered_total",
            "Frames that reached their destination buffer",
        )
        self._in_flight_gauge = registry.gauge(
            "repro_transport_in_flight",
            "Frames sent but not yet delivered",
        )
        self._queue_depth = registry.gauge(
            "repro_transport_queue_depth_max",
            "High-water mark of one party's arrived-frame buffer",
            ("party",),
        )

    def _note_sent(self) -> None:
        """Subclasses call this instead of mutating ``_sent`` directly."""
        self._sent += 1
        if self._registry is not None:
            self._frames_sent.inc()
            self._in_flight_gauge.set(self.in_flight)

    def _note_reconnect(self) -> None:
        """Record one successful endpoint re-dial."""
        self.reconnects += 1
        if self._registry is not None:
            self._reconnects_counter.inc()

    # -- hooks ---------------------------------------------------------------

    @abc.abstractmethod
    async def start(self) -> None:
        """Bring the transport up (open sockets, spawn pumps)."""

    @abc.abstractmethod
    async def stop(self) -> None:
        """Tear the transport down."""

    @abc.abstractmethod
    async def send(self, true_sender: int, frame: Frame) -> None:
        """Ship one frame; the transport stamps ``true_sender`` on it."""

    async def flush(self) -> None:
        """Wait until every sent frame has arrived at its destination."""

    # -- shared delivery plumbing -------------------------------------------

    def _deliver(self, frame: Frame) -> None:
        """Accept a frame at its destination and charge the ledger."""
        if frame.recipient not in self._arrived:
            raise NetworkError(f"unknown recipient {frame.recipient}")
        # Flow-ledger refinement: runtime traffic is frame-shaped; the
        # phase stamped at ship time rides the frame so it survives the
        # TCP transport's cross-task (cross-contextvar) delivery.
        with flow_tags(phase=frame.phase or None, kind="frame"):
            self.metrics.record_message(
                frame.sender, frame.recipient, frame.bits()
            )
        self._arrived[frame.recipient].append(frame)
        self._delivered += 1
        if self._registry is not None:
            self._frames_delivered.inc()
            self._in_flight_gauge.set(self.in_flight)
            self._queue_depth.set_max(
                len(self._arrived[frame.recipient]), party=frame.recipient
            )

    def collect(self, party_id: int) -> List[Frame]:
        """Drain (and return) all frames that have arrived for a party."""
        if party_id not in self._arrived:
            raise NetworkError(f"unknown party {party_id}")
        frames = self._arrived[party_id]
        self._arrived[party_id] = []
        return frames

    @property
    def in_flight(self) -> int:
        """Frames sent but not yet arrived (0 after a successful flush)."""
        return self._sent - self._delivered


class AsyncLocalTransport(Transport):
    """In-process transport: frames hop through the event loop only.

    Delivery is immediate (``send`` completes once the frame is staged at
    the recipient), so :meth:`flush` is trivially satisfied.  This is the
    default substrate for differential tests and large-n experiments.
    """

    async def start(self) -> None:  # pragma: no cover - trivial
        return None

    async def stop(self) -> None:  # pragma: no cover - trivial
        return None

    async def send(self, true_sender: int, frame: Frame) -> None:
        if true_sender not in self._arrived:
            raise NetworkError(f"unknown sender {true_sender}")
        if frame.sender != true_sender:
            frame = replace(frame, sender=true_sender)
        self._note_sent()
        self._deliver(frame)


@dataclass
class _Endpoint:
    """One party's TCP connection pair (reader pump + writer)."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pump: Optional[asyncio.Task] = None
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class TcpTransport(Transport):
    """Loopback-TCP transport with an authenticated central router.

    Topology: one asyncio server (the router) on ``127.0.0.1``; each
    party endpoint opens a single connection and introduces itself with a
    HELLO frame.  Data frames travel endpoint → router → endpoint as
    length-prefixed byte strings; the router overwrites the sender field
    with the connection's registered identity (authenticated channels),
    mirroring the simulator's sender-stamping.

    The router intentionally does *not* reorder or drop: scheduling
    adversaries live in :class:`~repro.runtime.faults.FaultPlan`, at the
    delivery layer, where they are seeded and reproducible.

    Resilience: a send that hits a torn endpoint connection re-dials the
    router on a bounded, seeded :func:`backoff_schedule` (re-HELLO, then
    retry the write); successful re-dials are counted in
    :attr:`~Transport.reconnects` and surfaced through the obs registry
    as ``repro_transport_reconnects_total``.  A preferred ``port`` that
    is already in use is retried on the same schedule before falling
    back to an OS-assigned port.
    """

    def __init__(
        self,
        party_ids: Sequence[int],
        metrics: Optional[CommunicationMetrics] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        reconnect_attempts: int = 4,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 1.0,
        rng: Optional[Randomness] = None,
    ) -> None:
        super().__init__(party_ids, metrics)
        self._host = host
        self._preferred_port = port
        self._reconnect_attempts = reconnect_attempts
        self._reconnect_base = reconnect_base
        self._reconnect_cap = reconnect_cap
        self._rng = rng if rng is not None else Randomness(0x7C9)
        self._server: Optional[asyncio.base_events.Server] = None
        self._endpoints: Dict[int, _Endpoint] = {}
        self._router_writers: Dict[int, asyncio.StreamWriter] = {}
        self._router_tasks: List[asyncio.Task] = []
        self._retired_pumps: List[asyncio.Task] = []
        self._idle = asyncio.Event()
        self._idle.set()
        self._hello_count = 0
        self._stopping = False
        self.port: Optional[int] = None
        #: Preferred-port bind attempts that hit ``EADDRINUSE``.
        self.bind_retries = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._stopping = False
        self._server = await self._open_server()
        self.port = self._server.sockets[0].getsockname()[1]
        for party_id in self.party_ids:
            await self._connect_endpoint(party_id)
        # Wait until the router has registered every endpoint, so sends
        # cannot race ahead of their HELLOs.
        while self._hello_count < len(self.party_ids):
            await asyncio.sleep(0)

    async def _open_server(self) -> "asyncio.base_events.Server":
        """Bind the router listener via the shared bind policy.

        A preferred port that is busy (``EADDRINUSE``) is retried on the
        seeded backoff schedule; when every retry loses the race the
        transport falls back to an OS-assigned ephemeral port rather
        than failing the run (:mod:`repro.net.bind`).
        """
        delays: List[float] = []
        if self._preferred_port is not None:
            delays = backoff_schedule(
                self._reconnect_attempts,
                self._reconnect_base,
                self._reconnect_cap,
                self._rng.fork("bind"),
            )
        server, busy_retries = await start_asyncio_server(
            self._router_accept, self._host, self._preferred_port, delays
        )
        self.bind_retries += busy_retries
        return server

    async def _connect_endpoint(self, party_id: int) -> _Endpoint:
        """Dial the router, introduce the party, start its pump."""
        assert self.port is not None
        reader, writer = await asyncio.open_connection(self._host, self.port)
        hello = _HEADER.pack(_TYPE_HELLO, party_id, 0, 0, 0, 0)
        writer.write(_LENGTH.pack(len(hello)) + hello)
        await writer.drain()
        endpoint = _Endpoint(reader=reader, writer=writer)
        endpoint.pump = asyncio.create_task(self._endpoint_pump(endpoint))
        self._endpoints[party_id] = endpoint
        return endpoint

    async def stop(self) -> None:
        self._stopping = True
        # Close the endpoint sides first; EOF then propagates through the
        # router handlers and receive pumps, which all exit cleanly (no
        # task cancellation — cancelling server-owned handler tasks makes
        # asyncio's connection_made callback log spurious errors).
        for endpoint in self._endpoints.values():
            endpoint.writer.close()
        for endpoint in self._endpoints.values():
            try:
                await endpoint.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        for endpoint in self._endpoints.values():
            if endpoint.pump is not None:
                try:
                    await endpoint.pump
                except asyncio.CancelledError:
                    pass
        for pump in self._retired_pumps:
            try:
                await pump
            except asyncio.CancelledError:
                pass
        self._retired_pumps.clear()
        for task in self._router_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._router_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._endpoints.clear()
        self._router_writers.clear()

    # -- sending ------------------------------------------------------------

    async def send(self, true_sender: int, frame: Frame) -> None:
        endpoint = self._endpoints.get(true_sender)
        if endpoint is None:
            raise NetworkError(f"unknown sender {true_sender}")
        if frame.recipient not in self._arrived:
            raise NetworkError(f"unknown recipient {frame.recipient}")
        if frame.sender != true_sender:
            # Pre-stamp; the router re-stamps from connection identity, so
            # even a raw-socket spoofer could not forge this.
            frame = replace(frame, sender=true_sender)
        self._note_sent()
        self._idle.clear()
        try:
            async with endpoint.lock:
                endpoint.writer.write(frame.encode())
                await endpoint.writer.drain()
        except (ConnectionError, OSError):
            await self._resend_with_reconnect(true_sender, frame)

    async def _resend_with_reconnect(
        self, party_id: int, frame: Frame
    ) -> None:
        """Re-dial the router on the backoff schedule and retry the write.

        Each attempt sleeps its jittered delay, opens a fresh endpoint
        connection, re-HELLOs, waits for the router to register the new
        identity, and retries the frame.  Exhausting the schedule raises
        :class:`~repro.errors.NetworkError` — a dead router is a run
        failure, not a silent drop.
        """
        delays = backoff_schedule(
            self._reconnect_attempts,
            self._reconnect_base,
            self._reconnect_cap,
            self._rng.fork(f"reconnect-{party_id}-{self.reconnects}"),
        )
        last_error: Optional[BaseException] = None
        for delay in delays:
            await asyncio.sleep(delay)
            try:
                endpoint = await self._redial(party_id)
                async with endpoint.lock:
                    endpoint.writer.write(frame.encode())
                    await endpoint.writer.drain()
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
            self._note_reconnect()
            return
        raise NetworkError(
            f"party {party_id} could not reach the router after "
            f"{len(delays)} reconnect attempts: {last_error}"
        )

    async def _redial(self, party_id: int) -> _Endpoint:
        """Replace a torn endpoint connection with a fresh one."""
        stale = self._endpoints.get(party_id)
        if stale is not None:
            stale.writer.close()
            # The stale pump exits on its own at EOF; awaiting it here
            # could deadlock if the router side is wedged, so the task is
            # retained for `stop()` to reap (never dropped mid-flight).
            if stale.pump is not None:
                self._retired_pumps.append(stale.pump)
        target = self._hello_count + 1
        endpoint = await self._connect_endpoint(party_id)
        while self._hello_count < target:
            await asyncio.sleep(0)
        return endpoint

    async def flush(self) -> None:
        while self._sent != self._delivered:
            self._idle.clear()
            await self._idle.wait()

    # -- router side --------------------------------------------------------

    async def _router_accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._router_tasks.append(task)
        identity: Optional[int] = None
        try:
            while True:
                body = await _read_frame(reader)
                if body is None:
                    return
                kind = body[0]
                if kind == _TYPE_HELLO:
                    (_, claimed, _, _, _, _) = _HEADER.unpack_from(body)
                    identity = claimed
                    self._router_writers[claimed] = writer
                    self._hello_count += 1
                    continue
                if identity is None:
                    raise NetworkError("data frame before HELLO")
                frame = Frame.decode(body)
                if frame.sender != identity:
                    frame = replace(frame, sender=identity)
                target = self._router_writers.get(frame.recipient)
                if target is None:
                    raise NetworkError(
                        f"router has no endpoint for {frame.recipient}"
                    )
                target.write(frame.encode())
                await target.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            return

    # -- endpoint receive pump ----------------------------------------------

    async def _endpoint_pump(self, endpoint: _Endpoint) -> None:
        try:
            while True:
                body = await _read_frame(endpoint.reader)
                if body is None:
                    return
                self._deliver(Frame.decode(body))
                if self._sent == self._delivered:
                    self._idle.set()
        except (asyncio.IncompleteReadError, ConnectionError):
            return


async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """Read one length-prefixed frame body, or ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > _MAX_FRAME:
        raise NetworkError(f"oversized frame ({length} bytes)")
    return await reader.readexactly(length)


def make_transport(
    kind: str,
    party_ids: Sequence[int],
    metrics: Optional[CommunicationMetrics] = None,
    port: Optional[int] = None,
) -> Transport:
    """Factory: ``"local"`` → :class:`AsyncLocalTransport`, ``"tcp"`` →
    :class:`TcpTransport`.

    ``port`` is the TCP router's *preferred* listen port: busy ports are
    retried on the seeded backoff schedule and then fall back to an
    OS-assigned ephemeral port (``None`` skips straight to OS-assigned).
    The local transport ignores it.
    """
    if kind == "local":
        return AsyncLocalTransport(party_ids, metrics)
    if kind == "tcp":
        return TcpTransport(party_ids, metrics, port=port)
    raise NetworkError(f"unknown transport kind {kind!r}")
