"""Scaling analysis: fitting growth exponents to measured series.

The benchmarks validate the paper's asymptotic claims by measuring
max-bits-per-party over a sweep of n and fitting the log-log slope:
Theta(n) rows fit slope ~1, Õ(sqrt(n)) rows ~0.5, and the paper's Õ(1)
rows fit a small slope (polylog growth looks like a slowly decaying
slope on a finite window; we additionally fit a pure-polylog model and
compare residuals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``value ~ c * n^exponent`` on a log-log scale."""

    exponent: float
    log_constant: float
    residual: float

    def predict(self, n: float) -> float:
        """Model prediction at n."""
        return math.exp(self.log_constant) * n ** self.exponent


@dataclass(frozen=True)
class PolylogFit:
    """Least-squares fit of ``value ~ c * (log2 n)^degree``."""

    degree: float
    log_constant: float
    residual: float

    def predict(self, n: float) -> float:
        """Model prediction at n."""
        return math.exp(self.log_constant) * math.log2(n) ** self.degree


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Plain 1-D least squares; returns (slope, intercept, rms residual)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two points to fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("x values are all identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    residual = math.sqrt(
        sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)) / n
    )
    return slope, intercept, residual


def fit_power_law(ns: Sequence[int], values: Sequence[float]) -> PowerLawFit:
    """Fit ``value = c * n^e`` by least squares in log-log space."""
    xs = [math.log(n) for n in ns]
    ys = [math.log(max(v, 1e-12)) for v in values]
    slope, intercept, residual = _least_squares(xs, ys)
    return PowerLawFit(exponent=slope, log_constant=intercept, residual=residual)


def fit_polylog(ns: Sequence[int], values: Sequence[float]) -> PolylogFit:
    """Fit ``value = c * (log2 n)^d`` by least squares in log-loglog space."""
    xs = [math.log(math.log2(n)) for n in ns]
    ys = [math.log(max(v, 1e-12)) for v in values]
    slope, intercept, residual = _least_squares(xs, ys)
    return PolylogFit(degree=slope, log_constant=intercept, residual=residual)


def classify_growth(ns: Sequence[int], values: Sequence[float]) -> str:
    """Best-effort label: 'polylog', 'sqrt', 'linear', or 'superlinear'.

    Uses the power-law exponent as the primary signal with polylog-model
    residual comparison to distinguish genuinely polylogarithmic series
    from small power laws — adequate for the n-windows the benchmarks
    sweep, and only used for human-readable table rendering (the raw
    exponents are always reported alongside).
    """
    power = fit_power_law(ns, values)
    polylog = fit_polylog(ns, values)
    # On a finite window, (log n)^k masquerades as a small power law
    # (e.g. log^3 n over n in [64, 4096] fits n^0.5 closely); the polylog
    # model's strictly better residual is the tell.
    if power.exponent < 0.9 and polylog.residual < 0.75 * power.residual:
        return "polylog"
    if power.exponent < 0.3:
        return "sublinear"
    if power.exponent < 0.75:
        return "sqrt-like"
    if power.exponent < 1.35:
        return "linear"
    return "superlinear"


def crossover_point(
    fit_small: PowerLawFit, fit_large: PowerLawFit
) -> float:
    """The n at which two fitted power laws intersect.

    Used to estimate where the paper's protocol overtakes a baseline
    whose constant is smaller but whose exponent is larger.  Returns
    ``inf`` when the curves never cross in the growth direction.
    """
    if fit_small.exponent == fit_large.exponent:
        return float("inf")
    log_n = (fit_large.log_constant - fit_small.log_constant) / (
        fit_small.exponent - fit_large.exponent
    )
    if log_n > 700:  # exp overflow guard
        return float("inf")
    return math.exp(log_n)
