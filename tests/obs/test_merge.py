"""Cross-process timeline merging: span dirs, determinism, validation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.merge import (
    SPAN_DIR_SCHEMA,
    cluster_tracks,
    dump_span_dir,
    export_merged_trace,
    load_span_dir,
    merged_timeline_events,
)
from repro.obs.spans import SpanLog, SpanRecord, recording, span
from repro.obs.timeline import validate_trace_events


def _seeded_tracks():
    """Two deterministic tracks built from real span machinery."""
    supervisor = SpanLog()
    with recording(supervisor):
        for index in range(3):
            with span("supervisor-round", frames=index):
                pass
    worker = SpanLog()
    with recording(worker):
        with span("cluster-round", frames_in=0):
            with span("srds-aggregate"):
                pass
    return {"supervisor": supervisor.records, "worker-0": worker.records}


class TestSpanDir:
    def test_round_trip(self, tmp_path):
        tracks = _seeded_tracks()
        dump_span_dir(tmp_path / "spans", "run-42", tracks)
        meta = json.loads(
            (tmp_path / "spans" / "merge-meta.json").read_text()
        )
        assert meta["schema"] == SPAN_DIR_SCHEMA
        assert meta["tracks"] == ["supervisor", "worker-0"]
        trace_id, loaded = load_span_dir(tmp_path / "spans")
        assert trace_id == "run-42"
        assert sorted(loaded) == ["supervisor", "worker-0"]
        assert [r.name for r in loaded["worker-0"]] == [
            "cluster-round", "srds-aggregate",
        ]
        assert loaded["worker-0"][0].attrs == {"frames_in": 0}

    def test_unsafe_track_name_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            dump_span_dir(tmp_path, "t", {"a/b": []})

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_span_dir(tmp_path)

    def test_missing_meta_tolerated(self, tmp_path):
        dump_span_dir(tmp_path, "t", _seeded_tracks())
        (tmp_path / "merge-meta.json").unlink()
        trace_id, loaded = load_span_dir(tmp_path)
        assert trace_id == ""
        assert len(loaded) == 2


class TestMergedTimeline:
    def test_tracks_become_distinct_pids_sharing_trace_id(self):
        events = merged_timeline_events(_seeded_tracks(), "run-42")
        names = {
            e["args"]["name"]: e["pid"]
            for e in events if e.get("name") == "process_name"
        }
        assert names == {"supervisor": 0, "worker-0": 1}
        labels = [e for e in events if e.get("name") == "process_labels"]
        assert {e["args"]["labels"] for e in labels} == {"run-42"}
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["trace_id"] for e in slices} == {"run-42"}
        assert {e["pid"] for e in slices} == {0, 1}

    def test_merged_stream_validates(self):
        events = merged_timeline_events(_seeded_tracks(), "run-42")
        validate_trace_events(events)  # raises on malformed events

    def test_export_byte_identical_across_two_seeded_runs(self, tmp_path):
        # The clock=None contract end to end: building the same spans
        # twice and exporting yields byte-identical files.
        first = export_merged_trace(
            tmp_path / "a.json", _seeded_tracks(), "run-42"
        )
        second = export_merged_trace(
            tmp_path / "b.json", _seeded_tracks(), "run-42"
        )
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        validate_trace_events(document["traceEvents"])
        assert document["otherData"]["trace_id"] == "run-42"

    def test_open_spans_are_skipped(self):
        open_record = SpanRecord(
            name="open", path="open", depth=0, start_tick=0
        )
        events = merged_timeline_events({"t": [open_record]})
        assert [e for e in events if e["ph"] == "X"] == []

    def test_wall_mode_uses_wall_stamps(self):
        record = SpanRecord(
            name="s", path="s", depth=0, start_tick=0, end_tick=1,
            start_wall=1.0, end_wall=1.5,
        )
        (event,) = [
            e for e in merged_timeline_events(
                {"t": [record]}, deterministic=False
            )
            if e["ph"] == "X"
        ]
        assert event["ts"] == 1_000_000
        assert event["dur"] == 500_000


class TestClusterTracks:
    def test_duck_typed_result(self):
        class Result:
            supervisor_spans = _seeded_tracks()["supervisor"]
            worker_spans = {1: [], 0: _seeded_tracks()["worker-0"]}

        tracks = cluster_tracks(Result())
        assert list(tracks) == ["supervisor", "worker-0", "worker-1"]
