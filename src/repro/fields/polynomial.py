"""Polynomials over a prime field, with Lagrange interpolation.

These are the workhorses of Shamir secret sharing (dealing = evaluating a
random degree-t polynomial; reconstruction = interpolating at zero).
Coefficients are stored low-degree-first and trailing zeros are trimmed so
``degree`` is well defined.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import SecretSharingError
from repro.fields.prime_field import FieldElement, PrimeField


class Polynomial:
    """An immutable polynomial over GF(p), low-degree-first coefficients."""

    def __init__(self, field: PrimeField, coefficients: Iterable) -> None:
        coeffs = [field.element(c) for c in coefficients]
        while len(coeffs) > 1 and coeffs[-1].value == 0:
            coeffs.pop()
        if not coeffs:
            coeffs = [field.zero()]
        self.field = field
        self.coefficients: Tuple[FieldElement, ...] = tuple(coeffs)

    @classmethod
    def random(cls, field: PrimeField, degree: int, rng,
               constant_term=None) -> "Polynomial":
        """A uniformly random polynomial of exactly the given degree bound.

        If ``constant_term`` is given it becomes the evaluation at zero —
        this is how Shamir hides a secret.
        """
        if degree < 0:
            raise SecretSharingError(f"degree must be non-negative, got {degree}")
        coeffs = [field.random_element(rng) for _ in range(degree + 1)]
        if constant_term is not None:
            coeffs[0] = field.element(constant_term)
        return cls(field, coeffs)

    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self.coefficients) - 1

    def evaluate(self, point) -> FieldElement:
        """Horner evaluation at an arbitrary field point."""
        x = self.field.element(point)
        accumulator = self.field.zero()
        for coefficient in reversed(self.coefficients):
            accumulator = accumulator * x + coefficient
        return accumulator

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if other.field != self.field:
            raise SecretSharingError("cannot add polynomials over different fields")
        size = max(len(self.coefficients), len(other.coefficients))
        coeffs = []
        for i in range(size):
            a = self.coefficients[i] if i < len(self.coefficients) else self.field.zero()
            b = other.coefficients[i] if i < len(other.coefficients) else self.field.zero()
            coeffs.append(a + b)
        return Polynomial(self.field, coeffs)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if other.field != self.field:
            raise SecretSharingError("cannot multiply polynomials over different fields")
        coeffs = [self.field.zero()] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            for j, b in enumerate(other.coefficients):
                coeffs[i + j] = coeffs[i + j] + a * b
        return Polynomial(self.field, coeffs)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and other.field == self.field
            and other.coefficients == self.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.field.modulus, tuple(c.value for c in self.coefficients)))

    def __repr__(self) -> str:
        terms = ", ".join(str(c.value) for c in self.coefficients)
        return f"Polynomial([{terms}])"


def lagrange_interpolate_at_zero(
    field: PrimeField,
    points: Sequence[Tuple[FieldElement, FieldElement]],
) -> FieldElement:
    """Interpolate the unique degree-(k-1) polynomial through ``points``
    and evaluate it at zero.

    This is the Shamir reconstruction primitive: ``points`` are
    ``(x_i, share_i)`` pairs with distinct x-coordinates.
    """
    xs = [field.element(x) for x, _ in points]
    if len({x.value for x in xs}) != len(xs):
        raise SecretSharingError("interpolation points must have distinct x values")
    if not points:
        raise SecretSharingError("cannot interpolate an empty point set")
    result = field.zero()
    for i, (x_i, y_i) in enumerate(points):
        x_i = field.element(x_i)
        y_i = field.element(y_i)
        numerator = field.one()
        denominator = field.one()
        for j, (x_j, _) in enumerate(points):
            if i == j:
                continue
            x_j = field.element(x_j)
            numerator = numerator * (-x_j)
            denominator = denominator * (x_i - x_j)
        result = result + y_i * numerator / denominator
    return result


def lagrange_coefficients_at_zero(
    field: PrimeField, xs: Sequence[FieldElement]
) -> List[FieldElement]:
    """The Lagrange basis evaluated at zero for the given x-coordinates.

    Useful when the same reconstruction set is reused across many secrets
    (e.g. batched coin tossing): reconstruction becomes a dot product.
    """
    xs = [field.element(x) for x in xs]
    if len({x.value for x in xs}) != len(xs):
        raise SecretSharingError("x-coordinates must be distinct")
    coefficients: List[FieldElement] = []
    for i, x_i in enumerate(xs):
        numerator = field.one()
        denominator = field.one()
        for j, x_j in enumerate(xs):
            if i == j:
                continue
            numerator = numerator * (-x_j)
            denominator = denominator * (x_i - x_j)
        coefficients.append(numerator / denominator)
    return coefficients
