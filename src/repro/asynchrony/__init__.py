"""repro.asynchrony — the adversarially-scheduled asynchronous model.

The repo's second execution model, next to the three parity-locked
synchronous backends:

* :mod:`repro.asynchrony.scheduler` — :class:`AsyncScheduler`, seeded
  event-order adversary over asyncio party tasks (latency-model and
  worst-case "adversary picks next delivery" policies);
* :mod:`repro.asynchrony.driver` — :func:`run_aba`, one-call MMR14
  binary agreement (:mod:`repro.protocols.aba`) under the model;
* :mod:`repro.asynchrony.adaptive` — the adaptive-adversary seam:
  corruption budgets spent *after* observing coin/wire events;
* :mod:`repro.asynchrony.bench` — BENCH_aba.json, ABA vs π_ba
  bits-per-party on identical (n, seed) cells.

See ``docs/asynchrony.md`` for the model and its relation to the
paper's §1 synchrony assumption.

Re-exports resolve lazily (PEP 562), matching :mod:`repro.runtime`.
"""

from typing import TYPE_CHECKING, List

#: Lazily re-exported name -> defining module.
_EXPORTS = {
    "AdaptiveCorruption": "repro.asynchrony.adaptive",
    "AdaptiveStrategy": "repro.asynchrony.adaptive",
    "ADAPTIVE_STRATEGIES": "repro.asynchrony.adaptive",
    "CoinChaserStrategy": "repro.asynchrony.adaptive",
    "FirstResponderStrategy": "repro.asynchrony.adaptive",
    "adaptive_strategy_by_name": "repro.asynchrony.adaptive",
    "ABARunResult": "repro.asynchrony.driver",
    "run_aba": "repro.asynchrony.driver",
    "AsyncResult": "repro.asynchrony.scheduler",
    "AsyncScheduler": "repro.asynchrony.scheduler",
    "POLICIES": "repro.asynchrony.scheduler",
    "run_async_parties": "repro.asynchrony.scheduler",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # static importers see the eager names
    from repro.asynchrony.adaptive import (
        ADAPTIVE_STRATEGIES,
        AdaptiveCorruption,
        AdaptiveStrategy,
        CoinChaserStrategy,
        FirstResponderStrategy,
        adaptive_strategy_by_name,
    )
    from repro.asynchrony.driver import ABARunResult, run_aba
    from repro.asynchrony.scheduler import (
        POLICIES,
        AsyncResult,
        AsyncScheduler,
        run_async_parties,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
