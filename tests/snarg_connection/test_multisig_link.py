"""Tests for the multisig ↔ SNARG connection."""

import pytest

from repro.crypto.snark import SnarkSystem, forge_random_proof
from repro.errors import ProofError
from repro.snarg_connection.multisig_link import (
    CountCertificate,
    CountCertifiedMultisig,
    snarg_for_subset_from_certifier,
)
from repro.snarg_connection.subset_problems import (
    XorGroup,
    sample_planted_instance,
)
from repro.utils.randomness import Randomness


@pytest.fixture
def scheme():
    return CountCertifiedMultisig(SnarkSystem(b"link-crs"))


@pytest.fixture
def tags(rng):
    group = XorGroup(32)
    return [group.random_element(rng.fork(str(i))) for i in range(40)]


class TestForwardConstruction:
    def test_aggregate_and_verify(self, scheme, tags):
        certificate = scheme.aggregate(tags, list(range(25)))
        assert certificate.count == 25
        assert scheme.verify(tags, certificate)

    def test_certificate_succinct(self, scheme, tags):
        small = scheme.aggregate(tags, [0, 1])
        large = scheme.aggregate(tags, list(range(40)))
        assert small.size_bytes() == large.size_bytes()

    def test_inflated_count_rejected(self, scheme, tags):
        certificate = scheme.aggregate(tags, list(range(10)))
        inflated = CountCertificate(
            combined_tag=certificate.combined_tag,
            count=30,
            proof=certificate.proof,
        )
        assert not scheme.verify(tags, inflated)

    def test_wrong_tag_rejected(self, scheme, tags):
        certificate = scheme.aggregate(tags, list(range(10)))
        wrong = CountCertificate(
            combined_tag=bytes(32),
            count=10,
            proof=certificate.proof,
        )
        assert not scheme.verify(tags, wrong)

    def test_random_proof_rejected(self, scheme, tags, rng):
        certificate = scheme.aggregate(tags, list(range(10)))
        forged = CountCertificate(
            combined_tag=certificate.combined_tag,
            count=10,
            proof=forge_random_proof("snarg-connection/subset", rng),
        )
        assert not scheme.verify(tags, forged)

    def test_duplicate_indices_collapsed(self, scheme, tags):
        certificate = scheme.aggregate(tags, [3, 3, 5, 5, 7])
        assert certificate.count == 3

    def test_board_change_invalidates(self, scheme, tags):
        certificate = scheme.aggregate(tags, list(range(10)))
        mutated = list(tags)
        mutated[0] = bytes(32)
        assert not scheme.verify(mutated, certificate)


class TestBarrierDirection:
    def test_certifier_yields_subset_snarg(self, scheme, rng):
        """The paper's barrier: a count-certifier IS a subset SNARG."""
        snarg = snarg_for_subset_from_certifier(
            scheme.aggregate, scheme.verify
        )
        group = XorGroup(32)
        instance, witness = sample_planted_instance(group, 30, 12, rng)
        proof = snarg.prove(instance, witness)
        assert snarg.verify(instance, proof)
        # Succinct: far below the witness/instance size.
        assert snarg.proof_size_bytes < 100

    def test_snarg_sound_on_wrong_instance(self, scheme, rng):
        snarg = snarg_for_subset_from_certifier(
            scheme.aggregate, scheme.verify
        )
        group = XorGroup(32)
        instance, witness = sample_planted_instance(group, 30, 12, rng)
        proof = snarg.prove(instance, witness)
        other, _ = sample_planted_instance(group, 30, 12, rng.fork("other"))
        assert not snarg.verify(other, proof)

    def test_prove_requires_valid_witness(self, scheme, rng):
        snarg = snarg_for_subset_from_certifier(
            scheme.aggregate, scheme.verify
        )
        group = XorGroup(32)
        instance, witness = sample_planted_instance(group, 30, 12, rng)
        with pytest.raises(ProofError):
            snarg.prove(instance, witness[:-1] + [29 if witness[-1] != 29
                                                  else 28])

    def test_average_case_distribution_matches(self, rng):
        """Planted instances are exactly multisig transcripts: uniform
        tags, target = XOR of a hidden subset."""
        group = XorGroup(32)
        instance, witness = sample_planted_instance(group, 20, 7, rng)
        combined = group.combine_all(
            [instance.elements[i] for i in witness]
        )
        assert combined == instance.target
