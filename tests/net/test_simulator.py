"""Tests for the synchronous network simulator."""

from typing import List, Sequence

import pytest

from repro.errors import NetworkError
from repro.net.party import Envelope, Party, SilentParty
from repro.net.simulator import SynchronousNetwork


class EchoParty(Party):
    """Sends 'ping' to a peer in round 0, echoes whatever it receives,
    halts after round 2."""

    def __init__(self, party_id: int, peer: int) -> None:
        super().__init__(party_id)
        self.peer = peer
        self.received: List[bytes] = []

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        self.received.extend(envelope.payload for envelope in inbox)
        if round_index == 0:
            return [self.send(self.peer, b"ping-%d" % self.party_id)]
        if round_index >= 2:
            return self.halt(len(self.received))
        return [
            self.send(envelope.sender, b"echo:" + envelope.payload)
            for envelope in inbox
        ]


class SpoofingParty(Party):
    """Tries to forge the sender field on its envelopes."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index == 0:
            return [Envelope(sender=999, recipient=1, payload=b"spoofed")]
        return self.halt()


class RecordingParty(Party):
    def __init__(self, party_id: int) -> None:
        super().__init__(party_id)
        self.senders: List[int] = []

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        self.senders.extend(envelope.sender for envelope in inbox)
        if round_index >= 1:
            return self.halt()
        return []


class TestDelivery:
    def test_round_trip(self):
        a, b = EchoParty(0, 1), EchoParty(1, 0)
        network = SynchronousNetwork([a, b])
        network.run(max_rounds=10)
        assert b"ping-0" in b.received
        assert b"echo:ping-0" in a.received

    def test_messages_delivered_next_round(self):
        a, b = EchoParty(0, 1), EchoParty(1, 0)
        network = SynchronousNetwork([a, b])
        network.run_round()
        assert a.received == []  # sent this round, not yet delivered
        network.run_round()
        assert b"ping-1" in a.received

    def test_unknown_recipient_rejected(self):
        class Stray(Party):
            def step(self, round_index, inbox):
                return [self.send(42, b"x")]

        network = SynchronousNetwork([Stray(0)])
        with pytest.raises(NetworkError):
            network.run_round()

    def test_duplicate_party_id_rejected(self):
        with pytest.raises(NetworkError):
            SynchronousNetwork([SilentParty(0), SilentParty(0)])


class TestAuthentication:
    def test_sender_stamped_by_transport(self):
        spoofer = SpoofingParty(0)
        recorder = RecordingParty(1)
        network = SynchronousNetwork([spoofer, recorder])
        network.run_until([1], max_rounds=5)
        assert recorder.senders == [0]  # true sender, not 999


class TestTermination:
    def test_run_until_honest(self):
        a = EchoParty(0, 1)
        never_halts = SilentParty(1)
        network = SynchronousNetwork([a, never_halts])
        network.run_until([0], max_rounds=10)
        assert a.halted
        assert not never_halts.halted

    def test_nontermination_detected(self):
        network = SynchronousNetwork([SilentParty(0)])
        with pytest.raises(NetworkError):
            network.run(max_rounds=5)

    def test_run_until_unknown_target_raises_network_error(self):
        # Regression: this used to surface as a bare KeyError mid-run.
        network = SynchronousNetwork([SilentParty(0), SilentParty(1)])
        with pytest.raises(NetworkError, match="unknown target party"):
            network.run_until([0, 42], max_rounds=5)

    def test_run_until_unknown_target_message_lists_ids(self):
        network = SynchronousNetwork([SilentParty(3)])
        with pytest.raises(NetworkError, match=r"\[7, 9\]"):
            network.run_until([9, 7], max_rounds=5)
        # Validation happens up front, before any round runs.
        assert network.round_index == 0

    def test_outputs_collects_halted(self):
        a, b = EchoParty(0, 1), EchoParty(1, 0)
        network = SynchronousNetwork([a, b])
        network.run(max_rounds=10)
        outputs = network.outputs()
        assert set(outputs) == {0, 1}


class TestBudget:
    def test_budget_enforced(self):
        class Chatty(Party):
            def step(self, round_index, inbox):
                return [self.send(1, b"x") for _ in range(5)]

        network = SynchronousNetwork(
            [Chatty(0), SilentParty(1)], message_budget_per_party=3
        )
        with pytest.raises(NetworkError):
            network.run_round()

    def test_budget_allows_under_limit(self):
        class Modest(Party):
            def step(self, round_index, inbox):
                if round_index == 0:
                    return [self.send(1, b"x")]
                return self.halt()

        network = SynchronousNetwork(
            [Modest(0), SilentParty(1)], message_budget_per_party=3
        )
        network.run_until([0], max_rounds=5)


class TestMetricsIntegration:
    def test_traffic_charged(self):
        a, b = EchoParty(0, 1), EchoParty(1, 0)
        network = SynchronousNetwork([a, b])
        network.run(max_rounds=10)
        assert network.metrics.total_bits > 0
        assert network.metrics.tally_of(0).messages_sent >= 1

    def test_envelope_size_bits(self):
        envelope = Envelope(sender=0, recipient=1, payload=b"abc")
        assert envelope.size_bits() == 24
