"""Tests for the experiment-report assembler."""

import pathlib

from repro.analysis.report import assemble_report, write_report


class TestAssemble:
    def test_missing_records_flagged(self, tmp_path):
        report = assemble_report(tmp_path)
        assert "no record" in report
        assert "T1 — Table 1" in report

    def test_known_records_included(self, tmp_path):
        (tmp_path / "table1.txt").write_text("TABLE-ONE-CONTENT")
        report = assemble_report(tmp_path)
        assert "TABLE-ONE-CONTENT" in report

    def test_extra_records_included(self, tmp_path):
        (tmp_path / "surprise.txt").write_text("SURPRISE-CONTENT")
        report = assemble_report(tmp_path)
        assert "extra record: surprise" in report
        assert "SURPRISE-CONTENT" in report

    def test_write_report(self, tmp_path):
        target = tmp_path / "out.txt"
        write_report(target, tmp_path)
        assert "Measured experiment report" in target.read_text()

    def test_default_dir_points_at_benchmarks(self):
        from repro.analysis.report import default_results_dir

        assert default_results_dir().parts[-2:] == ("benchmarks", "results")
