"""Checkpoint codec: property round-trips, durability, corruption."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.checkpoint import (
    MAGIC,
    ClusterCheckpoint,
    PartyCheckpoint,
    checkpoint_path,
    decode_checkpoint,
    encode_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.errors import ClusterError
from repro.net.metrics import PartyTally
from repro.net.party import SilentParty
from repro.runtime.transport import Frame

# -- Hypothesis strategies ---------------------------------------------------

tallies = st.builds(
    PartyTally,
    bits_sent=st.integers(min_value=0, max_value=1 << 40),
    bits_received=st.integers(min_value=0, max_value=1 << 40),
    messages_sent=st.integers(min_value=0, max_value=1 << 20),
    messages_received=st.integers(min_value=0, max_value=1 << 20),
    peers_sent_to=st.sets(st.integers(min_value=0, max_value=255)),
    peers_received_from=st.sets(st.integers(min_value=0, max_value=255)),
)

@st.composite
def frames(draw):
    # Delivery is strictly after send (the decoder rejects anything
    # else), so the delay is drawn separately and added on.  Charges are
    # wire-canonical (>= 0): the Frame codec resolves the -1
    # charge-by-payload sentinel on encode, so only resolved charges
    # survive an exact-equality round trip (the mesh codec, which
    # preserves -1, is exercised in test_wire's mesh section).
    sent_round = draw(st.integers(min_value=0, max_value=1000))
    delay = draw(st.integers(min_value=1, max_value=16))
    return Frame(
        sender=draw(st.integers(min_value=0, max_value=255)),
        recipient=draw(st.integers(min_value=0, max_value=255)),
        payload=draw(st.binary(max_size=64)),
        sent_round=sent_round,
        deliver_round=sent_round + delay,
        charge_bits=draw(st.integers(min_value=0, max_value=1 << 20)),
        seq=draw(st.integers(min_value=0, max_value=1 << 20)),
    )


@st.composite
def party_checkpoints(draw, party_id=None):
    pid = (
        party_id
        if party_id is not None
        else draw(st.integers(min_value=0, max_value=255))
    )
    return PartyCheckpoint(
        party_id=pid,
        party_blob=pickle.dumps(SilentParty(pid)),
        send_seq=draw(st.integers(min_value=0, max_value=1 << 20)),
        trace_seq=draw(st.integers(min_value=0, max_value=1 << 20)),
        tally=draw(tallies),
    )


@st.composite
def cluster_checkpoints(draw):
    ids = sorted(draw(st.sets(st.integers(min_value=0, max_value=63),
                              min_size=1, max_size=8)))
    parties = [draw(party_checkpoints(party_id=pid)) for pid in ids]
    return ClusterCheckpoint(
        next_round=draw(st.integers(min_value=0, max_value=10_000)),
        parties=parties,
        staged=draw(st.lists(frames(), max_size=8)),
    )


# -- round-trip properties ---------------------------------------------------


@given(cluster_checkpoints())
def test_encode_decode_round_trip(checkpoint):
    decoded = decode_checkpoint(encode_checkpoint(checkpoint))
    assert decoded.next_round == checkpoint.next_round
    assert decoded.staged == checkpoint.staged
    original = checkpoint.by_party()
    restored = decoded.by_party()
    assert set(restored) == set(original)
    for pid, record in restored.items():
        want = original[pid]
        assert record.party_blob == want.party_blob
        assert record.send_seq == want.send_seq
        assert record.trace_seq == want.trace_seq
        assert record.tally == want.tally


@given(cluster_checkpoints())
def test_encoding_is_canonical(checkpoint):
    # Party order does not matter: records are sorted on encode.
    shuffled = ClusterCheckpoint(
        next_round=checkpoint.next_round,
        parties=list(reversed(checkpoint.parties)),
        staged=checkpoint.staged,
    )
    assert encode_checkpoint(shuffled) == encode_checkpoint(checkpoint)


@given(cluster_checkpoints())
def test_save_load_round_trip(checkpoint):
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as raw:
        tmp = Path(raw)
        path = save_checkpoint(tmp, "shard-0-r4", checkpoint)
        assert path == checkpoint_path(tmp, "shard-0-r4")
        loaded = load_checkpoint(tmp, "shard-0-r4")
    assert loaded is not None
    assert encode_checkpoint(loaded) == encode_checkpoint(checkpoint)


# -- failure modes -----------------------------------------------------------


def test_load_missing_returns_none(tmp_path):
    assert load_checkpoint(tmp_path, "nope") is None


def test_bad_magic_rejected():
    with pytest.raises(ClusterError, match="magic"):
        decode_checkpoint(b"WRONG" + b"\x00" * 16)


def test_truncated_checkpoint_rejected():
    blob = encode_checkpoint(
        ClusterCheckpoint(
            next_round=3,
            parties=[PartyCheckpoint.of(SilentParty(0))],
        )
    )
    with pytest.raises(ClusterError):
        decode_checkpoint(blob[: len(blob) // 2])


def test_trailing_garbage_rejected():
    blob = encode_checkpoint(ClusterCheckpoint(next_round=0, parties=[]))
    with pytest.raises(ClusterError, match="trailing"):
        decode_checkpoint(blob + b"\x00")


def test_party_blob_id_mismatch_rejected():
    record = PartyCheckpoint(
        party_id=7, party_blob=pickle.dumps(SilentParty(3))
    )
    with pytest.raises(ClusterError, match="mismatch"):
        record.restore_party()


def test_corrupt_party_blob_rejected():
    record = PartyCheckpoint(party_id=0, party_blob=b"\x80garbage")
    with pytest.raises(ClusterError, match="corrupt"):
        record.restore_party()


def test_save_is_atomic_no_temp_left(tmp_path):
    checkpoint = ClusterCheckpoint(next_round=1, parties=[])
    save_checkpoint(tmp_path, "s", checkpoint)
    assert [p.name for p in tmp_path.iterdir()] == ["s.ckpt"]
    assert (tmp_path / "s.ckpt").read_bytes().startswith(MAGIC)
