"""The party abstraction for the synchronous simulator.

A protocol is a set of :class:`Party` objects; the simulator repeatedly
collects each party's outgoing envelopes for the round and delivers them
at the start of the next round.  Honest protocol logic subclasses
:class:`Party`; Byzantine behaviors subclass it too and simply misbehave
(the simulator treats both identically — corruption is a property of the
object, not of the transport).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence


@dataclass(frozen=True)
class Envelope:
    """One point-to-point message on the simulated wire."""

    sender: int
    recipient: int
    payload: bytes

    def size_bits(self) -> int:
        """Size charged by the metrics ledger."""
        return 8 * len(self.payload)


class Party(abc.ABC):
    """A state machine driven by the synchronous network.

    Subclasses implement :meth:`step`, which is called once per round with
    the envelopes delivered this round and returns the envelopes to send.
    A party signals completion by setting :attr:`halted`; its
    :attr:`output` is then read by the driver.
    """

    def __init__(self, party_id: int) -> None:
        self.party_id = party_id
        self.halted = False
        self.output: Optional[Any] = None

    @abc.abstractmethod
    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        """Process this round's inbox and return outgoing envelopes."""

    def send(self, recipient: int, payload: bytes) -> Envelope:
        """Convenience constructor for an outgoing envelope."""
        return Envelope(sender=self.party_id, recipient=recipient, payload=payload)

    def halt(self, output: Any = None) -> List[Envelope]:
        """Mark this party finished with the given output; returns []."""
        self.halted = True
        self.output = output
        return []


class SilentParty(Party):
    """A party that never sends anything (models a crashed/isolated node)."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        return []
