"""Tests for corruption planning."""

import pytest

from repro.errors import ConfigurationError
from repro.net.adversary import (
    CorruptionPlan,
    corrupt_after_setup,
    prefix_corruption,
    random_corruption,
    targeted_corruption,
)
from repro.utils.randomness import Randomness


class TestPlans:
    def test_random_corruption_size(self, rng):
        plan = random_corruption(100, 20, rng)
        assert plan.t == 20
        assert len(plan.honest) == 80

    def test_honest_complement(self, rng):
        plan = random_corruption(50, 10, rng)
        assert set(plan.honest) | plan.corrupted == set(range(50))
        assert not set(plan.honest) & plan.corrupted

    def test_is_corrupt(self, rng):
        plan = targeted_corruption(10, [2, 5])
        assert plan.is_corrupt(2)
        assert not plan.is_corrupt(3)

    def test_prefix_corruption(self):
        plan = prefix_corruption(10, 3)
        assert plan.corrupted == {0, 1, 2}

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            targeted_corruption(10, [10])
        with pytest.raises(ConfigurationError):
            random_corruption(10, 10, Randomness(1))
        with pytest.raises(ConfigurationError):
            prefix_corruption(10, -1)

    def test_deterministic_given_seed(self):
        a = random_corruption(100, 20, Randomness(5))
        b = random_corruption(100, 20, Randomness(5))
        assert a.corrupted == b.corrupted


class TestSetupAdaptive:
    def test_default_is_random(self, rng):
        plan = corrupt_after_setup(b"setup", 50, 10, rng)
        assert plan.t == 10

    def test_strategy_applied(self, rng):
        def strategy(setup, n, t, rng_):
            # "Inspect" the setup: corrupt parties whose id matches a byte.
            return targeted_corruption(n, list(range(t)))

        plan = corrupt_after_setup(b"setup", 50, 5, rng, strategy)
        assert plan.corrupted == {0, 1, 2, 3, 4}

    def test_over_budget_strategy_rejected(self, rng):
        def greedy(setup, n, t, rng_):
            return targeted_corruption(n, list(range(t + 1)))

        with pytest.raises(ConfigurationError):
            corrupt_after_setup(b"setup", 50, 5, rng, greedy)
