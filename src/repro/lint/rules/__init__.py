"""Rule registry for the protocol-aware linter.

Every concrete rule is instantiated once here; the engine iterates
:data:`ALL_RULES`, and the CLI's ``rules``/``explain`` subcommands read
the same registry so documentation can never drift from enforcement.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.model import Rule
from repro.lint.rules.accounting import RawSendRule, UnspannedChargeRule
from repro.lint.rules.asyncsafety import FireAndForgetRule, SharedStateRule
from repro.lint.rules.determinism import UnseededRandomnessRule, WallClockRule
from repro.lint.rules.exceptions import BroadExceptRule
from repro.lint.rules.schema import SchemaDriftRule
from repro.lint.rules.trust import TrustBoundaryRule
from repro.lint.rules.wire import WireCodecRule

#: Every registered rule, in rule-id order.
ALL_RULES: Tuple[Rule, ...] = (
    RawSendRule(),        # ACC001
    FireAndForgetRule(),  # ASY001
    SharedStateRule(),    # ASY002
    UnseededRandomnessRule(),  # DET001
    WallClockRule(),      # DET002
    BroadExceptRule(),    # EXC001
    UnspannedChargeRule(),  # OBS001
    SchemaDriftRule(),    # SCH001
    WireCodecRule(),      # SER001
    TrustBoundaryRule(),  # TRU001
)

_BY_ID: Dict[str, Rule] = {rule.meta.rule_id: rule for rule in ALL_RULES}


def get_rule(rule_id: str) -> Optional[Rule]:
    """Look a rule up by id (``None`` for unknown ids)."""
    return _BY_ID.get(rule_id)


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    return sorted(_BY_ID)


def select_rules(ids: Tuple[str, ...]) -> Tuple[Rule, ...]:
    """The subset of rules named by ``ids`` (empty = all)."""
    if not ids:
        return ALL_RULES
    return tuple(rule for rule in ALL_RULES if rule.meta.rule_id in ids)
