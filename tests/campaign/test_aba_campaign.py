"""Campaign integration for the asynchronous ABA cells.

Unmarked tests stay tier-1 cheap (single n=16 ABA cells run in tens of
milliseconds); the full strategy × schedule sweep over the ABA configs
is ``@pytest.mark.campaign`` like the other matrix sweeps.
"""

from __future__ import annotations

import pytest

from repro.campaign.catalog import KIND_ABA, default_catalog
from repro.campaign.invariants import check_aba_invariants
from repro.campaign.matrix import config_by_name, enumerate_cells
from repro.campaign.runner import execute_spec
from repro.campaign.schedules import schedule_by_name
from repro.campaign.spec import CampaignSpec
from repro.net.adversary import CorruptionPlan
from repro.utils.randomness import Randomness


def _spec(**overrides):
    fields = dict(
        config="aba", strategy="honest", schedule="none", n=16, seed=0
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


# -- invariants --------------------------------------------------------------


class TestABAInvariants:
    def test_clean_run_has_no_violations(self):
        violations = check_aba_invariants(
            {0: 0, 1: 1, 2: 0}, {0: 0, 1: 0, 2: 0}, [0, 1, 2]
        )
        assert violations == []

    def test_missing_output_is_a_liveness_violation(self):
        violations = check_aba_invariants(
            {0: 0, 1: 1}, {0: 0}, [0, 1]
        )
        assert [v.name for v in violations] == ["no-output"]

    def test_churned_parties_are_excused_from_liveness_only(self):
        violations = check_aba_invariants(
            {0: 0, 1: 1, 2: 0},
            {0: 0},
            [0, 1, 2],
            departed=[1],
            joined_late=[2],
        )
        assert violations == []

    def test_churned_party_with_wrong_output_still_flags_agreement(self):
        # Excusal covers liveness, never safety: a leaver that *did*
        # decide the other value is a loud agreement split.
        violations = check_aba_invariants(
            {0: 0, 1: 1},
            {0: 0, 1: 1},
            [0, 1],
            departed=[1],
        )
        assert [v.name for v in violations] == ["agreement"]

    def test_unanimous_inputs_pin_the_decision(self):
        violations = check_aba_invariants(
            {0: 1, 1: 1}, {0: 0, 1: 0}, [0, 1]
        )
        assert [v.name for v in violations] == ["validity"]

    def test_bits_over_budget_flagged(self):
        violations = check_aba_invariants(
            {0: 0, 1: 0},
            {0: 0, 1: 0},
            [0, 1],
            measured_bits=200,
            budget_bits=100,
        )
        assert [v.name for v in violations] == ["bits-budget"]


# -- catalog / matrix / schedules wiring -------------------------------------


class TestWiring:
    def test_aba_strategy_roster(self):
        names = [s.name for s in default_catalog().for_kind(KIND_ABA)]
        assert names == [
            "honest",
            "random-silent",
            "aba-equivocate",
            "adaptive-coin",
            "adaptive-first-aux",
        ]

    def test_adaptive_strategies_carry_registry_names(self):
        catalog = default_catalog()
        for name in ("adaptive-coin", "adaptive-first-aux"):
            strategy = catalog.get(name)
            assert strategy.adaptive == name
            assert strategy.plan_kind == "none"

    def test_aba_configs_enumerate_async_schedules(self):
        for config_name in ("aba", "aba-unanimous"):
            config = config_by_name(config_name)
            assert config.kind == KIND_ABA
            assert "adversarial-order" in config.schedules
            assert "churn-join" in config.schedules
            assert "churn-collapse" in config.schedules
        cells = enumerate_cells(seed=0)
        aba_cells = [c for c in cells if c.config.kind == KIND_ABA]
        assert len(aba_cells) == 2 * 5 * 7  # configs x strategies x schedules

    def test_churn_schedules_respect_the_remaining_budget(self):
        rng = Randomness(3).fork("cell")
        f = (16 - 1) // 3
        # Budget fully spent on Byzantine corruption: churn degenerates.
        full = CorruptionPlan(corrupted=frozenset(range(f)), n=16)
        assert schedule_by_name("churn-join").build(16, full, rng) is None
        assert schedule_by_name("churn-leave").build(16, full, rng) is None
        # Half-spent: churn spends only the remainder, on honest parties.
        half = CorruptionPlan(corrupted=frozenset(range(2)), n=16)
        plan = schedule_by_name("churn-leave").build(16, half, rng)
        assert plan is not None
        assert len(plan.crashes) == f - 2
        assert not set(plan.crashes) & half.corrupted


# -- single cells (tier-1 cheap) ---------------------------------------------

class TestABACells:
    def test_honest_baseline_passes(self):
        outcome = execute_spec(_spec())
        assert not outcome.failed
        assert outcome.measured_bits is not None
        assert outcome.budget_bits is not None
        assert outcome.measured_bits <= outcome.budget_bits

    def test_deterministic(self):
        a = execute_spec(_spec(strategy="adaptive-coin", schedule="churn-join"))
        b = execute_spec(_spec(strategy="adaptive-coin", schedule="churn-join"))
        assert a.spec == b.spec
        assert a.signature == b.signature
        assert a.measured_bits == b.measured_bits

    def test_unanimous_validity_under_adversarial_order(self):
        outcome = execute_spec(
            _spec(config="aba-unanimous", schedule="adversarial-order")
        )
        assert not outcome.failed

    def test_equivocators_survive_latency_models(self):
        outcome = execute_spec(
            _spec(strategy="aba-equivocate", schedule="latency-lognormal")
        )
        assert not outcome.failed

    def test_adaptive_with_churn_stays_within_combined_budget(self):
        outcome = execute_spec(
            _spec(strategy="adaptive-first-aux", schedule="churn-leave")
        )
        assert not outcome.failed

    def test_churn_collapse_fails_loudly_as_expected(self):
        outcome = execute_spec(_spec(schedule="churn-collapse"))
        assert outcome.failed
        assert outcome.expected_failure  # model-breaking schedule
        assert not outcome.unexpected
        assert outcome.error_type is not None
        assert outcome.signature[0].startswith("error:")


# -- the full sweep (marked) -------------------------------------------------


@pytest.mark.campaign
def test_aba_matrix_sweep_has_no_unexpected_outcomes():
    cells = [
        c for c in enumerate_cells(seed=2) if c.config.kind == KIND_ABA
    ]
    assert len(cells) == 70
    outcomes = [execute_spec(c.spec) for c in cells]
    unexpected = [o for o in outcomes if o.unexpected]
    assert unexpected == []
    # Every loud failure is a churn-collapse cell, and vice versa.
    failed = {o.spec.schedule for o in outcomes if o.failed}
    assert failed <= {"churn-collapse"}
    within_budget = [
        o
        for o in outcomes
        if o.measured_bits is not None and o.budget_bits is not None
    ]
    assert all(o.measured_bits <= o.budget_bits for o in within_budget)
