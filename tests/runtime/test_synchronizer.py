"""RoundSynchronizer: the paper's synchronous model over async transports.

The central claim of the runtime is *differential equivalence*: party
state machines driven by the RoundSynchronizer produce exactly the
outputs and metrics they produce under ``SynchronousNetwork``.  These
tests pin that equivalence for the committee protocols, plus runtime
API semantics (budgets, run_until validation, tracing determinism).
"""

from typing import List, Sequence

import pytest

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics
from repro.net.party import Envelope, Party, SilentParty
from repro.net.simulator import SynchronousNetwork
from repro.protocols.gradecast import check_gradecast_guarantees, run_gradecast
from repro.protocols.phase_king import run_phase_king
from repro.runtime import (
    TraceRecorder,
    run_gradecast_runtime,
    run_parties,
    run_phase_king_runtime,
)


class EchoParty(Party):
    """Same machine the simulator tests use: ping, echo, halt."""

    def __init__(self, party_id: int, peer: int) -> None:
        super().__init__(party_id)
        self.peer = peer
        self.received: List[bytes] = []

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        self.received.extend(envelope.payload for envelope in inbox)
        if round_index == 0:
            return [self.send(self.peer, b"ping-%d" % self.party_id)]
        if round_index >= 2:
            return self.halt(len(self.received))
        return [
            self.send(envelope.sender, b"echo:" + envelope.payload)
            for envelope in inbox
        ]


class TestBasicSemantics:
    def test_echo_round_trip_matches_simulator(self):
        sim_a, sim_b = EchoParty(0, 1), EchoParty(1, 0)
        network = SynchronousNetwork([sim_a, sim_b])
        network.run(max_rounds=10)

        rt_a, rt_b = EchoParty(0, 1), EchoParty(1, 0)
        result = run_parties([rt_a, rt_b], max_rounds=10)
        assert rt_a.received == sim_a.received
        assert rt_b.received == sim_b.received
        assert result.outputs == network.outputs()
        assert result.metrics.snapshot() == network.metrics.snapshot()

    def test_messages_not_visible_before_barrier(self):
        class Probe(Party):
            def __init__(self, party_id):
                super().__init__(party_id)
                self.first_inbox = None

            def step(self, round_index, inbox):
                if round_index == 0:
                    return [self.send(1 - self.party_id, b"x")]
                if self.first_inbox is None:
                    self.first_inbox = [e.payload for e in inbox]
                return self.halt()

        a, b = Probe(0), Probe(1)
        run_parties([a, b], max_rounds=5)
        # Round-0 sends arrive exactly at round 1, not during round 0.
        assert a.first_inbox == [b"x"]

    def test_duplicate_party_id_rejected(self):
        with pytest.raises(NetworkError):
            run_parties([SilentParty(0), SilentParty(0)])

    def test_nontermination_detected(self):
        with pytest.raises(NetworkError, match="did not terminate"):
            run_parties([SilentParty(0)], max_rounds=4)

    def test_run_until_unknown_target_raises(self):
        with pytest.raises(NetworkError, match="unknown target party"):
            run_parties([SilentParty(0)], until=[3], max_rounds=4)

    def test_budget_enforced(self):
        class Chatty(Party):
            def step(self, round_index, inbox):
                return [self.send(1, b"x") for _ in range(5)]

        with pytest.raises(NetworkError, match="message budget"):
            run_parties(
                [Chatty(0), SilentParty(1)],
                message_budget_per_party=3,
                max_rounds=3,
            )

    def test_outputs_only_halted(self):
        a = EchoParty(0, 1)
        result = run_parties(
            [a, SilentParty(1)], until=[0], max_rounds=10
        )
        assert set(result.outputs) == {0}


@pytest.mark.parametrize("n", [7, 13])
def test_phase_king_differential(n):
    inputs = {i: (i * 3) % 2 for i in range(n)}
    byzantine = [1, n - 2][: max(1, (n - 1) // 3)]
    sync_outputs, sync_metrics = run_phase_king(inputs, byzantine)
    rt_outputs, rt_metrics = run_phase_king_runtime(inputs, byzantine)
    assert rt_outputs == sync_outputs
    assert rt_metrics.snapshot() == sync_metrics.snapshot()


@pytest.mark.parametrize("equivocating", [False, True])
def test_gradecast_differential(equivocating):
    members = list(range(7))
    sync_outputs, sync_metrics = run_gradecast(
        members, sender=2, value=1, byzantine=[5],
        equivocating_sender=equivocating,
    )
    rt_outputs, rt_metrics = run_gradecast_runtime(
        members, sender=2, value=1, byzantine=[5],
        equivocating_sender=equivocating,
    )
    assert rt_outputs == sync_outputs
    assert rt_metrics.snapshot() == sync_metrics.snapshot()
    assert check_gradecast_guarantees(
        rt_outputs, sender_honest=not equivocating, sender_value=1
    )


def test_tcp_matches_local_for_phase_king():
    inputs = {i: i % 2 for i in range(7)}
    local_out, local_metrics = run_phase_king_runtime(inputs, [3])
    tcp_out, tcp_metrics = run_phase_king_runtime(inputs, [3], transport="tcp")
    assert tcp_out == local_out
    assert tcp_metrics.snapshot() == local_metrics.snapshot()


class TestTraceDeterminism:
    def test_same_seed_same_trace(self):
        inputs = {i: i % 2 for i in range(7)}
        fingerprints = []
        for _ in range(2):
            trace = TraceRecorder()
            run_phase_king_runtime(inputs, [2], trace=trace)
            fingerprints.append(trace.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_trace_identical_across_transports(self):
        inputs = {i: i % 2 for i in range(5)}
        traces = []
        for kind in ("local", "tcp"):
            trace = TraceRecorder()
            run_phase_king_runtime(inputs, [1], transport=kind, trace=trace)
            traces.append(trace.fingerprint())
        assert traces[0] == traces[1]

    def test_trace_contains_expected_kinds(self):
        trace = TraceRecorder()
        run_parties([EchoParty(0, 1), EchoParty(1, 0)], trace=trace)
        kinds = {
            event["kind"]
            for party in trace.party_ids
            for event in trace.events_of(party)
        }
        assert {"send", "recv", "round-barrier", "halt"} <= kinds
        assert trace.max_queue_depth() >= 1


def test_external_metrics_object_is_charged():
    metrics = CommunicationMetrics()
    result = run_parties(
        [EchoParty(0, 1), EchoParty(1, 0)], metrics=metrics
    )
    assert result.metrics is metrics
    assert metrics.total_bits > 0
