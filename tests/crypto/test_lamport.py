"""Tests for Lamport one-time signatures with oblivious keygen."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import lamport
from repro.errors import KeyError_, SignatureError

BITS = 32  # small keys keep the suite fast; structure is identical


@pytest.fixture
def keys():
    return lamport.keygen_from_seed(b"seed" * 8, BITS)


class TestSignVerify:
    def test_valid(self, keys):
        vk, sk = keys
        assert lamport.verify(vk, b"m", lamport.sign(sk, b"m"))

    def test_wrong_message_rejected(self, keys):
        vk, sk = keys
        assert not lamport.verify(vk, b"other", lamport.sign(sk, b"m"))

    def test_wrong_key_rejected(self, keys):
        vk, sk = keys
        vk2, _ = lamport.keygen_from_seed(b"other" * 8, BITS)
        assert not lamport.verify(vk2, b"m", lamport.sign(sk, b"m"))

    def test_truncated_signature_rejected(self, keys):
        vk, sk = keys
        signature = lamport.sign(sk, b"m")
        short = lamport.LamportSignature(preimages=signature.preimages[:-1])
        assert not lamport.verify(vk, b"m", short)

    def test_tampered_preimage_rejected(self, keys):
        vk, sk = keys
        signature = lamport.sign(sk, b"m")
        tampered = lamport.LamportSignature(
            preimages=(bytes(32),) + signature.preimages[1:]
        )
        assert not lamport.verify(vk, b"m", tampered)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_arbitrary_messages(self, message):
        vk, sk = lamport.keygen_from_seed(b"prop" * 8, BITS)
        assert lamport.verify(vk, message, lamport.sign(sk, message))


class TestObliviousKeygen:
    def test_no_signing_capability(self):
        vk = lamport.oblivious_keygen(b"obliv" * 8, BITS)
        # All-zero preimages (or any guess) must fail to verify.
        fake = lamport.LamportSignature(preimages=tuple(bytes(32) for _ in range(BITS)))
        assert not lamport.verify(vk, b"m", fake)

    def test_shape_matches_real_key(self):
        real, _ = lamport.keygen_from_seed(b"a" * 16, BITS)
        oblivious = lamport.oblivious_keygen(b"b" * 16, BITS)
        assert real.message_bits == oblivious.message_bits
        assert len(real.encode()) == len(oblivious.encode())

    def test_deterministic(self):
        assert lamport.oblivious_keygen(b"x" * 8, BITS).encode() == (
            lamport.oblivious_keygen(b"x" * 8, BITS).encode()
        )


class TestDeterminism:
    def test_keygen_from_seed_reproducible(self):
        a = lamport.keygen_from_seed(b"s" * 8, BITS)
        b = lamport.keygen_from_seed(b"s" * 8, BITS)
        assert a[0].encode() == b[0].encode()

    def test_distinct_seeds_distinct_keys(self):
        a, _ = lamport.keygen_from_seed(b"s1" * 8, BITS)
        b, _ = lamport.keygen_from_seed(b"s2" * 8, BITS)
        assert a.encode() != b.encode()


class TestEncoding:
    def test_signature_roundtrip(self, keys):
        _, sk = keys
        signature = lamport.sign(sk, b"m")
        decoded = lamport.decode_signature(signature.encode(), BITS)
        assert decoded == signature

    def test_verification_key_roundtrip(self, keys):
        vk, _ = keys
        assert lamport.decode_verification_key(vk.encode(), BITS) == vk

    def test_malformed_signature_rejected(self):
        with pytest.raises(SignatureError):
            lamport.decode_signature(b"short", BITS)

    def test_malformed_key_rejected(self):
        with pytest.raises(KeyError_):
            lamport.decode_verification_key(b"short", BITS)

    def test_sizes(self, keys):
        vk, sk = keys
        assert vk.size_bytes() == 64 * BITS
        assert lamport.sign(sk, b"m").size_bytes() == 32 * BITS
