"""Tests for the top-level public API."""

import repro


class TestQuickBA:
    def test_quick_ba_defaults(self):
        result = repro.quick_ba(n=48, input_bit=1, seed=3)
        assert result.agreement and result.validity
        assert result.agreed_value == 1

    def test_quick_ba_custom_corruption(self):
        result = repro.quick_ba(n=48, input_bit=0, seed=4,
                                corrupt_fraction=0.1)
        assert result.agreement and result.validity
        assert result.agreed_value == 0


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_core_symbols(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scheme_metadata_matches_table1(self):
        owf = repro.OwfSRDS()
        snark = repro.SnarkSRDS()
        assert owf.describe()["setup"] == "trusted-pki"
        assert snark.describe()["setup"] == "bare-pki+crs"
