"""Named fault schedules composing with the runtime's FaultPlan.

A :class:`Schedule` turns (n, corruption plan, rng) into a
:class:`~repro.runtime.faults.FaultPlan` — or ``None`` for the
fault-free baseline.  ``model_breaking`` schedules deliberately exceed
the paper's synchronous model (a mid-protocol partition, crashing every
party): a protocol driven under them may fail its invariants or time
out, but it must do so *loudly* — the campaign records such outcomes as
expected failures and flags any silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.runtime.faults import (
    FaultPlan,
    adversarial_schedule,
    crash_corrupted,
    crash_everyone,
    partition_halves,
)
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class Schedule:
    """One named network-fault schedule.

    Attributes:
        name: stable identifier (appears in repro specs).
        description: one-line summary.
        build: ``(n, plan, rng) -> Optional[FaultPlan]``.
        needs_runtime: whether the schedule only makes sense over the
            async runtime (crash/delay/partition need a transport; pure
            reordering also works in-process through the
            ``delivery_rng`` seam of π_ba).
        model_breaking: exceeds the paper's model — invariant
            violations / loud failures are expected, silence is not.
    """

    name: str
    description: str
    build: Callable[[int, CorruptionPlan, Randomness], Optional[FaultPlan]]
    needs_runtime: bool = False
    model_breaking: bool = False


def _none(n: int, plan: CorruptionPlan, rng: Randomness) -> Optional[FaultPlan]:
    return None


def _kill_worker(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    """No network-level faults: the SIGKILL is a *process* fault.

    The cluster runner reads this schedule's name and arms the
    supervisor's kill plan (SIGKILL one worker after a mid-protocol
    round barrier); the wire-level fault plan stays empty because the
    parties themselves never misbehave — the substrate does.
    """
    return None


def _reorder(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=True, duplicate_probability=0.0
    )


def _duplicate(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=False, duplicate_probability=0.1
    )


def _reorder_dup(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=True, duplicate_probability=0.1
    )


def _random_delay(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"),
        reorder=True,
        duplicate_probability=0.0,
        random_delay_probability=0.15,
        random_delay_max=2,
    )


def _crash_corrupted(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    if not plan.corrupted:
        return None  # nothing to crash; degenerates to the baseline
    return crash_corrupted(plan, rng.fork("sched"), max_round=6)


def _partition_early(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return partition_halves(range(n), first_round=1, last_round=2)


def _crash_everyone(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return crash_everyone(range(n), round_index=1)


_DEFAULT: List[Schedule] = [
    Schedule("none", "fault-free synchronous baseline", _none),
    Schedule(
        "reorder",
        "randomized within-round delivery order",
        _reorder,
    ),
    Schedule(
        "duplicate",
        "10% of deliveries seen twice",
        _duplicate,
        needs_runtime=True,
    ),
    Schedule(
        "reorder-dup",
        "reordering plus 10% duplication",
        _reorder_dup,
        needs_runtime=True,
    ),
    Schedule(
        "random-delay",
        "MODEL-BREAKING: 15% of messages arrive 1-2 rounds late — "
        "delivery beyond the promised round exceeds the synchronous model",
        _random_delay,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "crash-corrupted",
        "crash every corrupted party at a random round <= 6",
        _crash_corrupted,
        needs_runtime=True,
    ),
    Schedule(
        "partition-early",
        "MODEL-BREAKING: sever the two halves during rounds 1-2",
        _partition_early,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "crash-everyone",
        "MODEL-BREAKING: crash every party at round 1",
        _crash_everyone,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "kill-worker",
        "SIGKILL one cluster worker mid-round; the supervisor must "
        "restart it from its durable checkpoint (cluster backend only)",
        _kill_worker,
    ),
]


def default_schedules() -> List[Schedule]:
    """The built-in schedules, in deterministic order."""
    return list(_DEFAULT)


def schedule_by_name(name: str) -> Schedule:
    for schedule in _DEFAULT:
        if schedule.name == name:
            return schedule
    raise ConfigurationError(f"unknown schedule {name!r}")
