"""Tests for the OWF + trusted-PKI SRDS construction (Thm 2.7)."""

import pytest

from repro.errors import ConfigurationError, SignatureError
from repro.srds.owf import (
    OwfAggregateSignature,
    OwfBaseSignature,
    OwfSRDS,
    decode_signature,
)
from repro.utils.randomness import Randomness

N = 256
BITS = 32


@pytest.fixture(scope="module")
def deployment():
    """One shared OWF-SRDS deployment (setup + keys) for the module."""
    rng = Randomness(77)
    # sortition_factor=1 so that, at this small N, a clear majority of
    # parties receive oblivious (non-signing) keys.
    scheme = OwfSRDS(message_bits=BITS, sortition_factor=1)
    pp = scheme.setup(N, rng.fork("setup"))
    verification_keys = {}
    signing_keys = {}
    for index in range(N):
        vk, sk = scheme.keygen(pp, rng.fork(f"kg-{index}"))
        verification_keys[index] = vk
        signing_keys[index] = sk
    return scheme, pp, verification_keys, signing_keys


def _sign_all(deployment, message, indices=None):
    scheme, pp, vks, sks = deployment
    indices = indices if indices is not None else range(N)
    signatures = []
    for index in indices:
        signature = scheme.sign(pp, index, sks[index], message)
        if signature is not None:
            signatures.append(signature)
    return signatures


class TestSetup:
    def test_signer_count_near_expected(self, deployment):
        scheme, pp, vks, sks = deployment
        signers = sum(1 for sk in sks.values() if sk is not None)
        expected = pp.extra["expected_signers"]
        assert 0.5 * expected <= signers <= 1.5 * expected

    def test_threshold_half_expected(self, deployment):
        _, pp, _, _ = deployment
        assert pp.acceptance_threshold == pp.extra["expected_signers"] // 2

    def test_oblivious_keys_indistinguishable_in_size(self, deployment):
        _, _, vks, sks = deployment
        sizes = {len(vk) for vk in vks.values()}
        assert len(sizes) == 1  # same length whether signable or not

    def test_setup_validation(self):
        scheme = OwfSRDS(message_bits=BITS)
        with pytest.raises(ConfigurationError):
            scheme.setup(1, Randomness(0))
        with pytest.raises(ConfigurationError):
            OwfSRDS(sortition_factor=0)


class TestSignAggregateVerify:
    def test_full_honest_flow(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"agree on me"
        signatures = _sign_all(deployment, message)
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert scheme.verify(pp, vks, message, aggregate)

    def test_wrong_message_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"agree on me"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_all(deployment, message)
        )
        assert not scheme.verify(pp, vks, b"different", aggregate)

    def test_below_threshold_rejected(self, deployment):
        scheme, pp, vks, sks = deployment
        message = b"minority"
        signers = [i for i, sk in sks.items() if sk is not None]
        few = _sign_all(deployment, message, signers[:3])
        aggregate = scheme.aggregate(pp, vks, message, few)
        assert aggregate is None or not scheme.verify(pp, vks, message, aggregate)

    def test_non_signer_returns_none(self, deployment):
        scheme, pp, _, sks = deployment
        non_signers = [i for i, sk in sks.items() if sk is None]
        assert non_signers, "sortition should leave most parties unsigned"
        assert scheme.sign(pp, non_signers[0], None, b"m") is None

    def test_duplicate_signatures_not_double_counted(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"dupes"
        signatures = _sign_all(deployment, message)
        doubled = signatures + signatures
        filtered = scheme.aggregate1(pp, vks, message, doubled)
        assert len(filtered) == len(signatures)

    def test_recursive_aggregation_matches_flat(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"recursive"
        signatures = _sign_all(deployment, message)
        half = len(signatures) // 2
        left = scheme.aggregate(pp, vks, message, signatures[:half])
        right = scheme.aggregate(pp, vks, message, signatures[half:])
        combined = scheme.aggregate(pp, vks, message, [left, right])
        flat = scheme.aggregate(pp, vks, message, signatures)
        assert combined.encode() == flat.encode()

    def test_invalid_signature_filtered(self, deployment):
        scheme, pp, vks, sks = deployment
        message = b"filter me"
        signatures = _sign_all(deployment, message)
        # A signature on a different message under a real key.
        signer = next(i for i, sk in sks.items() if sk is not None)
        rogue = scheme.sign(pp, signer, sks[signer], b"other")
        filtered = scheme.aggregate1(pp, vks, message, signatures + [rogue])
        assert all(s.index != rogue.index or s is not rogue for s in filtered)

    def test_unknown_index_filtered(self, deployment):
        scheme, pp, vks, sks = deployment
        signer = next(i for i, sk in sks.items() if sk is not None)
        signature = scheme.sign(pp, signer, sks[signer], b"m")
        shifted = OwfBaseSignature(
            index=N + 5, ots_signature=signature.ots_signature
        )
        assert scheme.aggregate1(pp, vks, b"m", [shifted]) == []

    def test_aggregate2_empty_returns_none(self, deployment):
        scheme, pp, _, _ = deployment
        assert scheme.aggregate2(pp, b"m", []) is None

    def test_foreign_signature_type_rejected(self, deployment):
        scheme, pp, vks, _ = deployment

        class Alien:
            pass

        with pytest.raises(SignatureError):
            scheme.aggregate1(pp, vks, b"m", [Alien()])


class TestIndexRanges:
    def test_base_min_max_equal(self, deployment):
        scheme, pp, _, sks = deployment
        signer = next(i for i, sk in sks.items() if sk is not None)
        signature = scheme.sign(pp, signer, sks[signer], b"m")
        assert signature.min_index == signature.max_index == signer

    def test_aggregate_min_max(self, deployment):
        scheme, pp, vks, _ = deployment
        signatures = _sign_all(deployment, b"m")
        aggregate = scheme.aggregate(pp, vks, b"m", signatures)
        indices = sorted(s.index for s in signatures)
        assert aggregate.min_index == indices[0]
        assert aggregate.max_index == indices[-1]

    def test_empty_aggregate_range_rejected(self):
        empty = OwfAggregateSignature(contributions=())
        with pytest.raises(SignatureError):
            _ = empty.min_index


class TestEncoding:
    def test_base_roundtrip(self, deployment):
        scheme, pp, _, sks = deployment
        signer = next(i for i, sk in sks.items() if sk is not None)
        signature = scheme.sign(pp, signer, sks[signer], b"m")
        decoded = decode_signature(signature.encode())
        assert decoded.encode() == signature.encode()

    def test_aggregate_roundtrip(self, deployment):
        scheme, pp, vks, _ = deployment
        aggregate = scheme.aggregate(pp, vks, b"m", _sign_all(deployment, b"m"))
        decoded = decode_signature(aggregate.encode())
        assert isinstance(decoded, OwfAggregateSignature)
        assert decoded.encode() == aggregate.encode()
        assert scheme.verify(pp, vks, b"m", decoded)

    def test_metadata(self):
        scheme = OwfSRDS()
        description = scheme.describe()
        assert description["setup"] == "trusted-pki"
        assert description["assumptions"] == "owf"
