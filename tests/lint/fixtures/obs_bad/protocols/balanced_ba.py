"""OBS001 positive fixture (path mirrors the instrumented module).

Two unspanned charges: one at a bare call site, one in a helper whose
only call site is *outside* every span.
"""

from repro.obs.spans import span  # noqa: F401 - mirrors the real module


def _helper_unspanned(metrics, committee) -> None:
    metrics.charge_functionality(committee, 64, 2)  # caller is unspanned


def run(metrics, committee) -> None:
    with span("setup"):
        metrics.record_message(0, 1, 128)  # fine: inside the span
    metrics.record_message(1, 2, 256)  # BAD: outside every span
    _helper_unspanned(metrics, committee)  # BAD call context
