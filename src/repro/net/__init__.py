"""Synchronous network simulator with exact communication accounting."""

from repro.net.adversary import (
    CorruptionPlan,
    corrupt_after_setup,
    prefix_corruption,
    random_corruption,
    targeted_corruption,
)
from repro.net.metrics import CommunicationMetrics, MetricsSnapshot, PartyTally
from repro.net.party import Envelope, Party, SilentParty
from repro.net.simulator import SynchronousNetwork

__all__ = [
    "CommunicationMetrics",
    "CorruptionPlan",
    "Envelope",
    "MetricsSnapshot",
    "Party",
    "PartyTally",
    "SilentParty",
    "SynchronousNetwork",
    "corrupt_after_setup",
    "prefix_corruption",
    "random_corruption",
    "targeted_corruption",
]
