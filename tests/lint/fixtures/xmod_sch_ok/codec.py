"""SCH001 fixture (ok): both sides of each schema agree."""

import struct
from dataclasses import dataclass

_RECORD = struct.Struct(">III")
_TICKET = struct.Struct(">II")
_TAG = 9


def decode_record(data):
    sender, recipient, charge_bits = _RECORD.unpack_from(data, 0)
    return sender, recipient, charge_bits


def encode_record(sender, recipient, charge_bits):
    return _RECORD.pack(sender, recipient, charge_bits)


def encode_aliased(frame):
    # Affix-tolerant pairing: `sender_id` ~ `sender`; ALL_CAPS tags and
    # computed expressions are never order-checked.
    return _RECORD.pack(frame.sender_id, frame.recipient_id, _TAG)


@dataclass
class Ticket:
    kind: int
    charge_bits: int

    def encode(self):
        return _TICKET.pack(self.kind, self.charge_bits)

    @classmethod
    def from_bytes(cls, data):
        kind, charge_bits = _TICKET.unpack_from(data, 0)
        return cls(kind=kind, charge_bits=charge_bits)
