"""repro.obs — observability for balanced-BA executions.

Layered on PR 1's runtime:

* **Spans** (:mod:`repro.obs.spans`): hierarchical phase context managers
  (``with span("srds-aggregate", level=k): ...``) that the communication
  ledger consults on every charge, yielding the §3.1 per-phase cost
  decomposition (``CommunicationMetrics.bits_by_phase`` /
  ``phase_breakdown``).
* **Flow ledger** (:mod:`repro.obs.flow`): the wire-level refinement —
  per-(round, phase, src, dst, kind) traffic-matrix cells with bounded
  memory (top-K + spill-to-JSONL), exact per-party side counters, and
  bit-for-bit parity checks against ``CommunicationMetrics``.
* **Registry** (:mod:`repro.obs.registry`): Counter/Gauge/Histogram
  instruments with Prometheus text exposition, fed by the runtime
  (round-barrier latency, transport frame counts, injected faults,
  ``repro_flow_bytes_total``).
* **Timeline** (:mod:`repro.obs.timeline`): TraceRecorder streams + span
  intervals → Chrome trace-event JSON, loadable in Perfetto, with a
  deterministic mode mirroring ``trace.py``'s ``clock=None`` contract;
  :mod:`repro.obs.merge` stitches supervisor + worker + session tracks
  into one cross-process view sharing a single trace id.
* **Profiling** (:mod:`repro.obs.profile`): opt-in phase-scoped
  cProfile/tracemalloc collectors installable like any ``SpanLog``.
* **Bench records** (:mod:`repro.obs.bench`): structured
  ``BENCH_<name>.json`` results; :mod:`repro.obs.regression` diffs
  fresh records against committed baselines (``obs diff``).
* **Flush** (:mod:`repro.obs.flush`): the shared atomic ``--metrics-out``
  writer (tmp+fsync+replace) used by serve/cluster/runtime CLIs.

CLI: ``python -m repro obs
{report,timeline,top,flows,diff,profile,merge}`` (see
``docs/observability.md``).

This package imports only the standard library (plus
:mod:`repro.errors`), so any layer of the repo — including
:mod:`repro.net.metrics` — can depend on it without cycles.
"""

from repro.obs.bench import bench_payload, load_bench_json, write_bench_json
from repro.obs.flush import (
    FLOW_COMMENT_PREFIX,
    flush_metrics_file,
    read_flow_summary,
    write_atomic_text,
)
from repro.obs.flow import (
    FLOW_SCHEMA,
    FUNCTIONALITY,
    FlowCell,
    FlowLedger,
    current_flow_tags,
    flow_tags,
    load_flow_json,
    write_flow_json,
)
from repro.obs.merge import (
    SPAN_DIR_SCHEMA,
    dump_span_dir,
    export_merged_trace,
    load_span_dir,
    merged_timeline_events,
)
from repro.obs.profile import PhaseProfile, PhaseProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.regression import (
    BenchDiff,
    diff_bench,
    diff_dirs,
    diff_files,
    render_diffs,
)
from repro.obs.spans import (
    UNATTRIBUTED,
    SpanLog,
    SpanRecord,
    current_path,
    current_phase,
    recording,
    span,
)
from repro.obs.timeline import (
    export_chrome_trace,
    load_trace_dir,
    timeline_events,
    validate_trace_events,
)

__all__ = [
    "BenchDiff",
    "Counter",
    "FLOW_COMMENT_PREFIX",
    "FLOW_SCHEMA",
    "FUNCTIONALITY",
    "FlowCell",
    "FlowLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfile",
    "PhaseProfiler",
    "SPAN_DIR_SCHEMA",
    "SpanLog",
    "SpanRecord",
    "UNATTRIBUTED",
    "bench_payload",
    "current_flow_tags",
    "current_path",
    "current_phase",
    "diff_bench",
    "diff_dirs",
    "diff_files",
    "dump_span_dir",
    "export_chrome_trace",
    "export_merged_trace",
    "flow_tags",
    "flush_metrics_file",
    "load_bench_json",
    "load_flow_json",
    "load_span_dir",
    "load_trace_dir",
    "merged_timeline_events",
    "read_flow_summary",
    "recording",
    "render_diffs",
    "span",
    "timeline_events",
    "validate_trace_events",
    "write_atomic_text",
    "write_bench_json",
    "write_flow_json",
]
