"""Shared fixtures for the test suite."""

import pytest

from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness


@pytest.fixture
def rng():
    """A deterministic randomness source, fresh per test."""
    return Randomness(12345)


@pytest.fixture
def params():
    """Default protocol parameters."""
    return ProtocolParameters()


@pytest.fixture
def fast_params():
    """Parameters shrunk for fast protocol tests."""
    return ProtocolParameters(
        security_bits=64,
        committee_factor=3,
        leaf_factor=3,
        virtual_factor=1,
        tree_arity_factor=1,
        corruption_ratio=1 / 8,
        fanout_factor=2,
    )
