"""E11 — ablation: the one-time-signature choice inside the OWF SRDS.

Lamport (the paper's instantiation) vs Winternitz at several chunk
widths: aggregate size shrinks ~w-fold while signing/verification cost
grows ~2^w/2 hash calls per chunk — the classic hash-based-signature
trade, measured end to end through the SRDS aggregate.
"""

import time

import pytest

from benchmarks.conftest import write_result
from repro.srds.ots import LamportOts, WinternitzOts
from repro.srds.owf import OwfSRDS
from repro.utils.randomness import Randomness

N = 256
MESSAGE_BITS = 128

VARIANTS = [
    ("lamport", lambda: LamportOts(message_bits=MESSAGE_BITS)),
    ("wots w=2", lambda: WinternitzOts(message_bits=MESSAGE_BITS, w=2)),
    ("wots w=4", lambda: WinternitzOts(message_bits=MESSAGE_BITS, w=4)),
    ("wots w=8", lambda: WinternitzOts(message_bits=MESSAGE_BITS, w=8)),
]


def _measure():
    rows = []
    for label, factory in VARIANTS:
        rng = Randomness(91)
        scheme = OwfSRDS(ots=factory(), sortition_factor=2)
        pp = scheme.setup(N, rng.fork("s"))
        vks, sks = {}, {}
        keygen_start = time.perf_counter()
        for i in range(N):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        keygen_time = time.perf_counter() - keygen_start
        message = b"ots-ablation"
        signatures = [
            s for s in (
                scheme.sign(pp, i, sks[i], message) for i in range(N)
            )
            if s is not None
        ]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        scheme._verify_cache.clear()  # time a cold verification
        verify_start = time.perf_counter()
        assert scheme.verify(pp, vks, message, aggregate)
        verify_time = time.perf_counter() - verify_start
        rows.append({
            "label": label,
            "aggregate_bytes": aggregate.size_bytes(),
            "vk_bytes": scheme.ots.verification_key_bytes(),
            "keygen_s": keygen_time,
            "verify_s": verify_time,
            "signers": len(signatures),
        })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ots_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = [
        f"E11 — OTS choice inside the OWF SRDS (n={N}, "
        f"{rows[0]['signers']} signers):",
        f"{'variant':<10} {'aggregate':>11} {'vk size':>9} "
        f"{'keygen(all)':>12} {'verify(agg)':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['label']:<10} {row['aggregate_bytes']:>10,}B "
            f"{row['vk_bytes']:>8,}B {row['keygen_s'] * 1000:>10.0f}ms "
            f"{row['verify_s'] * 1000:>10.1f}ms"
        )
    write_result(results_dir, "ablation_ots", "\n".join(lines))

    by_label = {row["label"]: row for row in rows}
    # Aggregate size: w=4 shrinks Lamport by > 3x, w=8 by > 6x.
    assert (
        by_label["lamport"]["aggregate_bytes"]
        > 3 * by_label["wots w=4"]["aggregate_bytes"]
    )
    assert (
        by_label["lamport"]["aggregate_bytes"]
        > 6 * by_label["wots w=8"]["aggregate_bytes"]
    )
    # Compute cost: w=8 pays far more hashing than w=4 (chains of 256).
    assert by_label["wots w=8"]["keygen_s"] > by_label["wots w=4"]["keygen_s"]
