"""E12 — ablation: oblivious key generation is load-bearing (Thm 2.7).

The sortition construction's core trick: an adversary who corrupts
*after seeing the bulletin board* (exactly the paper's corruption model)
must not learn who can sign.  This benchmark runs the same
setup-adaptive adversary against the real scheme and against the
ablated variant whose verification keys carry a signer flag:

* real scheme — the adversary corrupts a *random* t-subset (it can do no
  better), the honest signer majority survives, robustness holds;
* ablated scheme — the adversary corrupts exactly the flagged signers
  (there are only ~polylog of them, far under budget) and the honest
  contribution collapses below the threshold.
"""

import pytest

from benchmarks.conftest import write_result
from repro.net.adversary import targeted_corruption, random_corruption
from repro.srds.ablation import RevealingOwfSRDS
from repro.srds.owf import OwfSRDS
from repro.utils.randomness import Randomness

N = 512
TRIALS = 3


def _run_trial(scheme, reveal: bool, trial: int):
    rng = Randomness(4000 + trial)
    pp = scheme.setup(N, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))

    budget = N // 6
    if reveal:
        # Setup-adaptive adversary: read the board, corrupt the signers.
        flagged = [
            i for i in range(N)
            if RevealingOwfSRDS.is_flagged_signer(vks[i])
        ]
        plan = targeted_corruption(N, flagged[:budget])
    else:
        # Against oblivious keys the board is useless: random corruption
        # is optimal.
        plan = random_corruption(N, budget, rng.fork("c"))

    message = b"oblivious-ablation"
    honest_signatures = [
        s for s in (
            scheme.sign(pp, i, sks[i], message)
            for i in range(N)
            if not plan.is_corrupt(i)
        )
        if s is not None
    ]
    aggregate = scheme.aggregate(pp, vks, message, honest_signatures)
    robust = (
        aggregate is not None
        and scheme.verify(pp, vks, message, aggregate)
    )

    # The dual break: the corrupted signer set forges on its own message.
    forged_message = b"FORGED-by-adaptive-corruption"
    corrupt_signatures = [
        s for s in (
            scheme.sign(pp, i, sks[i], forged_message)
            for i in range(N)
            if plan.is_corrupt(i)
        )
        if s is not None
    ]
    forged = scheme.aggregate(pp, vks, forged_message, corrupt_signatures)
    forgery = (
        forged is not None
        and scheme.verify(pp, vks, forged_message, forged)
    )
    return {
        "honest_signers": len(honest_signatures),
        "corrupt_signers": len(corrupt_signatures),
        "threshold": pp.acceptance_threshold,
        "corrupted": plan.t,
        "robust": robust,
        "forgery": forgery,
    }


def _measure():
    results = {"oblivious": [], "revealing": []}
    for trial in range(TRIALS):
        results["oblivious"].append(
            _run_trial(
                OwfSRDS(message_bits=32, sortition_factor=2),
                reveal=False, trial=trial,
            )
        )
        results["revealing"].append(
            _run_trial(
                RevealingOwfSRDS(message_bits=32, sortition_factor=2),
                reveal=True, trial=trial,
            )
        )
    return results


@pytest.mark.benchmark(group="ablation")
def test_oblivious_keygen_ablation(benchmark, results_dir):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)

    lines = [
        f"E12 — setup-adaptive corruption vs sortition, n={N}, "
        f"budget={N // 6}:",
        f"{'variant':<11} {'trial':>6} {'honest sigs':>12} "
        f"{'corrupt sigs':>13} {'threshold':>10} {'robust?':>8} "
        f"{'forged?':>8}",
    ]
    for variant, rows in results.items():
        for trial, row in enumerate(rows):
            lines.append(
                f"{variant:<11} {trial:>6} {row['honest_signers']:>12} "
                f"{row['corrupt_signers']:>13} {row['threshold']:>10} "
                f"{row['robust']!s:>8} {row['forgery']!s:>8}"
            )
    write_result(results_dir, "ablation_oblivious", "\n".join(lines))

    # Oblivious keys: robust in every trial, never forged (a random
    # t-subset catches only ~beta of the hidden signers).
    assert all(row["robust"] for row in results["oblivious"])
    assert not any(row["forgery"] for row in results["oblivious"])
    # Revealed signer flags: the adaptive adversary, on the same budget,
    # forges a majority certificate in every trial (its corrupt signer
    # set alone clears the threshold) and usually starves robustness too.
    assert all(row["forgery"] for row in results["revealing"])
    assert sum(
        1 for row in results["revealing"] if not row["robust"]
    ) >= 2
    assert all(
        row["corrupted"] <= N // 6 for row in results["revealing"]
    )
