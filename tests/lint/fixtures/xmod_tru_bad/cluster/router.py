"""TRU001 fixture (bad): wire-derived data reaching sinks unvalidated."""

from xmod_tru_bad.cluster.wire import decode_header
from xmod_tru_bad.protocols.engine import advance_round


def route_frame(data, ledger):
    header = decode_header(data)
    ledger.record_message(header.round_index, header.charge_bits)


def step_protocol(data):
    header = decode_header(data)
    return advance_round(header.round_index)
