"""The signature-aggregation functionality f_aggr-sig (§3.1).

An n'-party functionality run by the committee of one tree node: every
member submits its message and its filtered signature set; the
functionality keeps only the signatures submitted by a *majority* of the
members (so a corrupt member cannot smuggle in a signature most honest
members never saw, nor suppress one they all did), aggregates them with
``Aggregate2``, and hands the result to everyone.

The paper realizes this with the constant-round Damgård–Ishai MPC over a
polylog committee; here the functionality is evaluated directly and the
DI realization's communication is charged through the cost model — see
DESIGN.md's substitution table.  Security-wise only the functionality's
I/O behaviour matters to pi_ba, and an honest-majority committee's MPC
output *is* the functionality output.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.metrics import CommunicationMetrics
from repro.protocols import cost_model
from repro.srds.base import PublicParameters, SRDSScheme, SRDSSignature


def run_aggregate_sig(
    scheme: SRDSScheme,
    pp: PublicParameters,
    members: Sequence[int],
    submissions: Dict[int, Tuple[bytes, Sequence[object]]],
    metrics: CommunicationMetrics,
) -> Optional[SRDSSignature]:
    """Evaluate f_aggr-sig for one node committee.

    ``submissions`` maps member id to ``(message, filtered_set)``, where
    the filtered set is the member's output of Aggregate1 + the Fig. 3
    range checks.  Members absent from the map submitted nothing (crashed
    or corrupt-silent).

    Returns the aggregated signature (or ``None`` when nothing survives
    the majority filter), charging each member the Damgård–Ishai cost.
    """
    member_list = list(members)
    majority = len(member_list) // 2 + 1

    # Majority message: the committee aggregates *on* the message most
    # members submitted (honest members of a good node agree on it).
    message_counts = Counter(
        message for message, _ in submissions.values()
    )
    if not message_counts:
        return None
    message = message_counts.most_common(1)[0][0]

    # Majority filter on individual contributions, keyed by wire encoding
    # (CertifiedBaseSignature and SRDSSignature both expose .encode()).
    support: Counter = Counter()
    by_encoding: Dict[bytes, object] = {}
    for member_message, filtered in submissions.values():
        if member_message != message:
            continue
        seen_here = set()
        for item in filtered:
            encoding = item.encode()
            if encoding in seen_here:
                continue
            seen_here.add(encoding)
            support[encoding] += 1
            by_encoding.setdefault(encoding, item)
    surviving = [
        by_encoding[encoding]
        for encoding, count in sorted(support.items())
        if count >= majority
    ]

    input_bits = 8 * sum(len(enc) for enc in support)
    charge = cost_model.committee_aggregate_sig(
        len(member_list), input_bits=min(input_bits, 1 << 20)
    )
    metrics.charge_functionality(
        member_list,
        bits_per_party=charge.bits_per_party,
        peers_per_party=charge.peers_per_party,
        rounds=charge.rounds,
    )

    if not surviving:
        return None
    return scheme.aggregate2(pp, message, surviving)
