"""SER001 negative fixture: both codec registration styles."""

from dataclasses import dataclass


@dataclass(frozen=True)
class LineSpec:
    """Round-trips via a module-level format/parse pair."""

    name: str
    seed: int


def format_line_spec(spec: LineSpec) -> str:
    return f"{spec.name}:{spec.seed}"


def parse_line_spec(line: str) -> LineSpec:
    name, _, seed = line.partition(":")
    return LineSpec(name=name, seed=int(seed))


@dataclass
class MethodSpec:
    """Round-trips via encode/decode methods."""

    value: int

    def encode(self) -> bytes:
        return str(self.value).encode("ascii")

    @classmethod
    def decode(cls, blob: bytes) -> "MethodSpec":
        return cls(value=int(blob.decode("ascii")))
