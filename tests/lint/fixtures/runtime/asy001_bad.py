"""ASY001 positive fixture: dropped tasks and unawaited coroutines."""

import asyncio


async def pump() -> None:
    await asyncio.sleep(0)


class Endpoint:
    async def drain(self) -> None:
        await asyncio.sleep(0)

    async def run(self) -> None:
        self.drain()  # coroutine never awaited: step silently skipped


async def launch() -> None:
    asyncio.create_task(pump())  # weak ref only: collectable mid-flight
    asyncio.ensure_future(pump())
    pump()  # bare unawaited coroutine call
