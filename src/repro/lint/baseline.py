"""The committed baseline and its ratchet.

The baseline (``lint-baseline.json`` at the repo root) is the list of
*legacy* violations that existed when a rule was introduced.  The
ratchet's contract:

* a violation **matching** a baseline entry passes (it is legacy debt,
  tracked for burn-down),
* a violation **not** in the baseline fails the run (no new debt),
* a baseline entry matching **nothing** is *stale* and is reported as a
  warning (debt was paid — shrink the baseline so it cannot be re-spent).

Entries are keyed by ``(rule, path, symbol, snippet)`` with an
occurrence ``count``, not by line number, so pure line motion (an
unrelated edit above the site) neither breaks the match nor lets a
*second* identical violation hide behind a single entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.lint.model import Violation

SCHEMA = "repro-lint-baseline/1"

_Key = Tuple[str, str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    """One tracked legacy violation site (``count`` occurrences)."""

    rule: str
    path: str
    symbol: str
    snippet: str
    count: int = 1

    @property
    def key(self) -> _Key:
        return (self.rule, self.path, self.symbol, self.snippet)


@dataclass
class RatchetOutcome:
    """How one run's violations decompose under the baseline."""

    new: List[Violation]
    baselined: List[Violation]
    stale: List[BaselineEntry]


class Baseline:
    """An in-memory baseline, loadable/serializable as JSON."""

    def __init__(self, entries: List[BaselineEntry]) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls([])
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"unreadable lint baseline {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            raise ConfigurationError(
                f"lint baseline {path} is not a {SCHEMA} document"
            )
        entries: List[BaselineEntry] = []
        for raw in payload.get("entries", []):
            try:
                entries.append(BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw.get("symbol", "<module>")),
                    snippet=str(raw.get("snippet", "")),
                    count=int(raw.get("count", 1)),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed baseline entry in {path}: {raw!r}"
                ) from exc
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema": SCHEMA,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "symbol": entry.symbol,
                    "snippet": entry.snippet,
                    "count": entry.count,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.rule, e.path, e.symbol)
                )
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # -- the ratchet --------------------------------------------------------

    @classmethod
    def from_violations(cls, violations: List[Violation]) -> "Baseline":
        """Snapshot current violations as the new legacy set."""
        counts: Dict[_Key, int] = {}
        for violation in violations:
            counts[violation.baseline_key] = (
                counts.get(violation.baseline_key, 0) + 1
            )
        return cls([
            BaselineEntry(
                rule=key[0], path=key[1], symbol=key[2], snippet=key[3],
                count=count,
            )
            for key, count in sorted(counts.items())
        ])

    def pruned(self, violations: List[Violation]) -> "Baseline":
        """A copy with stale budget removed, nothing added.

        Per-key counts are clamped to the violations actually present:
        entries whose key matches nothing are dropped, over-counted
        entries shrink.  Pruning is idempotent and can only tighten the
        ratchet — debt still enters exclusively via ``from_violations``.
        """
        current: Dict[_Key, int] = {}
        for violation in violations:
            current[violation.baseline_key] = (
                current.get(violation.baseline_key, 0) + 1
            )
        kept: List[BaselineEntry] = []
        for entry in self.entries:
            available = current.get(entry.key, 0)
            if available <= 0:
                continue
            take = min(entry.count, available)
            current[entry.key] = available - take
            kept.append(BaselineEntry(
                rule=entry.rule, path=entry.path, symbol=entry.symbol,
                snippet=entry.snippet, count=take,
            ))
        return Baseline(kept)

    def apply(self, violations: List[Violation]) -> RatchetOutcome:
        """Split ``violations`` into new vs. legacy; find stale entries."""
        budget: Dict[_Key, int] = {}
        for entry in self.entries:
            budget[entry.key] = budget.get(entry.key, 0) + entry.count
        new: List[Violation] = []
        baselined: List[Violation] = []
        for violation in violations:
            key = violation.baseline_key
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(violation)
            else:
                new.append(violation)
        stale = [
            entry for entry in self.entries if budget.get(entry.key, 0) > 0
        ]
        # A key listed twice in the file would double its budget; the
        # stale report above intentionally names *every* entry of an
        # under-consumed key so the operator sees the duplication.
        return RatchetOutcome(new=new, baselined=baselined, stale=stale)
