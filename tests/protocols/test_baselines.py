"""Tests for the Table-1 comparison baselines."""

import pytest

from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.baselines import (
    MultisigScheme,
    all_to_all_ba,
    central_party_boost,
    ks09_boost,
    sqrt_boost,
)
from repro.utils.randomness import Randomness

N = 256


@pytest.fixture
def plan(rng):
    return random_corruption(N, N // 8, rng.fork("plan"))


@pytest.fixture
def isolated():
    return {N - 1, N - 2}


class TestAllToAll:
    def test_agreement(self, plan, rng):
        result = all_to_all_ba({i: 1 for i in range(N)}, plan, rng)
        assert result.agreement
        assert all(result.outputs[p] == 1 for p in plan.honest)

    def test_linear_per_party(self, rng):
        small_plan = random_corruption(64, 8, rng.fork("s"))
        large_plan = random_corruption(256, 32, rng.fork("l"))
        small = all_to_all_ba({i: 1 for i in range(64)}, small_plan, rng)
        large = all_to_all_ba({i: 1 for i in range(256)}, large_plan, rng)
        ratio = (
            large.metrics.max_bits_per_party / small.metrics.max_bits_per_party
        )
        assert ratio > 3  # at least linear growth (4x n, plus more rounds)


class TestSqrtBoost:
    def test_agreement(self, plan, isolated, rng):
        result = sqrt_boost(1, isolated, plan, rng)
        assert result.agreement

    def test_sublinear_growth(self, rng):
        small_plan = random_corruption(64, 8, rng.fork("s"))
        large_plan = random_corruption(1024, 128, rng.fork("l"))
        small = sqrt_boost(1, set(), small_plan, rng.fork("r1"))
        large = sqrt_boost(1, set(), large_plan, rng.fork("r2"))
        ratio = (
            large.metrics.max_bits_per_party / small.metrics.max_bits_per_party
        )
        assert ratio < 16  # sqrt-ish: 16x n -> ~4-8x bits

    def test_balanced(self, plan, isolated, rng):
        result = sqrt_boost(1, isolated, plan, rng)
        assert result.metrics.imbalance < 3


class TestKs09Boost:
    def test_agreement(self, plan, isolated, rng):
        result = ks09_boost(0, isolated, plan, rng)
        assert result.agreement

    def test_relays_dominate(self, plan, isolated, rng):
        result = ks09_boost(0, isolated, plan, rng)
        assert result.metrics.imbalance > 5


class TestCentralPartyBoost:
    def test_agreement(self, plan, isolated, rng):
        result = central_party_boost(1, isolated, plan, rng)
        assert result.agreement

    def test_extreme_imbalance(self, plan, isolated, rng):
        result = central_party_boost(1, isolated, plan, rng)
        assert result.metrics.imbalance > 3

    def test_mean_stays_small(self, rng):
        small_plan = random_corruption(64, 8, rng.fork("s"))
        large_plan = random_corruption(1024, 128, rng.fork("l"))
        small = central_party_boost(1, set(), small_plan, rng.fork("a"))
        large = central_party_boost(1, set(), large_plan, rng.fork("b"))
        mean_ratio = (
            large.metrics.mean_bits_per_party
            / small.metrics.mean_bits_per_party
        )
        assert mean_ratio < 4  # amortized ~polylog growth
        max_ratio = (
            large.metrics.max_bits_per_party
            / small.metrics.max_bits_per_party
        )
        assert max_ratio > 8  # center parties grow ~linearly


class TestMultisigScheme:
    def _deployment(self, n=60):
        rng = Randomness(9)
        scheme = MultisigScheme()
        pp = scheme.setup(n, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        return scheme, pp, vks, sks

    def test_sign_aggregate_verify(self):
        scheme, pp, vks, sks = self._deployment()
        message = b"m"
        signatures = [
            scheme.sign(pp, i, sks[i], message) for i in range(60)
        ]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert scheme.verify(pp, vks, message, aggregate)

    def test_minority_rejected(self):
        scheme, pp, vks, sks = self._deployment()
        message = b"m"
        signatures = [scheme.sign(pp, i, sks[i], message) for i in range(10)]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert not scheme.verify(pp, vks, message, aggregate)

    def test_signature_size_linear_in_n(self):
        small_scheme, small_pp, small_vks, small_sks = self._deployment(n=64)
        large_scheme, large_pp, large_vks, large_sks = self._deployment(n=4096)
        small_sig = small_scheme.sign(small_pp, 0, small_sks[0], b"m")
        large_sig = large_scheme.sign(large_pp, 0, large_sks[0], b"m")
        # The Theta(n) bitmap dominates once n outgrows the 32B tag:
        # 64x parties -> far larger signatures.
        assert len(large_sig.encode()) > 4 * len(small_sig.encode())

    def test_duplicate_signers_not_double_counted(self):
        scheme, pp, vks, sks = self._deployment()
        message = b"m"
        signatures = [scheme.sign(pp, i, sks[i], message) for i in range(40)]
        aggregate = scheme.aggregate(
            pp, vks, message, signatures + signatures
        )
        assert len(aggregate.signers) == 40

    def test_wrong_message_rejected(self):
        scheme, pp, vks, sks = self._deployment()
        signatures = [scheme.sign(pp, i, sks[i], b"m1") for i in range(60)]
        aggregate = scheme.aggregate(pp, vks, b"m1", signatures)
        assert not scheme.verify(pp, vks, b"m2", aggregate)

    def test_tampered_bitmap_rejected(self):
        from repro.protocols.baselines.multisig import MultisigSignature

        scheme, pp, vks, sks = self._deployment()
        message = b"m"
        signatures = [scheme.sign(pp, i, sks[i], message) for i in range(31)]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        bitmap = bytearray(aggregate.signer_bits)
        bitmap[7] |= 0xFF  # claim extra signers
        tampered = MultisigSignature(
            tag=aggregate.tag,
            signer_bits=bytes(bitmap),
            num_parties=aggregate.num_parties,
        )
        assert not scheme.verify(pp, vks, message, tampered)

    def test_in_balanced_ba(self):
        """The headline comparison: pi_ba over multisig certificates."""
        from repro.protocols.balanced_ba import run_balanced_ba

        params = ProtocolParameters()
        rng = Randomness(13)
        n = 64
        plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
        result = run_balanced_ba(
            {i: 1 for i in range(n)}, plan, MultisigScheme(), params,
            rng.fork("r"),
        )
        assert result.agreement and result.validity
        # The certificate carries the Theta(n.z) bitmap.
        assert result.certificate_bytes * 8 >= result.num_virtual
