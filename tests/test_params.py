"""Tests for protocol parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    DEFAULT_PARAMETERS,
    ProtocolParameters,
    ceil_log2,
    small_test_parameters,
)


class TestCeilLog2:
    def test_values(self):
        assert ceil_log2(1) == 1
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1024) == 10
        assert ceil_log2(1025) == 11

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ceil_log2(0)


class TestValidation:
    def test_defaults_valid(self):
        assert DEFAULT_PARAMETERS.corruption_ratio < 1 / 3

    def test_corruption_at_third_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(corruption_ratio=1 / 3)

    def test_negative_corruption_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(corruption_ratio=-0.1)

    def test_small_security_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(security_bits=16)

    def test_zero_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters(committee_factor=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMETERS.committee_factor = 99


class TestDerived:
    def test_committee_grows_with_log_n(self):
        params = ProtocolParameters()
        assert params.committee_size(1024) > params.committee_size(64)
        assert params.committee_size(1024) == params.committee_factor * 10

    def test_leaf_size(self):
        params = ProtocolParameters()
        assert params.leaf_committee_size(256) == params.leaf_factor * 8

    def test_tree_arity_minimum(self):
        params = ProtocolParameters()
        assert params.tree_arity(2) >= 2

    def test_fanout_capped_at_n(self):
        params = ProtocolParameters(fanout_factor=100)
        assert params.fanout(16) == 16

    def test_max_corruptions(self):
        params = ProtocolParameters(corruption_ratio=0.25)
        assert params.max_corruptions(100) == 25

    def test_hash_bytes_floor(self):
        assert ProtocolParameters(security_bits=64).hash_bytes() == 32
        assert ProtocolParameters(security_bits=512).hash_bytes() == 64

    def test_small_test_parameters_valid(self):
        params = small_test_parameters()
        assert params.corruption_ratio < 1 / 3
