"""Committee coin tossing from verifiable secret sharing (realizes f_ct).

The Chor–Goldwasser–Micali–Awerbuch paradigm the paper cites in §3.1:
every committee member verifiably secret-shares a random field element;
after the sharing phase completes the shares are revealed, every
qualified dealer's secret is reconstructed, and the coin is the hash of
the XOR/sum of all reconstructed secrets.  VSS makes the coin
unbiasable by a minority: a corrupt dealer's contribution is *fixed* at
sharing time (the honest parties hold enough consistent shares to
reconstruct it with or without the dealer), so rushing at reveal time
changes nothing.

The protocol is stated over a broadcast channel (realized by f_ba per
§3.1); the implementation uses the simulator's send-to-all with honest
parties echoing nothing — dealer equivocation on *commitments* is
handled by the complaint round, and share reveals are publicly
verifiable against the commitment, which is what actually protects the
output.

Rounds:

1. **deal** — dealer i sends ``share_ij`` privately to each j and its
   Feldman commitment to all;
2. **complain** — each party announces the dealer ids whose share failed
   verification (or never arrived);
3. **resolve + reveal** — dealers with more than f complaints are
   disqualified by everyone; each party sends all its (commitment-valid)
   shares of qualified dealers to all;
4. **reconstruct** — each party reconstructs every qualified dealer's
   secret from commitment-verified revealed shares and outputs
   ``H(sum of secrets)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto import ec, vss
from repro.crypto.hashing import hash_domain
from repro.crypto.shamir import Share
from repro.errors import MALFORMED_INPUT_ERRORS, ConfigurationError
from repro.fields.prime_field import FieldElement, default_field
from repro.net.party import Envelope, Party
from repro.utils.randomness import Randomness
from repro.utils.serialization import (
    canonical_tuple,
    decode_sequence,
    decode_uint,
    encode_bytes,
    encode_uint,
    int_to_fixed_bytes,
)

_MSG_SHARE = 0
_MSG_COMMIT = 1
_MSG_COMPLAIN = 2
_MSG_REVEAL = 3


def _encode_commitment(commitment: vss.VSSCommitment) -> bytes:
    return canonical_tuple(
        *[point.encode() for point in commitment.coefficient_points]
    )


def _decode_commitment(data: bytes) -> vss.VSSCommitment:
    encoded_points, _ = decode_sequence(data, 0)
    return vss.VSSCommitment(
        coefficient_points=tuple(ec.decode_point(p) for p in encoded_points)
    )


class CoinTossParty(Party):
    """An honest VSS coin-toss participant."""

    def __init__(
        self,
        party_id: int,
        members: Sequence[int],
        max_faults: int,
        rng: Randomness,
    ) -> None:
        super().__init__(party_id)
        if max_faults * 3 >= len(members):
            raise ConfigurationError(
                f"coin toss needs f < n/3; got f={max_faults}, n={len(members)}"
            )
        self.members = list(members)
        self.f = max_faults
        self._rng = rng
        self._field = default_field()
        self._my_index = self.members.index(party_id) + 1  # Shamir x-coord
        self._received_shares: Dict[int, Share] = {}
        self._commitments: Dict[int, vss.VSSCommitment] = {}
        self._complaints: Dict[int, Set[int]] = {}
        self._revealed: Dict[int, List[Share]] = {}

    # -- round machine ---------------------------------------------------------

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index == 0:
            return self._deal()
        if round_index == 1:
            self._collect_deals(inbox)
            return self._complain()
        if round_index == 2:
            self._collect_complaints(inbox)
            return self._reveal()
        if round_index == 3:
            self._collect_reveals(inbox)
            return self.halt(self._reconstruct())
        return []

    def _deal(self) -> List[Envelope]:
        secret = self._field.random_element(self._rng).value
        dealing = vss.deal_verifiable(
            secret, len(self.members), self.f, self._rng
        )
        outgoing: List[Envelope] = []
        commitment_payload = encode_uint(_MSG_COMMIT) + _encode_commitment(
            dealing.commitment
        )
        for position, peer in enumerate(self.members):
            share = dealing.shares[position]
            share_payload = encode_uint(_MSG_SHARE) + canonical_tuple(
                int_to_fixed_bytes(share.x.value, 32),
                int_to_fixed_bytes(share.y.value, 32),
            )
            outgoing.append(self.send(peer, share_payload))
            outgoing.append(self.send(peer, commitment_payload))
        return outgoing

    def _collect_deals(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            try:
                tag, pos = decode_uint(envelope.payload, 0)
                body = envelope.payload[pos:]
                if tag == _MSG_SHARE:
                    fields, _ = decode_sequence(body, 0)
                    x = int.from_bytes(fields[0], "big")
                    y = int.from_bytes(fields[1], "big")
                    self._received_shares.setdefault(
                        envelope.sender,
                        Share(
                            x=self._field.element(x),
                            y=self._field.element(y),
                        ),
                    )
                elif tag == _MSG_COMMIT:
                    self._commitments.setdefault(
                        envelope.sender, _decode_commitment(body)
                    )
            except MALFORMED_INPUT_ERRORS:
                continue

    def _complain(self) -> List[Envelope]:
        bad: List[int] = []
        for dealer in self.members:
            share = self._received_shares.get(dealer)
            commitment = self._commitments.get(dealer)
            if (
                share is None
                or commitment is None
                or commitment.threshold != self.f
                or share.x.value != self._my_index
                or not vss.verify_share(share, commitment)
            ):
                bad.append(dealer)
        payload = encode_uint(_MSG_COMPLAIN) + canonical_tuple(
            *[encode_uint(d) for d in bad]
        )
        return [self.send(peer, payload) for peer in self.members]

    def _collect_complaints(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            try:
                tag, pos = decode_uint(envelope.payload, 0)
                if tag != _MSG_COMPLAIN:
                    continue
                encoded, _ = decode_sequence(envelope.payload, pos)
                for blob in encoded:
                    dealer, _ = decode_uint(blob, 0)
                    self._complaints.setdefault(dealer, set()).add(
                        envelope.sender
                    )
            except MALFORMED_INPUT_ERRORS:
                continue

    def _qualified(self) -> List[int]:
        return [
            dealer
            for dealer in self.members
            if len(self._complaints.get(dealer, set())) <= self.f
            and dealer in self._commitments
        ]

    def _reveal(self) -> List[Envelope]:
        outgoing: List[Envelope] = []
        for dealer in self._qualified():
            share = self._received_shares.get(dealer)
            commitment = self._commitments.get(dealer)
            if share is None or commitment is None:
                continue
            if not vss.verify_share(share, commitment):
                continue
            payload = encode_uint(_MSG_REVEAL) + canonical_tuple(
                encode_uint(dealer),
                int_to_fixed_bytes(share.x.value, 32),
                int_to_fixed_bytes(share.y.value, 32),
            )
            for peer in self.members:
                outgoing.append(self.send(peer, payload))
        return outgoing

    def _collect_reveals(self, inbox: Sequence[Envelope]) -> None:
        seen: Set[Tuple[int, int]] = set()
        for envelope in inbox:
            try:
                tag, pos = decode_uint(envelope.payload, 0)
                if tag != _MSG_REVEAL:
                    continue
                fields, _ = decode_sequence(envelope.payload, pos)
                dealer, _ = decode_uint(fields[0], 0)
                x = int.from_bytes(fields[1], "big")
                y = int.from_bytes(fields[2], "big")
            except MALFORMED_INPUT_ERRORS:
                continue
            if (dealer, x) in seen:
                continue
            commitment = self._commitments.get(dealer)
            if commitment is None:
                continue
            share = Share(
                x=self._field.element(x), y=self._field.element(y)
            )
            if not vss.verify_share(share, commitment):
                continue
            seen.add((dealer, x))
            self._revealed.setdefault(dealer, []).append(share)

    def _reconstruct(self) -> bytes:
        total = self._field.zero()
        for dealer in self._qualified():
            shares = self._revealed.get(dealer, [])
            if len(shares) < self.f + 1:
                # A qualified dealer has at least n - f >= 2f + 1 honest
                # shareholders whose shares verified, so this cannot
                # happen for them; skip defensively.
                continue
            total = total + vss.reconstruct_verified(
                shares, self._commitments[dealer], self._field
            )
        return coin_from_field_element(total)


def coin_from_field_element(element: FieldElement) -> bytes:
    """Map the summed secret into the kappa-bit coin (hash-extracted)."""
    return hash_domain("coin-toss/output", int_to_fixed_bytes(element.value, 32))


class SilentCoinTossParty(Party):
    """A corrupt participant that contributes nothing (worst case for
    robustness: it gets disqualified and the coin remains uniform)."""

    def __init__(self, party_id: int) -> None:
        super().__init__(party_id)

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        return []


def run_coin_toss(
    members: Sequence[int],
    rng: Randomness,
    byzantine: Sequence[int] = (),
    metrics=None,
):
    """Convenience driver; returns ``(outputs, metrics)``.

    ``outputs`` maps each honest member to its kappa-bit coin; agreement
    among them is a protocol guarantee the tests assert.
    """
    from repro.net.metrics import CommunicationMetrics
    from repro.net.simulator import SynchronousNetwork

    members = sorted(members)
    byzantine_set = set(byzantine)
    f = max(1, (len(members) - 1) // 3)
    if len(byzantine_set) > f:
        raise ConfigurationError(
            f"{len(byzantine_set)} byzantine parties exceeds f={f}"
        )
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(SilentCoinTossParty(member))
        else:
            parties.append(
                CoinTossParty(member, members, f, rng.fork(f"ct-{member}"))
            )
    metrics = metrics if metrics is not None else CommunicationMetrics()
    network = SynchronousNetwork(parties, metrics=metrics)
    honest_ids = [m for m in members if m not in byzantine_set]
    network.run_until(honest_ids, max_rounds=8)
    outputs = {member: network.parties[member].output for member in honest_ids}
    return outputs, metrics


def ideal_f_ct(rng: Randomness) -> bytes:
    """The ideal functionality f_ct: a uniform kappa-bit string."""
    return rng.random_bytes(32)
