"""TRU001 fixture: a protocol-scope sink function."""


def advance_round(round_index):
    return round_index + 1
