"""High-level runtime drivers mirroring the synchronous convenience
drivers, plus the π_ba wire-replay driver.

Each ``run_*_runtime`` function is the event-driven twin of an existing
synchronous driver (`run_phase_king`, `run_gradecast`, `run_balanced_ba`)
with the same inputs and the same outputs on a fault-free plan — the
differential tests in ``tests/runtime/`` hold the pairs equal — and
three extra knobs: the transport substrate (``"local"`` asyncio queues
or ``"tcp"`` loopback sockets), a seeded
:class:`~repro.runtime.faults.FaultPlan`, and an optional
:class:`~repro.runtime.trace.TraceRecorder`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics
from repro.net.party import Party, SilentParty
from repro.params import ProtocolParameters
from repro.runtime.faults import FaultPlan
from repro.runtime.replay import (
    RecordingLedger,
    apply_func_ops,
    build_replay_parties,
)
from repro.runtime.synchronizer import run_parties
from repro.runtime.trace import TraceRecorder
from repro.runtime.transport import Transport
from repro.srds.base import SRDSScheme
from repro.utils.randomness import Randomness


def _extra_rounds(fault_plan: Optional[FaultPlan]) -> int:
    """Headroom a fault plan's delays add to a driver's round cap."""
    return 0 if fault_plan is None else fault_plan.max_extra_rounds + 1


def run_phase_king_runtime(
    inputs: Dict[int, int],
    byzantine: Sequence[int] = (),
    *,
    transport: Union[str, Transport] = "local",
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceRecorder] = None,
    metrics: Optional[CommunicationMetrics] = None,
    enforce_budget: bool = True,
) -> Tuple[Dict[int, int], CommunicationMetrics]:
    """Phase-king BA over the async runtime (twin of `run_phase_king`).

    ``enforce_budget=False`` admits more than f byzantine parties — the
    protocol's guarantees are void beyond the threshold, which is exactly
    what the campaign's planted over-threshold cells demonstrate (the
    honest outputs must then *visibly* disagree, never silently pass).
    """
    from repro.protocols.phase_king import (
        ByzantinePhaseKingParty,
        make_honest_party,
    )

    members = sorted(inputs)
    byzantine_set = set(byzantine)
    f = max(1, (len(members) - 1) // 3)
    if enforce_budget and len(byzantine_set) > f:
        raise ConfigurationError(
            f"{len(byzantine_set)} byzantine parties exceeds f={f}"
        )
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(ByzantinePhaseKingParty(member, members))
        else:
            parties.append(
                make_honest_party(member, members, f, inputs[member])
            )
    honest = [m for m in members if m not in byzantine_set]
    result = run_parties(
        parties,
        transport=transport,
        metrics=metrics,
        fault_plan=fault_plan,
        trace=trace,
        until=honest,
        max_rounds=(3 * (f + 2) + 3) * (1 + _extra_rounds(fault_plan)),
    )
    outputs = {member: result.outputs[member] for member in honest}
    return outputs, result.metrics


def run_gradecast_runtime(
    members: Sequence[int],
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
    equivocating_sender: bool = False,
    *,
    transport: Union[str, Transport] = "local",
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceRecorder] = None,
) -> Tuple[Dict[int, Tuple[int, int]], CommunicationMetrics]:
    """Gradecast over the async runtime (twin of `run_gradecast`)."""
    from repro.protocols.gradecast import (
        EquivocatingGradecastSender,
        GradecastParty,
    )

    members = sorted(members)
    if sender not in members:
        raise ConfigurationError("sender must be a member")
    byzantine_set = set(byzantine)
    t = max(1, (len(members) - 1) // 3)
    if len(byzantine_set) + (1 if equivocating_sender else 0) > t:
        raise ConfigurationError("too many byzantine parties for t < n/3")
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(SilentParty(member))
        elif member == sender and equivocating_sender:
            parties.append(
                EquivocatingGradecastSender(
                    member, members, t, sender, sender_value=value
                )
            )
        else:
            parties.append(
                GradecastParty(
                    member, members, t, sender,
                    sender_value=value if member == sender else None,
                )
            )
    honest = [
        m for m in members
        if m not in byzantine_set
        and not (equivocating_sender and m == sender)
    ]
    result = run_parties(
        parties,
        transport=transport,
        fault_plan=fault_plan,
        trace=trace,
        until=honest,
        max_rounds=6 * (1 + _extra_rounds(fault_plan)),
    )
    outputs = {member: result.outputs[member] for member in honest}
    return outputs, result.metrics


def run_balanced_ba_runtime(
    inputs: Dict[int, int],
    plan: CorruptionPlan,
    scheme: SRDSScheme,
    params: ProtocolParameters,
    rng: Randomness,
    adversary=None,
    *,
    transport: Union[str, Transport] = "local",
    fault_plan: Optional[FaultPlan] = None,
    trace: Optional[TraceRecorder] = None,
    metrics: Optional[CommunicationMetrics] = None,
):
    """π_ba with its wire traffic shipped over a runtime transport.

    Phase 1 executes Fig. 3 exactly as :func:`run_balanced_ba` does,
    against a :class:`RecordingLedger` (so outputs, certificate, and the
    reference snapshot are untouched).  Phase 2 replays the recorded
    wire traffic as :class:`ReplayParty` machines over the requested
    transport, with the hybrid-model charges applied verbatim, charging
    a fresh ledger at the transport layer (or the caller's ``metrics``,
    so a flow ledger / registry can observe the wire traffic).

    If the fault plan requests within-round reordering, the protocol is
    additionally executed with a permuted delivery order at every point
    where Fig. 3 consumes an inbox (the ``delivery_rng`` seam), so the
    honest logic itself — not just the replay — is exercised under the
    scheduling adversary.

    Returns ``(ba_result, runtime_result)`` where ``ba_result.metrics``
    is the snapshot of the *transport-charged* ledger.
    """
    from repro.protocols.balanced_ba import BalancedBA

    delivery_rng = None
    if fault_plan is not None and fault_plan.reorder:
        assert fault_plan.rng is not None
        delivery_rng = fault_plan.rng.fork("balanced-ba-delivery")

    recorder = RecordingLedger()
    protocol = BalancedBA(
        inputs, plan, scheme, params, rng, adversary,
        metrics=recorder, delivery_rng=delivery_rng,
    )
    reference = protocol.run()
    script = recorder.script()

    n = len(inputs)
    runtime_metrics = metrics if metrics is not None else (
        CommunicationMetrics()
    )
    parties = build_replay_parties(script, n)
    runtime_result = run_parties(
        parties,
        transport=transport,
        metrics=runtime_metrics,
        fault_plan=fault_plan,
        trace=trace,
        max_rounds=(script.num_rounds + 2) * (1 + _extra_rounds(fault_plan)),
    )
    apply_func_ops(script, runtime_metrics)
    ba_result = dataclasses.replace(
        reference, metrics=runtime_metrics.snapshot()
    )
    return ba_result, runtime_result
