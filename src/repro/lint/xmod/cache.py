"""Content-hash-keyed facts cache behind the project pass.

``lint check`` runs on every commit, but the tree rarely changes much
between runs: the cache stores each module's extracted
:class:`~repro.lint.xmod.project.ModuleFacts` keyed by the file's
sha256, so an unchanged file costs one hash instead of an AST walk.

Invalidation is by **import strongly-connected component**: when a file
changes, it re-extracts along with every module in its SCC of the
import graph.  Facts are deliberately resolution-free (imports are
recorded as dotted origin strings, never baked into other modules'
facts), so this is conservative — but it is also the *contract* the
cache tests pin via :attr:`ProjectUnit.reanalyzed`, and it keeps the
invalidation story explainable: "your edit re-analyzes your import
cycle, nothing else".

The cache file (default ``.lint-cache.json`` at the lint root) is
best-effort: unreadable, stale-schema, or unwritable caches degrade to
a full re-extraction, never to an error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Set

from repro.lint.model import ModuleUnit
from repro.lint.xmod.callgraph import import_graph, strongly_connected
from repro.lint.xmod.project import (
    ModuleFacts,
    ProjectUnit,
    content_hash,
    extract_facts,
)

#: Bump whenever fact extraction changes shape or semantics — a schema
#: mismatch silently discards the cache.
CACHE_SCHEMA = "repro-lint-xmod-cache/1"

#: Default cache filename, resolved against the lint root.
CACHE_FILENAME = ".lint-cache.json"


def _load_entries(path: Path) -> Dict[str, Dict[str, Any]]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_entries(path: Path,
                  entries: Dict[str, Dict[str, Any]]) -> None:
    document = {"schema": CACHE_SCHEMA, "entries": entries}
    try:
        path.write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        # A read-only checkout still gets a correct (uncached) run.
        pass


def build_project(
    modules: Iterable[ModuleUnit],
    cache_path: Optional[Path] = None,
) -> ProjectUnit:
    """Assemble the :class:`ProjectUnit`, reusing cached facts.

    With ``cache_path=None`` every module is extracted fresh (the
    ``--no-cache`` path and the default for ad-hoc fixture runs).
    """
    module_list = list(modules)
    if cache_path is None:
        return ProjectUnit.from_modules(module_list)

    cached = _load_entries(cache_path)
    facts: Dict[str, ModuleFacts] = {}
    units_by_module: Dict[str, ModuleUnit] = {}
    changed: Set[str] = set()

    for unit in module_list:
        sha = content_hash(unit.source)
        entry = cached.get(unit.rel)
        restored: Optional[ModuleFacts] = None
        if entry is not None and entry.get("sha") == sha:
            try:
                restored = ModuleFacts.from_json(entry["facts"])
            except (KeyError, TypeError, ValueError):
                restored = None
        if restored is None:
            restored = extract_facts(unit)
            changed.add(restored.module)
        facts[restored.module] = restored
        units_by_module[restored.module] = unit

    # Conservative ripple: a changed module re-extracts its whole import
    # SCC (mutual importers evolve together; singleton SCCs are free).
    if changed:
        components = strongly_connected(import_graph(ProjectUnit(facts)))
        ripple: Set[str] = set()
        for component in components:
            if changed & set(component):
                ripple.update(component)
        for modname in ripple - changed:
            facts[modname] = extract_facts(units_by_module[modname])
        changed |= ripple

    entries: Dict[str, Dict[str, Any]] = {
        mod.rel: {"sha": mod.sha, "facts": mod.to_json()}
        for mod in facts.values()
    }
    _save_entries(cache_path, entries)

    reanalyzed: List[str] = sorted(changed)
    return ProjectUnit(facts, reanalyzed=reanalyzed)
