"""ACC001 positive fixture: byte paths that bypass the charge seam."""

import asyncio
import socket


def open_backchannel() -> socket.socket:
    return socket.socket()  # raw byte path in protocol code


def leak(sock, payload: bytes) -> None:
    sock.sendall(payload)  # never charged to the ledger


def gossip(writer, frame: bytes) -> None:
    writer.write(frame)  # transport receiver + transport verb


def enqueue(queue, item: bytes) -> None:
    queue.put_nowait(item)


def side_queue() -> "asyncio.Queue":
    return asyncio.Queue()
