"""E7 — ablation: the anti-double-counting discipline is load-bearing.

Runs the replay-forgery attack (aggregate your own sub-n/3 coalition
with itself until the claimed count passes the majority threshold)
against the real SNARK-based SRDS and against the ablated variant with
the disjoint-range checks removed.  The paper's §2.2 subtlety —
"since the partially aggregated signature must be succinct, the parties
cannot afford to keep track of which base signatures were already
incorporated" — is exactly what this attack exploits when the CRH-backed
range discipline is absent.
"""

import pytest

from benchmarks.conftest import write_result
from repro.srds.ablation import NoRangeCheckSnarkSRDS
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 90
COALITION = 29  # strictly below N/3
REPLAYS = [1, 2, 3, 4]


def _attack(scheme_cls):
    rng = Randomness(33)
    scheme = scheme_cls(base_scheme=HashRegistryBase())
    pp = scheme.setup(N, rng.fork("setup"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    message = b"forged-majority"
    coalition = [
        scheme.sign(pp, i, sks[i], message) for i in range(COALITION)
    ]
    aggregate = scheme.aggregate(pp, vks, message, coalition)
    outcomes = []
    for replays in REPLAYS:
        replayed = scheme.aggregate(
            pp, vks, message, [aggregate] * (replays + 1)
        )
        outcomes.append(
            (replays, replayed.count,
             scheme.verify(pp, vks, message, replayed))
        )
    return outcomes


@pytest.mark.benchmark(group="ablation")
def test_range_check_ablation(benchmark, results_dir):
    def run_both():
        return {
            "secure": _attack(SnarkSRDS),
            "ablated": _attack(NoRangeCheckSnarkSRDS),
        }

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)

    threshold = N // 2 + 1
    lines = [
        f"E7 — replay attack, n={N}, coalition={COALITION} "
        f"(threshold {threshold}):",
        f"{'variant':<9} {'replays':>8} {'claimed count':>14} {'forged?':>8}",
    ]
    for variant, rows in outcomes.items():
        for replays, count, forged in rows:
            lines.append(
                f"{variant:<9} {replays:>8} {count:>14} {forged!s:>8}"
            )
    write_result(results_dir, "ablation_ranges", "\n".join(lines))

    # Secure scheme: count pinned at the coalition size, never forged.
    for replays, count, forged in outcomes["secure"]:
        assert count == COALITION
        assert not forged
    # Ablated scheme: counts multiply and the forgery lands once the
    # claimed count crosses the majority threshold.
    ablated = outcomes["ablated"]
    assert any(forged for _, _, forged in ablated)
    for replays, count, forged in ablated:
        assert count == COALITION * (replays + 1)
        assert forged == (count >= threshold)
