"""EXC001 negative fixture: every sanctioned handling pattern."""

import logging

logger = logging.getLogger(__name__)

MALFORMED_INPUT_ERRORS = (ValueError, IndexError, TypeError)


def narrow(blob: bytes):
    try:
        return int(blob)
    except MALFORMED_INPUT_ERRORS:
        return None  # narrowed catch: fine to swallow


def reraise(blob: bytes):
    try:
        return int(blob)
    except Exception as exc:
        raise RuntimeError("decode failed") from exc  # translated


def logged(blob: bytes):
    try:
        return int(blob)
    except Exception:
        logger.warning("rejecting malformed blob")
        return None


def justified(blob: bytes):
    try:
        return int(blob)
    # lint: allow[EXC001] reason=adversarial blob rejection; decode raises open-ended plugin errors
    except Exception:
        return None
