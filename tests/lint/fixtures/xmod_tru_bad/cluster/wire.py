"""TRU001 fixture (bad): a decoder guarding one escaping field, not both."""

import struct
from dataclasses import dataclass


class SerializationError(ValueError):
    pass


_HEADER = struct.Struct(">II")


@dataclass
class Header:
    round_index: int
    charge_bits: int


def decode_header(data: bytes) -> Header:
    round_index, charge_bits = _HEADER.unpack_from(data, 0)
    if round_index > 1 << 20:
        raise SerializationError("round out of range")
    return Header(
        round_index=round_index,
        charge_bits=charge_bits,
    )
