"""The cluster supervisor: round barriers, routing, recovery.

The supervisor shards the ``n`` parties of a :class:`ClusterJob` across
``k`` worker OS processes and drives them in lockstep rounds over the
control channel (:mod:`repro.cluster.wire`).  Topology is hub-and-spoke:
workers never talk to each other — a frame emitted by a party on worker
A reaches a party on worker B inside A's ``done`` and B's next
``round`` message, in the transport's existing
:class:`~repro.runtime.transport.Frame` wire encoding.  That keeps the
supervisor the single authority over

* **staging** — frames sent but not yet due, exactly like the
  synchronizer's staged buffers;
* **metrics** — the one :class:`CommunicationMetrics` ledger, charged
  once per routed frame in its sent round with ``end_round`` per
  barrier, so ``max_bits_per_party`` is measured identically to
  :func:`~repro.runtime.synchronizer.run_parties`;
* **traces** — workers drain their per-round trace events into ``done``
  messages; the supervisor merges them into one
  :class:`~repro.runtime.trace.TraceRecorder` whose per-party streams
  (and fingerprint) match a single-process run.

Recovery state machine (see ``docs/cluster.md``): every ``round``
message is logged per worker; every ``checkpoint_interval`` barriers the
supervisor broadcasts ``checkpoint``, awaits every ack, durably writes
its own state (staged frames, outputs, metrics, merged trace), trims the
logs, and prunes stale worker checkpoints.  When a worker dies —
heartbeat silence, connection loss, or nonzero exit — the supervisor
respawns it pinned to the last fully-acknowledged barrier, replays the
logged rounds (discarding the duplicate results), re-sends the in-flight
round, and continues.  ``kill_plan`` turns this path into a real fault
injector: the supervisor SIGKILLs its own worker right after dispatching
the scheduled round.
"""

# lint: file-allow[ACC001] reason=channel.send ships control messages; party
# frames are charged via metrics.record_message exactly where they are routed

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.checkpoint import (
    ClusterCheckpoint,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.cluster.job import ClusterJob, split_shards
from repro.cluster.wire import (
    CHECKPOINT,
    CHECKPOINTED,
    DONE,
    HEARTBEAT,
    HELLO,
    JOB,
    PEERDOWN,
    PEERS,
    RESUMED,
    ROUND,
    STOP,
    Message,
    MessageChannel,
    accept_channel,
    open_listener,
)
from repro.cluster.worker import checkpoint_name
from repro.errors import ClusterError
from repro.net.metrics import CommunicationMetrics
from repro.obs.flow import FUNCTIONALITY, INFRA, FlowLedger, flow_tags
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanLog, SpanRecord, span_from_wire, span_to_wire
from repro.runtime.trace import TraceRecorder
from repro.runtime.transport import Frame

#: Durable supervisor state file inside the run directory.
STATE_FILE = "supervisor.ckpt"
STATE_FORMAT = "repro-cluster-supervisor/1"

#: Flow-ledger pseudo ids for control-plane endpoints: the supervisor
#: is :data:`~repro.obs.flow.INFRA` (-2); worker ``w`` is ``-10 - w``.
WORKER_PSEUDO_BASE = -10


def worker_pseudo_id(worker_id: int) -> int:
    """The flow-ledger pseudo party id of one worker process."""
    return WORKER_PSEUDO_BASE - worker_id


@dataclass
class ClusterConfig:
    """Tunables for one supervised run."""

    num_workers: int = 2
    #: Seconds between worker heartbeat beacons.
    heartbeat_interval: float = 0.25
    #: Seconds of *total silence* (no heartbeat, no result) after which
    #: a worker is declared dead.
    heartbeat_timeout: float = 5.0
    #: Hard wall-clock ceiling for one worker's round turn — catches a
    #: worker that heartbeats forever but never produces its result.
    round_timeout: float = 120.0
    #: Seconds allowed for a spawned worker to dial in and handshake.
    spawn_timeout: float = 30.0
    #: Worker deaths tolerated across the whole run before giving up.
    max_restarts: int = 3
    #: Fault injection: round index -> worker id to SIGKILL right after
    #: that round's dispatch (the campaign's ``kill-worker`` schedule).
    kill_plan: Dict[int, int] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    host: str = "127.0.0.1"
    #: Optional wire-level flow ledger attached to the authoritative
    #: metrics ledger (every routed frame becomes a traffic-matrix cell;
    #: control messages are metered under ``ctl:*`` kinds).
    flow: Optional[FlowLedger] = None
    #: Cross-process trace id stamped on every job and echoed by every
    #: done; empty string derives a deterministic one from the job.
    trace_id: str = ""
    #: How party frames move between workers.  ``"mesh"`` (the default)
    #: ships them point-to-point over direct worker↔worker links and
    #: reconstructs the authoritative metrics from per-round digests;
    #: ``"relay"`` is the legacy hub-and-spoke path where every frame
    #: rides through the supervisor inside control messages.
    data_plane: str = "mesh"


@dataclass
class ClusterResult:
    """Outcome of one supervised cluster execution."""

    outputs: Dict[int, Any]
    metrics: CommunicationMetrics
    rounds: int
    trace: TraceRecorder
    restarts: int
    num_workers: int
    run_dir: Path
    #: Cross-process observability: the run's trace id, the
    #: supervisor's own round spans, and each worker's shipped digests.
    trace_id: str = ""
    supervisor_spans: List[SpanRecord] = field(default_factory=list)
    worker_spans: Dict[int, List[SpanRecord]] = field(default_factory=dict)


@dataclass
class _Worker:
    """Supervisor-side handle on one worker process."""

    worker_id: int
    shard: List[int]
    process: subprocess.Popen
    channel: MessageChannel
    log_handle: Any
    #: Highest heartbeat ``progress`` counter seen — the per-control-
    #: message liveness deadline resets whenever this advances.
    last_progress: int = -1


class _WorkerDied(Exception):
    """Internal: a worker stopped answering (recoverable)."""


class _PeerDied(Exception):
    """Internal: a *different* worker is dead — the one currently being
    awaited is alive but blocked on the dead peer's mesh trains."""

    def __init__(self, worker_id: int, reason: str) -> None:
        super().__init__(f"worker {worker_id} died: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class ClusterSupervisor:
    """Drives one :class:`ClusterJob` across worker processes."""

    def __init__(
        self,
        job: ClusterJob,
        config: Optional[ClusterConfig] = None,
        run_dir: Optional[Path] = None,
    ) -> None:
        self.job = job
        self.config = config if config is not None else ClusterConfig()
        if self.config.data_plane not in ("mesh", "relay"):
            raise ClusterError(
                f"unknown data plane {self.config.data_plane!r} "
                "(expected 'mesh' or 'relay')"
            )
        self._mesh = self.config.data_plane == "mesh"
        self.shards = split_shards(job.n, self.config.num_workers)
        self.run_dir: Optional[Path] = (
            Path(run_dir) if run_dir is not None else None
        )
        self._party_worker: Dict[int, int] = {}
        for worker_id, shard in enumerate(self.shards):
            for party_id in shard:
                self._party_worker[party_id] = worker_id
        # Cross-process observability.  The trace id is deterministic
        # (derived from the job, never a clock — DET002): it stamps
        # every job message and is echoed by every done, correlating
        # supervisor, worker, and timeline artifacts of one run.
        self.trace_id = self.config.trace_id or (
            f"{job.name}-n{job.n}-w{self.config.num_workers}"
        )
        self.span_log = SpanLog()
        self.worker_spans: Dict[int, List[SpanRecord]] = {}
        # Mutable run state (reset/restored in run()).
        self.metrics = CommunicationMetrics()
        if self.config.flow is not None:
            self.metrics.attach_flow(self.config.flow)
        self.trace = TraceRecorder()
        # Per-party event counts already persisted to trace-<pid>.seg
        # delta files (see _save_trace_segments).
        self._trace_saved: Dict[int, int] = {}
        self.outputs: Dict[int, Any] = {}
        self.staged: Dict[int, List[Frame]] = {
            p: [] for p in range(job.n)
        }
        self.round_index = 0
        self.checkpoint_round = 0
        self.restarts = 0
        self.workers: Dict[int, _Worker] = {}
        # Mesh bookkeeping: worker data-plane addresses, halted parties
        # reported eagerly in done *fields* (the loop's termination
        # check), and the deferred-done backlog — digests are replayed
        # into the ledger one round behind, overlapped with the workers
        # computing the next round.
        self._mesh_addresses: Dict[int, Tuple[str, int]] = {}
        self._halted: Set[int] = set()
        self._backlog: List[Tuple[int, int, Message]] = []
        self._delivery_log: Dict[int, Dict[int, List[Frame]]] = {
            w: {} for w in range(self.config.num_workers)
        }
        self._listener = None
        self._port: Optional[int] = None
        registry = self.config.registry
        if registry is not None:
            self._rounds_total = registry.counter(
                "repro_cluster_rounds_total",
                "Cluster round barriers completed",
            )
            self._round_latency = registry.histogram(
                "repro_cluster_round_latency_seconds",
                "Wall time per cluster round barrier",
            )
            self._restarts_total = registry.counter(
                "repro_cluster_restarts_total",
                "Worker processes restarted after a detected death",
                ("worker",),
            )
            self._kills_total = registry.counter(
                "repro_cluster_sigkills_total",
                "Workers SIGKILLed by the fault-injection plan",
            )
            self._frames_routed = registry.counter(
                "repro_cluster_frames_routed_total",
                "Frames routed worker-to-worker through the supervisor",
            )
            self._checkpoints_total = registry.counter(
                "repro_cluster_checkpoints_total",
                "Durable checkpoint barriers completed",
            )
            self._workers_gauge = registry.gauge(
                "repro_cluster_workers", "Worker processes in the cluster"
            )
            self._workers_gauge.set(self.config.num_workers)

    # -- public API -----------------------------------------------------------

    def run(self, resume: bool = False) -> ClusterResult:
        """Execute the job to completion (optionally resuming a run)."""
        if self.run_dir is None:
            self.run_dir = Path(
                tempfile.mkdtemp(prefix="repro-cluster-")
            )
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load_state()
        self._listener, self._port = open_listener(self.config.host)
        try:
            self._launch_all(
                list(range(self.config.num_workers)), self.checkpoint_round
            )
            self._round_loop()
            for worker in self.workers.values():
                try:
                    worker.channel.send(Message(STOP))
                except ClusterError:
                    pass
            self._save_state(completed=True)
            return ClusterResult(
                outputs=dict(self.outputs),
                metrics=self.metrics,
                rounds=self.round_index,
                trace=self.trace,
                restarts=self.restarts,
                num_workers=self.config.num_workers,
                run_dir=self.run_dir,
                trace_id=self.trace_id,
                supervisor_spans=list(self.span_log.records),
                worker_spans={
                    w: list(records)
                    for w, records in sorted(self.worker_spans.items())
                },
            )
        finally:
            self._teardown()

    # -- worker lifecycle -----------------------------------------------------

    def _launch_all(self, worker_ids: List[int], resume_round: int) -> None:
        """Spawn workers, accept their connections, hand out the job.

        All processes are spawned *before* any handshake and the job is
        dispatched as each hello arrives, so worker startup (python
        import plus shard build) overlaps across the fleet — the legacy
        serial accept paid the full import cost once per worker.  On
        the mesh, every worker's ``resumed`` reply carries its data-
        plane listener address and a ``peers`` address book is
        broadcast to the whole fleet once all launches finish.
        """
        assert self.run_dir is not None and self._port is not None
        import repro as _repro_pkg

        src_root = str(Path(_repro_pkg.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
        spawned: Dict[int, Any] = {}
        for worker_id in worker_ids:
            log_path = self.run_dir / f"worker-{worker_id}.log"
            log_handle = log_path.open("ab")
            process = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "cluster",
                    "worker",
                    "--host",
                    self.config.host,
                    "--port",
                    str(self._port),
                    "--worker-id",
                    str(worker_id),
                    "--heartbeat-interval",
                    str(self.config.heartbeat_interval),
                ],
                stdout=log_handle,
                stderr=subprocess.STDOUT,
                env=env,
            )
            spawned[worker_id] = (process, log_handle)
        channels: Dict[int, MessageChannel] = {}
        try:
            for _ in worker_ids:
                # Accept whichever worker dials first; the hello names
                # it.  Metering starts buffered because the worker id
                # is unknown until the hello decodes — the buffered
                # events are replayed through the real meter so the
                # ctl:hello cell lands exactly as it did under the
                # serial launch.
                buffered: List[Tuple[str, str, int]] = []
                channel = accept_channel(
                    self._listener, timeout=self.config.spawn_timeout
                )
                channel.set_meter(
                    lambda d, k, b, _events=buffered: _events.append(
                        (d, k, b)
                    )
                )
                hello = channel.recv(timeout=self.config.spawn_timeout)
                if hello.kind != HELLO:
                    raise ClusterError(
                        f"expected a worker hello, got {hello.kind!r}"
                    )
                worker_id = int(hello.fields.get("worker_id", -1))
                if worker_id not in spawned or worker_id in channels:
                    raise ClusterError(
                        f"unexpected hello from worker {worker_id}"
                    )
                # Control-plane metering: every byte on this channel
                # (job, round, done, heartbeat, ...) lands in the flow
                # ledger as a ctl:* cell between INFRA and the worker's
                # pseudo id — kept out of data-plane totals by kind.
                meter = self._channel_meter(worker_id)
                channel.set_meter(meter)
                for direction, kind, num_bytes in buffered:
                    meter(direction, kind, num_bytes)
                fields: Dict[str, Any] = {
                    "shard": self.shards[worker_id],
                    "resume_round": resume_round,
                    "checkpoint_dir": str(self.run_dir),
                    "checkpoint_stem": f"shard-{worker_id}",
                    "trace_id": self.trace_id,
                    "data_plane": self.config.data_plane,
                }
                if self._mesh:
                    fields["shards"] = self.shards
                    fields["mesh_host"] = self.config.host
                channel.send(
                    Message(
                        JOB, fields, blob=Message.pack_payload(self.job)
                    )
                )
                channels[worker_id] = channel
            for worker_id in worker_ids:
                resumed = channels[worker_id].recv(
                    timeout=self.config.spawn_timeout
                )
                if resumed.kind != RESUMED:
                    raise ClusterError(
                        f"worker {worker_id} answered {resumed.kind!r} "
                        "to its job"
                    )
                at_round = int(resumed.fields["next_round"])
                if at_round != resume_round:
                    raise ClusterError(
                        f"worker {worker_id} resumed at round {at_round}, "
                        f"supervisor pinned round {resume_round}"
                    )
                if self._mesh:
                    self._mesh_addresses[worker_id] = (
                        str(resumed.fields["mesh_host"]),
                        int(resumed.fields["mesh_port"]),
                    )
                process, log_handle = spawned[worker_id]
                self.workers[worker_id] = _Worker(
                    worker_id=worker_id,
                    shard=self.shards[worker_id],
                    process=process,
                    channel=channels[worker_id],
                    log_handle=log_handle,
                )
        except (TimeoutError, ClusterError) as exc:
            for worker_id, (process, log_handle) in spawned.items():
                if worker_id in self.workers:
                    continue  # registered: _teardown owns it now
                process.kill()
                log_handle.close()
                if worker_id in channels:
                    channels[worker_id].close()
            raise ClusterError(
                f"worker launch failed: {exc} "
                f"(see worker-*.log in {self.run_dir})"
            ) from exc
        if self._mesh:
            self._broadcast_peers()

    def _broadcast_peers(self) -> None:
        """Ship the mesh address book to every live worker.

        A send failure here is not fatal: the worker is dead or dying,
        its own await path will notice, and the relaunch rebroadcasts.
        """
        addresses = {
            str(worker_id): [host, port]
            for worker_id, (host, port) in sorted(
                self._mesh_addresses.items()
            )
        }
        for worker_id in sorted(self.workers):
            try:
                self.workers[worker_id].channel.send(
                    Message(PEERS, {"addresses": addresses})
                )
            except ClusterError:
                pass

    def _channel_meter(self, worker_id: int) -> Any:
        """A :data:`~repro.cluster.wire.ChannelMeter` for one worker."""

        def meter(direction: str, kind: str, num_bytes: int) -> None:
            flow = self.metrics.flow
            if flow is None:
                return
            src, dst = (
                (INFRA, worker_pseudo_id(worker_id))
                if direction == "send"
                else (worker_pseudo_id(worker_id), INFRA)
            )
            flow.charge(
                self.round_index, "(control)", src, dst,
                num_bytes * 8, kind=f"ctl:{kind}",
            )

        return meter

    def _recover(
        self,
        worker_id: int,
        current_round: int,
        reason: Optional[str] = None,
    ) -> None:
        """Restart a dead worker and bring it back to ``current_round``."""
        while True:
            self.restarts += 1
            if self.config.registry is not None:
                self._restarts_total.inc(worker=str(worker_id))
            if self.restarts > self.config.max_restarts:
                detail = f" (last failure: {reason})" if reason else ""
                raise ClusterError(
                    f"worker {worker_id} keeps dying: restart budget of "
                    f"{self.config.max_restarts} exhausted{detail}"
                )
            try:
                self._restart_once(worker_id, current_round)
                return
            except _WorkerDied as exc:
                reason = str(exc)
                continue
            except _PeerDied as exc:
                # A second worker died while this one was replaying.
                # Recover it first (the budget bounds the cascade),
                # then restart this one's recovery from scratch.
                self._recover(
                    exc.worker_id, current_round, reason=exc.reason
                )
                reason = (
                    f"peer {exc.worker_id} died during recovery replay"
                )
                continue

    def _restart_once(self, worker_id: int, current_round: int) -> None:
        old = self.workers.get(worker_id)
        if old is not None:
            self._reap(old)
        self._launch_all([worker_id], self.checkpoint_round)
        worker = self.workers[worker_id]
        # Replay the logged rounds between the worker's checkpoint and
        # the in-flight barrier; its regenerated results (frames,
        # outputs, trace events) are duplicates of what this supervisor
        # already processed, so they are discarded wholesale.  On the
        # mesh the replayed rounds' inbound frames come from the peers'
        # retained trains (resent by the link handshake's watermark
        # exchange), so the round messages carry no frames; re-emitted
        # outbound trains are deduplicated by the receivers.
        for replay_round in range(self.checkpoint_round, current_round):
            frames = (
                []
                if self._mesh
                else self._delivery_log[worker_id].get(replay_round, [])
            )
            worker.channel.send(
                Message(
                    ROUND,
                    {"round": replay_round, "replay": True},
                    frames=frames,
                )
            )
            self._await(worker, DONE, round_index=replay_round)
        # Re-send the in-flight round if it was already dispatched;
        # its (first and only) result is collected by the caller.
        frames = self._delivery_log[worker_id].get(current_round)
        if frames is not None:
            worker.channel.send(
                Message(
                    ROUND,
                    {"round": current_round, "replay": False},
                    frames=[] if self._mesh else frames,
                )
            )

    def _reap(self, worker: _Worker) -> None:
        """Make sure a worker process is dead and its handles closed."""
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        try:
            worker.process.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass
        worker.channel.close()
        try:
            worker.log_handle.close()
        except OSError:  # pragma: no cover
            pass

    def _sigkill(self, worker_id: int) -> None:
        """Fault injection: SIGKILL one of our own workers, mid-round."""
        worker = self.workers.get(worker_id)
        if worker is None:
            raise ClusterError(f"kill plan names unknown worker {worker_id}")
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except ProcessLookupError:  # already dead — plan still satisfied
            pass
        if self.config.registry is not None:
            self._kills_total.inc()

    # -- the round loop -------------------------------------------------------

    def _round_loop(self) -> None:
        targets = set(self.job.target_ids())
        for _ in range(self.job.max_rounds):
            if targets <= (set(self.outputs) | self._halted):
                # Mesh: the last rounds' digests may still be queued —
                # flush them so outputs/metrics/trace are complete.
                self._flush_backlog()
                return
            self._step_round()
        self._flush_backlog()
        raise ClusterError(
            f"cluster run did not terminate in {self.job.max_rounds} rounds"
        )

    def _step_round(self) -> None:
        # lint: allow[DET002] reason=round-latency histogram feed; protocol state never reads it
        started = time.monotonic() if self.config.registry else 0.0
        round_index = self.round_index
        due = {} if self._mesh else self._pop_due(round_index)
        # Supervisor-side round span, recorded by direct open/close so
        # it never enters the attribution stack (the routed-frame
        # charges below must keep their recorded phases, not ours).
        round_span = self.span_log.open(
            "supervisor-round",
            "supervisor-round",
            0,
            {
                "round": round_index,
                "frames_dispatched": sum(len(f) for f in due.values()),
            },
        )
        for worker_id in sorted(self.workers):
            frames = due.get(worker_id, [])
            # On the mesh the (empty) log entry is the dispatch marker
            # recovery consults to re-send an in-flight round.
            self._delivery_log[worker_id][round_index] = frames
            try:
                self.workers[worker_id].channel.send(
                    Message(
                        ROUND,
                        {"round": round_index, "replay": False},
                        frames=frames,
                    )
                )
            except ClusterError as exc:
                self._recover(worker_id, round_index, reason=str(exc))
        victim = self.config.kill_plan.get(round_index)
        if victim is not None:
            self._sigkill(victim)
        if self._mesh:
            # Deferred bookkeeping: replay the *previous* round's
            # digests while the workers compute this one — the ledger
            # runs one round behind the fleet, charge order unchanged.
            self._flush_backlog()
        for worker_id in sorted(self.workers):
            self._collect_done(worker_id, round_index)
        if not self._mesh:
            self.metrics.end_round()
        self.span_log.close(round_span)
        self.round_index = round_index + 1
        if self.config.registry is not None:
            self._rounds_total.inc()
            # lint: allow[DET002] reason=round-latency histogram feed; protocol state never reads it
            self._round_latency.observe(time.monotonic() - started)
        if (
            self.job.checkpoint_interval > 0
            and self.round_index % self.job.checkpoint_interval == 0
        ):
            self._checkpoint_barrier()

    def _pop_due(self, round_index: int) -> Dict[int, List[Frame]]:
        """Pop every staged frame due at this barrier, grouped by the
        worker that owns its recipient."""
        due: Dict[int, List[Frame]] = {}
        for party_id, staged in self.staged.items():
            ready = [f for f in staged if f.deliver_round <= round_index]
            if not ready:
                continue
            self.staged[party_id] = [
                f for f in staged if f.deliver_round > round_index
            ]
            due.setdefault(self._party_worker[party_id], []).extend(ready)
        return due

    def _collect_done(self, worker_id: int, round_index: int) -> None:
        while True:
            worker = self.workers[worker_id]
            try:
                message = self._await(worker, DONE, round_index=round_index)
            except _WorkerDied as exc:
                self._recover(worker_id, round_index, reason=str(exc))
                continue
            except _PeerDied as exc:
                # This worker is alive but starved of the dead peer's
                # trains; recover the peer, then await this one again.
                self._recover(exc.worker_id, round_index, reason=exc.reason)
                continue
            break
        if self._mesh:
            # Halt reports ride in the cheap json fields so the round
            # loop can terminate without unpickling the deferred blob.
            self._halted.update(
                int(p) for p in message.fields.get("halted", [])
            )
            self._backlog.append((round_index, worker_id, message))
        else:
            self._process_done(worker_id, message)

    def _flush_backlog(self) -> None:
        """Replay queued mesh done messages into the ledger, in order.

        The backlog is appended round-ascending, sorted-worker within a
        round — the exact order the relay charges in — and every round
        boundary closes with ``end_round``, so tallies, per-round bits,
        and flow cells are bit-identical to hub-and-spoke routing.
        """
        if not self._backlog:
            return
        backlog, self._backlog = self._backlog, []
        current = backlog[0][0]
        for round_index, worker_id, message in backlog:
            if round_index != current:
                self.metrics.end_round()
                current = round_index
            self._process_mesh_done(worker_id, message)
        self.metrics.end_round()

    def _process_mesh_done(self, worker_id: int, message: Message) -> None:
        payload = message.payload() or {}
        rows = self._validate_digest_rows(payload.get("digest") or [])
        if rows:
            recipients = {row[1] for row in rows}
            if not recipients <= self.staged.keys():
                unknown = sorted(recipients - self.staged.keys())
                raise ClusterError(
                    f"worker emitted a frame for unknown party "
                    f"{unknown[0]}"
                )
            # One batched replay per (round, worker), row order exactly
            # the worker's emission order — the same charge sequence
            # the relay produces one record_message at a time.
            self.metrics.replay_digest(rows)
            if self.config.registry is not None:
                self._frames_routed.inc(len(rows))
        self.outputs.update(payload.get("outputs", {}))
        for party_id in sorted(payload.get("trace", {})):
            self.trace.preload(party_id, payload["trace"][party_id])
        span_rows = payload.get("spans") or []
        if span_rows:
            self.worker_spans.setdefault(worker_id, []).extend(
                span_from_wire(row) for row in span_rows
            )

    @staticmethod
    def _validate_digest_rows(
        rows: object,
    ) -> List[Tuple[int, int, int, str]]:
        """Narrow a worker-reported charge digest to replayable rows.

        Digest rows cross the worker pipe, so a compromised or buggy
        worker controls their shape; the ledger replay trusts its input
        types, so everything is checked here before any charge lands.
        """
        if not isinstance(rows, (list, tuple)):
            raise ClusterError("mesh digest is not a row sequence")
        validated: List[Tuple[int, int, int, str]] = []
        for row in rows:
            if not isinstance(row, (list, tuple)) or len(row) != 4:
                raise ClusterError(f"malformed mesh digest row {row!r}")
            sender, recipient, bits, phase = row
            if (
                not isinstance(sender, int)
                or not isinstance(recipient, int)
                or not isinstance(bits, int)
                or isinstance(sender, bool)
                or isinstance(recipient, bool)
                or isinstance(bits, bool)
            ):
                raise ClusterError(f"malformed mesh digest row {row!r}")
            if bits < 0:
                raise ClusterError(
                    f"mesh digest row claims negative charge {bits}"
                )
            if not isinstance(phase, str):
                raise ClusterError(f"malformed mesh digest row {row!r}")
            validated.append((sender, recipient, bits, phase))
        return validated

    def _process_done(self, worker_id: int, message: Message) -> None:
        # Flow refinement: workers record the obs phase of each emitted
        # frame (parallel "phases" list); the flow_tags override
        # re-attaches it to the routed charge without touching span
        # attribution (bits_by_phase is unchanged either way).
        phases = message.fields.get("phases") or []
        for index, frame in enumerate(message.frames):
            if frame.recipient not in self.staged:
                raise ClusterError(
                    f"worker emitted a frame for unknown party "
                    f"{frame.recipient}"
                )
            # One charge per routed frame, in its sent round — the same
            # point in the round the transports charge at.
            phase = str(phases[index]) if index < len(phases) else ""
            with flow_tags(phase=phase or None, kind="frame"):
                # lint: allow[OBS001] reason=routing-plane charge; the worker recorded the frame's phase at emit time and ships it home, so flow_tags re-attaches it without a supervisor-side span
                self.metrics.record_message(
                    frame.sender, frame.recipient, frame.bits()
                )
            self.staged[frame.recipient].append(frame)
        if self.config.registry is not None and message.frames:
            self._frames_routed.inc(len(message.frames))
        payload = message.payload() or {}
        self.outputs.update(payload.get("outputs", {}))
        for party_id in sorted(payload.get("trace", {})):
            self.trace.preload(party_id, payload["trace"][party_id])
        rows = payload.get("spans") or []
        if rows:
            self.worker_spans.setdefault(worker_id, []).extend(
                span_from_wire(row) for row in rows
            )

    def _await(
        self,
        worker: _Worker,
        kind: str,
        round_index: Optional[int] = None,
    ) -> Message:
        """Receive one expected message, tolerating heartbeats.

        Liveness is judged per *control message in flight*, not per
        round: the ``round_timeout`` deadline resets whenever the
        worker demonstrably moves bytes — a heartbeat whose
        ``progress`` counter advanced, or raw channel bytes trickling
        in across a recv deadline (a huge body mid-transfer).  A slow
        worker relaying a 2s train is therefore never conflated with a
        dead one; only *stalled* progress exhausts the deadline.

        Raises :class:`_WorkerDied` on connection loss, heartbeat
        silence, or stalled progress past ``round_timeout`` — unless a
        mesh peer's process is found dead, in which case
        :class:`_PeerDied` names the actual casualty (this worker is
        alive, just starved of the dead peer's trains).
        """
        # lint: allow[DET002] reason=liveness deadline for crash detection; protocol state never reads it
        deadline = time.monotonic() + self.config.round_timeout
        while True:
            received_before = worker.channel.bytes_received
            try:
                message = worker.channel.recv(
                    timeout=self.config.heartbeat_timeout
                )
            except TimeoutError as exc:
                if worker.channel.bytes_received > received_before:
                    # Mid-message trickle: the worker is alive, just
                    # slow shipping a big body.  Byte growth is
                    # progress — reset the deadline and keep reading.
                    # lint: allow[DET002] reason=liveness deadline for crash detection; protocol state never reads it
                    deadline = time.monotonic() + self.config.round_timeout
                    continue
                raise _WorkerDied(
                    f"worker {worker.worker_id}: no heartbeat for "
                    f"{self.config.heartbeat_timeout}s"
                ) from exc
            except ClusterError as exc:
                raise _WorkerDied(
                    f"worker {worker.worker_id}: {exc}"
                ) from exc
            if message.kind == HEARTBEAT:
                reported = int(message.fields.get("progress", -1))
                if reported > worker.last_progress:
                    worker.last_progress = reported
                    # lint: allow[DET002] reason=liveness deadline for crash detection; protocol state never reads it
                    deadline = time.monotonic() + self.config.round_timeout
                # lint: allow[DET002] reason=liveness deadline for crash detection; protocol state never reads it
                if time.monotonic() > deadline:
                    dead_peer = (
                        self._find_dead_peer(exclude=worker.worker_id)
                        if self._mesh
                        else None
                    )
                    if dead_peer is not None:
                        raise _PeerDied(dead_peer, "process exited")
                    raise _WorkerDied(
                        f"worker {worker.worker_id} heartbeats but "
                        f"made no progress within "
                        f"{self.config.round_timeout}s"
                    )
                continue
            if message.kind == PEERDOWN:
                peer = int(message.fields.get("peer", -1))
                reason = str(message.fields.get("reason", "link down"))
                other = self.workers.get(peer)
                if (
                    peer != worker.worker_id
                    and other is not None
                    and other.process.poll() is not None
                ):
                    raise _PeerDied(
                        peer,
                        f"reported by worker {worker.worker_id}: {reason}",
                    )
                # The named peer's process is alive (or already
                # replaced): a transient drop the mesh redial heals.
                continue
            if message.kind != kind:
                raise ClusterError(
                    f"worker {worker.worker_id} sent {message.kind!r} "
                    f"while supervisor awaited {kind!r}"
                )
            if (
                round_index is not None
                and int(message.fields.get("round", -1)) != round_index
            ):
                raise ClusterError(
                    f"worker {worker.worker_id} answered for round "
                    f"{message.fields.get('round')}, awaited {round_index}"
                )
            return message

    def _find_dead_peer(self, exclude: int) -> Optional[int]:
        """Return the lowest worker id whose process has exited.

        Used when a *live* worker stalls: in the mesh the stall is
        usually starvation — a dead peer never sent its train — and
        killing the starved worker would be punishing the victim.
        """
        for worker_id in sorted(self.workers):
            if worker_id == exclude:
                continue
            if self.workers[worker_id].process.poll() is not None:
                return worker_id
        return None

    # -- checkpoint barrier ---------------------------------------------------

    def _checkpoint_barrier(self) -> None:
        barrier = self.round_index
        if self._mesh:
            # Digest bookkeeping must be current before the durable
            # snapshot: _save_state pickles metrics/trace/spans.
            self._flush_backlog()
        # Workers may drop retained mesh trains strictly below the
        # *previous* barrier only: a peer recovered from the previous
        # checkpoint replays from there and still needs those rounds.
        trim_below = self.checkpoint_round
        pending = sorted(self.workers)
        while pending:
            worker_id = pending.pop(0)
            need_send = True
            while True:
                worker = self.workers[worker_id]
                if need_send:
                    try:
                        worker.channel.send(
                            Message(
                                CHECKPOINT,
                                {"round": barrier, "trim_below": trim_below},
                            )
                        )
                    except ClusterError as exc:
                        # Send failure: the connection is gone — same
                        # recovery path as heartbeat silence.
                        self._recover(worker_id, barrier, reason=str(exc))
                        continue
                    need_send = False
                try:
                    self._await(worker, CHECKPOINTED, round_index=barrier)
                except _WorkerDied as exc:
                    self._recover(worker_id, barrier, reason=str(exc))
                    # Recovery replaced the channel: the fresh socket
                    # holds no stale ack, so the request must go again.
                    need_send = True
                    continue
                except _PeerDied as exc:
                    self._recover(
                        exc.worker_id, barrier, reason=exc.reason
                    )
                    if exc.worker_id not in pending:
                        # The recovered peer resumed from the previous
                        # checkpoint and replayed forward; it has no
                        # checkpoint file at *this* barrier yet, so it
                        # must receive the CHECKPOINT request again.
                        pending.append(exc.worker_id)
                    # Do NOT resend to the current worker: its channel
                    # survived and its ack may already be buffered.
                    continue
                break
        self.checkpoint_round = barrier
        for log in self._delivery_log.values():
            for logged_round in [r for r in log if r < barrier]:
                del log[logged_round]
        self._prune_worker_checkpoints(barrier)
        self._save_state(completed=False)
        if self.config.registry is not None:
            self._checkpoints_total.inc()

    def _prune_worker_checkpoints(self, barrier: int) -> None:
        assert self.run_dir is not None
        for path in self.run_dir.glob("shard-*-r*.ckpt"):
            try:
                logged_round = int(path.stem.rsplit("-r", 1)[1])
            except (IndexError, ValueError):  # pragma: no cover - alien file
                continue
            if logged_round < barrier:
                path.unlink(missing_ok=True)

    # -- durable supervisor state --------------------------------------------

    def _save_trace_segments(self) -> Dict[int, int]:
        """Persist per-party trace *deltas*; return authoritative counts.

        Snapshotting the whole trace made every checkpoint O(total
        events recorded so far); the segment files make a checkpoint
        O(events since the last one).  Each call appends one pickled
        ``(start_index, new_events)`` chunk per party with fresh events
        to ``trace-<pid>.seg`` (fsynced), and the manifest records only
        the per-party event count.  :func:`read_state` replays the
        chunks — truncating to each chunk's start index, then to the
        manifest count — so a chunk re-appended after a crash between
        the segment write and the manifest rename is harmless, and a
        resumed trace is byte-identical to the old full-snapshot form
        (the resume-parity tests pin this).
        """
        assert self.run_dir is not None
        counts: Dict[int, int] = {}
        for party_id in self.trace.party_ids:
            events = self.trace.events_of(party_id)
            counts[party_id] = len(events)
            saved = self._trace_saved.get(party_id, 0)
            if saved > len(events):
                saved = 0  # fresh recorder in a reused run dir: rewrite
            if len(events) == saved:
                continue
            path = self.run_dir / f"trace-{party_id}.seg"
            with path.open("ab") as handle:
                pickle.dump(
                    (saved, events[saved:]),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                handle.flush()
                os.fsync(handle.fileno())
            self._trace_saved[party_id] = len(events)
        return counts

    def _save_state(self, completed: bool) -> None:
        assert self.run_dir is not None
        container = ClusterCheckpoint(
            next_round=self.round_index,
            parties=[],
            staged=[
                frame
                for party_id in sorted(self.staged)
                for frame in self.staged[party_id]
            ],
        )
        state = {
            "format": STATE_FORMAT,
            "job_name": self.job.name,
            "n": self.job.n,
            "num_workers": self.config.num_workers,
            "data_plane": self.config.data_plane,
            "round": self.round_index,
            "completed": completed,
            "restarts": self.restarts,
            "container": encode_checkpoint(container),
            "outputs": dict(self.outputs),
            "metrics": self.metrics,
            # Delta checkpointing: the manifest carries only per-party
            # event *counts*; the events live in trace-<pid>.seg files
            # (read_state materializes "trace_events" from them).
            "trace_segments": self._save_trace_segments(),
            # Observability carry-over (wire dicts, not live objects):
            # a resumed run keeps the same trace id and does not lose
            # the spans of the rounds before the checkpoint.
            "trace_id": self.trace_id,
            "supervisor_spans": [
                span_to_wire(record) for record in self.span_log.records
            ],
            "worker_spans": {
                w: [span_to_wire(record) for record in records]
                for w, records in sorted(self.worker_spans.items())
            },
        }
        target = self.run_dir / STATE_FILE
        temp = target.with_suffix(".ckpt.tmp")
        with temp.open("wb") as handle:
            pickle.dump(state, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, target)

    def _load_state(self) -> None:
        assert self.run_dir is not None
        state = read_state(self.run_dir)
        if state is None:
            raise ClusterError(
                f"no supervisor state in {self.run_dir}; nothing to resume"
            )
        if state.get("job_name") != self.job.name or state.get("n") != self.job.n:
            raise ClusterError(
                f"run dir {self.run_dir} belongs to job "
                f"{state.get('job_name')!r} (n={state.get('n')}), "
                f"not {self.job.name!r} (n={self.job.n})"
            )
        if state.get("num_workers") != self.config.num_workers:
            raise ClusterError(
                f"run was sharded over {state.get('num_workers')} workers; "
                f"resume must use the same count "
                f"(got {self.config.num_workers})"
            )
        saved_plane = state.get("data_plane")
        if saved_plane is not None and saved_plane != self.config.data_plane:
            raise ClusterError(
                f"run used data plane {saved_plane!r}; resume must use "
                f"the same plane (got {self.config.data_plane!r})"
            )
        container = decode_checkpoint(state["container"])
        self.round_index = int(state["round"])
        self.checkpoint_round = self.round_index
        self.restarts = int(state["restarts"])
        self.outputs = dict(state["outputs"])
        self._halted = {int(p) for p in self.outputs}
        self.metrics = state["metrics"]
        self.staged = {p: [] for p in range(self.job.n)}
        for frame in container.staged:
            if frame.recipient not in self.staged:
                raise ClusterError(
                    f"staged frame for unknown party {frame.recipient}"
                )
            self.staged[frame.recipient].append(frame)
        self.trace = TraceRecorder()
        for party_id in sorted(state["trace_events"]):
            self.trace.preload(party_id, state["trace_events"][party_id])
        # Future saves append deltas after the materialized prefix.
        self._trace_saved = {
            party_id: len(events)
            for party_id, events in state["trace_events"].items()
        }
        self.trace_id = str(state.get("trace_id", "")) or self.trace_id
        self.span_log = SpanLog()
        self.span_log.preload(
            [span_from_wire(row) for row in state.get("supervisor_spans", [])]
        )
        self.worker_spans = {
            int(w): [span_from_wire(row) for row in rows]
            for w, rows in state.get("worker_spans", {}).items()
        }
        flow = self.config.flow
        if flow is not None:
            # The pickled metrics never carries a ledger (see
            # CommunicationMetrics.__getstate__): re-attach the
            # caller's and seed its per-party side counters from the
            # restored tallies so bit-exact parity survives resume.
            self.metrics.attach_flow(flow)
            for party_id in self.metrics.party_ids:
                tally = self.metrics.tally_of(party_id)
                if tally.bits_sent:
                    flow.charge(
                        self.round_index, "(resumed)", party_id,
                        FUNCTIONALITY, tally.bits_sent, kind="absorbed",
                    )
                if tally.bits_received:
                    flow.charge(
                        self.round_index, "(resumed)", FUNCTIONALITY,
                        party_id, tally.bits_received, kind="absorbed",
                    )

    # -- teardown -------------------------------------------------------------

    def _teardown(self) -> None:
        for worker in self.workers.values():
            try:
                worker.process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait(timeout=5)
            worker.channel.close()
            try:
                worker.log_handle.close()
            except OSError:  # pragma: no cover
                pass
        self.workers.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None


def read_state(run_dir: Path) -> Optional[Dict[str, Any]]:
    """Load a run directory's durable supervisor state (``None`` if absent).

    Used by resume and by the ``cluster status`` CLI.
    """
    path = Path(run_dir) / STATE_FILE
    if not path.exists():
        return None
    try:
        with path.open("rb") as handle:
            state = pickle.load(handle)
    except Exception as exc:  # pickle raises a zoo of types
        raise ClusterError(
            f"corrupt supervisor state in {run_dir}: {exc}"
        ) from exc
    if not isinstance(state, dict) or state.get("format") != STATE_FORMAT:
        raise ClusterError(
            f"{path} is not {STATE_FORMAT} supervisor state"
        )
    if "trace_events" not in state:
        # Delta-checkpointed manifest: materialize the per-party event
        # streams from the trace-<pid>.seg chunk files so every
        # consumer (resume, status, tests) sees the legacy shape.
        # Legacy manifests with inline "trace_events" skip this.
        state["trace_events"] = _read_trace_segments(
            Path(run_dir), state.get("trace_segments", {})
        )
    return state


def _read_trace_segments(
    run_dir: Path, segments: Dict[int, int]
) -> Dict[int, List[Dict[str, Any]]]:
    """Replay per-party ``trace-<pid>.seg`` delta chunks into streams.

    Each chunk is ``(start_index, events)``: the stream is truncated to
    ``start_index`` and the chunk appended — so re-appended chunks
    (a crash between the segment fsync and the manifest rename) resolve
    to the same stream.  The manifest count is authoritative: fewer
    materialized events than the count is loud corruption; extra events
    beyond it (a chunk whose manifest never landed) are trimmed.
    """
    trace_events: Dict[int, List[Dict[str, Any]]] = {}
    for party_id, count in sorted(segments.items()):
        path = run_dir / f"trace-{party_id}.seg"
        events: List[Dict[str, Any]] = []
        if path.exists():
            try:
                with path.open("rb") as handle:
                    while True:
                        try:
                            start, chunk = pickle.load(handle)
                        except EOFError:
                            break
                        del events[start:]
                        events.extend(chunk)
            except ClusterError:
                raise
            except Exception as exc:  # pickle raises a zoo of types
                raise ClusterError(
                    f"corrupt trace segment {path}: {exc}"
                ) from exc
        if len(events) < count:
            raise ClusterError(
                f"trace segments for party {party_id} in {run_dir} "
                f"hold {len(events)} events; manifest expects {count}"
            )
        del events[count:]
        trace_events[party_id] = events
    return trace_events


def describe_run(run_dir: Path) -> Dict[str, Any]:
    """A JSON-friendly status summary of one run directory.

    Combines the supervisor's durable state with the worker checkpoint
    files on disk (``shard-<w>-r<round>.ckpt``) so ``cluster status``
    can answer "how far did it get, and can it resume?".
    """
    run_dir = Path(run_dir)
    state = read_state(run_dir)
    checkpoints: Dict[str, List[int]] = {}
    for path in sorted(run_dir.glob("shard-*-r*.ckpt")):
        stem, _, tail = path.stem.rpartition("-r")
        try:
            barrier = int(tail)
        except ValueError:  # pragma: no cover - alien file
            continue
        checkpoints.setdefault(stem, []).append(barrier)
    summary: Dict[str, Any] = {
        "run_dir": str(run_dir),
        "has_state": state is not None,
        "worker_checkpoints": {
            stem: sorted(rounds) for stem, rounds in checkpoints.items()
        },
    }
    if state is not None:
        summary.update(
            {
                "job_name": state["job_name"],
                "n": state["n"],
                "num_workers": state["num_workers"],
                "round": state["round"],
                "completed": state["completed"],
                "restarts": state["restarts"],
                "halted_parties": len(state["outputs"]),
                "max_bits_per_party": state["metrics"].max_bits_per_party,
            }
        )
    return summary


# Re-exported for the package namespace; the worker module owns the
# canonical name format.
__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "ClusterSupervisor",
    "checkpoint_name",
    "describe_run",
    "read_state",
]
