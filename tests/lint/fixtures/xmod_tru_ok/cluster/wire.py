"""TRU001 fixture (ok): every escaping field individually guarded."""

import struct
from dataclasses import dataclass


class SerializationError(ValueError):
    pass


_HEADER = struct.Struct(">II")


@dataclass
class Header:
    round_index: int
    charge_bits: int


def decode_header(data: bytes) -> Header:
    round_index, charge_bits = _HEADER.unpack_from(data, 0)
    if round_index > 1 << 20:
        raise SerializationError("round out of range")
    if charge_bits > 1 << 30:
        raise SerializationError("charge out of range")
    return Header(
        round_index=round_index,
        charge_bits=charge_bits,
    )


def validate_header(header):
    if header.round_index < 0:
        raise SerializationError("negative round")
    return header
